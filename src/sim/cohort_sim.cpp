#include "sim/cohort_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gpumodel/kernel_model.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::sim {

namespace {

// Unexhausted-demand bits of a cohort, for heap-backed demands only.
// Constant-rate demands (the floor; compute at one-block-per-SM occupancy)
// fold into the cohort's private wall-clock deadline instead.
constexpr std::uint8_t kComputeBit = 1;
constexpr std::uint8_t kMemoryBit = 2;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Half-width of the dense lattice-point -> jitter memo. With practical
// quanta the draws land within a few dozen points of 1.0; anything outside
// the window is computed directly and never merged.
constexpr std::int32_t kLatticeWindow = 2048;

// Lattice index sentinel for out-of-window draws.
constexpr std::int32_t kNoLattice = std::numeric_limits<std::int32_t>::min();

// Cap on (lattice span x num_sms) cells the counting merge will use for
// one batch; a pathologically fine quantum falls back to singleton cohorts
// (physics-equivalent — merging only dedupes identical thresholds).
constexpr std::size_t kMaxBucketCells = std::size_t{1} << 18;

}  // namespace

BlockDemands block_demands(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu,
                           const gpumodel::Occupancy& occ) {
  const double clock_hz = gpu.core_clock_ghz * 1e9;
  const gpumodel::WarpDemands wd = gpumodel::warp_demands(kc, gpu);

  // Latency hiding among the SM's resident warps, capped by the MWP the
  // bus sustains (same overlap policy as the wave simulator).
  const double achieved_bw =
      gpu.mem_bandwidth_gbps * util::kGB * gpu.achieved_bw_fraction;
  const double bw_bytes_per_cycle_sm = achieved_bw / gpu.num_sms / clock_hz;
  const double dep_delay =
      wd.mem_insts > 0.0
          ? (wd.traffic_bytes / wd.mem_insts) / bw_bytes_per_cycle_sm
          : 1.0;
  const double mwp = std::max(1.0, gpu.dram_latency_cycles / dep_delay);
  const double resident_warps =
      std::max(1.0, static_cast<double>(occ.active_warps));
  const double overlap = std::max(1.0, std::min(resident_warps, mwp));

  BlockDemands demands;
  demands.compute_cycles =
      wd.warps_per_block * wd.insts_per_thread * wd.issue_cycles;
  demands.memory_bytes = wd.warps_per_block * wd.traffic_bytes;
  const double latency_cycles =
      wd.warps_per_block * wd.latency_cycles / overlap;
  const double sync_cycles =
      kc.syncs_per_thread *
      (gpu.sync_cycles + wd.warps_per_block * wd.issue_cycles);
  demands.floor_s = (latency_cycles + sync_cycles) / clock_hz;
  return demands;
}

double CohortEngine::simulate_expected(
    const gpumodel::KernelCharacteristics& kc, const hw::GpuSpec& gpu) {
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);

  const BlockDemands base = block_demands(kc, gpu, occ);
  const double sm_issue_rate = gpu.core_clock_ghz * 1e9;
  const double chip_bw =
      gpu.mem_bandwidth_gbps * util::kGB * gpu.achieved_bw_fraction;

  const int num_sms = gpu.num_sms;
  const std::int64_t capacity =
      static_cast<std::int64_t>(occ.blocks_per_sm) * num_sms;

  stats_ = CohortSimStats{};
  stats_.blocks = kc.num_blocks;

  // Without jitter every block of a launch carries bitwise-identical
  // demands, so the greedy scheduler's resident set is always ONE
  // synchronized generation: the chip fills, every resident block advances
  // at the same rates, all retire at the same instant, and the next
  // generation fills. Only the final partial generation splits — blocks
  // land on SMs holding either floor(G/num_sms) or ceil(G/num_sms)
  // residents, two cohorts with different compute shares. Advancing the
  // (at most two) cohorts with the reference engine's exact per-event
  // expressions reproduces its result bit for bit in O(1) work per event.
  struct GenCohort {
    double compute_left = 0.0;
    double memory_left = 0.0;
    double floor_left = 0.0;
    int consumers = 0;         ///< Resident blocks per SM of this class.
    std::int64_t count = 0;    ///< Blocks in the cohort.
    bool alive = false;
  };

  std::int64_t pending = kc.num_blocks;
  double now = 0.0;
  while (pending > 0) {
    const std::int64_t generation = std::min(pending, capacity);
    pending -= generation;
    ++stats_.generations;

    const std::int64_t q = generation / num_sms;
    const std::int64_t r = generation % num_sms;
    GenCohort cohorts[2];
    int num_cohorts = 0;
    if (r > 0) {
      // The first r SMs hold q+1 blocks each (greedy min-load placement
      // fills SMs round-robin, lowest index first).
      cohorts[num_cohorts++] = GenCohort{base.compute_cycles,
                                         base.memory_bytes,
                                         base.floor_s,
                                         static_cast<int>(q + 1),
                                         r * (q + 1),
                                         true};
    }
    if (q > 0) {
      cohorts[num_cohorts++] = GenCohort{base.compute_cycles,
                                         base.memory_bytes,
                                         base.floor_s,
                                         static_cast<int>(q),
                                         (num_sms - r) * q,
                                         true};
    }

    for (;;) {
      // Retire finished cohorts (degenerate zero-demand blocks retire
      // before any event fires, exactly like the reference's pre-pass).
      bool any_alive = false;
      for (int i = 0; i < num_cohorts; ++i) {
        GenCohort& cohort = cohorts[i];
        if (!cohort.alive) continue;
        if (cohort.compute_left <= kSimEps &&
            cohort.memory_left <= kSimEps && cohort.floor_left <= kSimEps) {
          cohort.alive = false;
        } else {
          any_alive = true;
        }
      }
      if (!any_alive) break;

      // Instantaneous fair-share rates: identical expressions (and thus
      // identical floating point) to the reference engine.
      int memory_consumers = 0;
      for (int i = 0; i < num_cohorts; ++i)
        if (cohorts[i].alive && cohorts[i].memory_left > kSimEps)
          memory_consumers += static_cast<int>(cohorts[i].count);
      const double mem_rate =
          memory_consumers > 0 ? chip_bw / memory_consumers : 0.0;

      double dt = kInf;
      for (int i = 0; i < num_cohorts; ++i) {
        const GenCohort& cohort = cohorts[i];
        if (!cohort.alive) continue;
        if (cohort.compute_left > kSimEps) {
          const double rate = sm_issue_rate / cohort.consumers;
          dt = std::min(dt, cohort.compute_left / rate);
        }
        if (cohort.memory_left > kSimEps)
          dt = std::min(dt, cohort.memory_left / mem_rate);
        if (cohort.floor_left > kSimEps) dt = std::min(dt, cohort.floor_left);
      }
      GROPHECY_ENSURES(std::isfinite(dt) && dt >= 0.0);

      now += dt;
      ++stats_.events;
      for (int i = 0; i < num_cohorts; ++i) {
        GenCohort& cohort = cohorts[i];
        if (!cohort.alive) continue;
        if (cohort.compute_left > kSimEps) {
          const double rate = sm_issue_rate / cohort.consumers;
          cohort.compute_left =
              std::max(0.0, cohort.compute_left - rate * dt);
        }
        if (cohort.memory_left > kSimEps)
          cohort.memory_left =
              std::max(0.0, cohort.memory_left - mem_rate * dt);
        if (cohort.floor_left > kSimEps)
          cohort.floor_left = std::max(0.0, cohort.floor_left - dt);
      }
    }
  }
  return now;
}

double CohortEngine::simulate_jittered(
    const gpumodel::KernelCharacteristics& kc, const hw::GpuSpec& gpu,
    double sigma, double jitter_quantum, util::Rng& rng) {
  GROPHECY_EXPECTS(sigma > 0.0);
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);

  const BlockDemands base = block_demands(kc, gpu, occ);
  const double sm_issue_rate = gpu.core_clock_ghz * 1e9;
  const double chip_bw =
      gpu.mem_bandwidth_gbps * util::kGB * gpu.achieved_bw_fraction;

  const int num_sms = gpu.num_sms;
  const int cap_per_sm = occ.blocks_per_sm;
  const std::size_t mem_stream = static_cast<std::size_t>(num_sms);
  // The last stream slot holds private-deadline retirements, keyed by wall
  // clock: cohorts whose folded (constant-rate) demand outlives every
  // heap-backed demand park here until their deadline passes.
  const std::size_t deadline_stream = mem_stream + 1;
  const std::size_t num_streams = deadline_stream + 1;
  const std::int64_t capacity =
      static_cast<std::int64_t>(cap_per_sm) * num_sms;
  const auto capacity_sz = static_cast<std::size_t>(capacity);
  const bool quantized = jitter_quantum > 0.0;
  // At one block per SM a cohort owns its whole compute stream: the
  // fair-share rate is frozen from placement to exhaustion, so the compute
  // demand folds into the private deadline and the per-SM streams (and
  // their slots in the event scan) go entirely unused.
  const bool fold_compute = cap_per_sm == 1;
  const std::size_t scan_base = fold_compute ? mem_stream : 0;

  stats_ = CohortSimStats{};
  stats_.blocks = kc.num_blocks;

  // Reset the engine-owned scratch: clear-without-free plus up-front
  // reserves sized by the chip geometry, so on a warm engine the whole
  // simulation runs without touching the allocator (micro_sim gates this
  // with an operator-new counter). Thresholds are immutable once pushed —
  // rate changes remap drain level to wall clock but never reorder a
  // stream's exhaustions — so plain push/pop heaps suffice, and cohort
  // slots recycle only after every demand entry of the cohort is popped.
  streams_.assign(num_streams, StreamCore{});
  if (heaps_.size() < num_streams) heaps_.resize(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    heaps_[s].clear();
    heaps_[s].reserve(s < mem_stream ? static_cast<std::size_t>(cap_per_sm)
                                     : capacity_sz);
  }
  next_time_.assign(num_streams, kInf);
  cohort_sm_.clear();
  cohort_count_.clear();
  cohort_remaining_.clear();
  cohort_deadline_.clear();
  free_cohorts_.clear();
  cohort_sm_.reserve(capacity_sz);
  cohort_count_.reserve(capacity_sz);
  cohort_remaining_.reserve(capacity_sz);
  cohort_deadline_.reserve(capacity_sz);
  free_cohorts_.reserve(capacity_sz);
  sm_load_.assign(static_cast<std::size_t>(num_sms), 0);
  compute_consumers_.assign(static_cast<std::size_t>(num_sms), 0);
  dirty_flag_.assign(num_streams, 0);
  dirty_.clear();
  dirty_.reserve(num_streams);
  draw_.clear();
  draw_.reserve(capacity_sz);
  if (quantized) {
    draw_idx_.clear();
    draw_idx_.reserve(capacity_sz);
  }

  // Fair-share rate tables by consumer count: bitwise the reference
  // expressions, divided once here instead of at every refresh. The
  // reciprocal uses c/rate rather than 1/(rate/c) — any faithful inverse
  // works, the division it replaces only sets event *times*.
  compute_rate_.resize(static_cast<std::size_t>(cap_per_sm) + 1);
  compute_inv_rate_.resize(compute_rate_.size());
  for (std::size_t c = 1; c < compute_rate_.size(); ++c) {
    compute_rate_[c] = sm_issue_rate / static_cast<double>(c);
    compute_inv_rate_[c] = static_cast<double>(c) / sm_issue_rate;
  }
  mem_rate_.resize(capacity_sz + 1);
  mem_inv_rate_.resize(mem_rate_.size());
  for (std::size_t c = 1; c < mem_rate_.size(); ++c) {
    mem_rate_[c] = chip_bw / static_cast<double>(c);
    mem_inv_rate_[c] = static_cast<double>(c) / chip_bw;
  }

  const double lattice_step = sigma * jitter_quantum;
  const double inv_lattice_step = quantized ? 1.0 / lattice_step : 0.0;
  if (quantized && lattice_step != lattice_step_) {
    lattice_jitter_.assign(2 * static_cast<std::size_t>(kLatticeWindow) + 1,
                           std::numeric_limits<double>::quiet_NaN());
    lattice_step_ = lattice_step;
  }

  // --- Solo fast path: one block per SM with continuous jitter. Every
  // cohort is a singleton that owns its SM (the cohort slot IS the SM id),
  // compute and floor fold into one private deadline, and the engine
  // reduces to exactly two streams — the shared memory drain and the
  // deadline heap — whose state lives in registers with no dirty-list or
  // next-time indirection. Same physics, same expressions, same draw
  // stream as the general loop below; just no generality tax.
  if (fold_compute && !quantized) {
    util::FlatDaryHeap<4>& mem_heap = heaps_[mem_stream];
    util::FlatDaryHeap<4>& dl_heap = heaps_[deadline_stream];
    cohort_deadline_.assign(static_cast<std::size_t>(num_sms), 0.0);
    if (freed_sms_.size() < static_cast<std::size_t>(num_sms))
      freed_sms_.resize(static_cast<std::size_t>(num_sms));

    std::int64_t pending = kc.num_blocks;
    std::int64_t resident = 0;
    std::int64_t consumers = 0;
    double t = 0.0;
    double level = 0.0;
    double last_t = 0.0;
    double rate = 0.0;
    double inv_rate = 0.0;
    const double compute_inv = compute_inv_rate_[1];

    // Draws one block onto `sm`, redrawing through degenerate blocks
    // (which retire the instant they are placed, consuming their draw but
    // no slot). Returns false once the launch runs out of blocks.
    const auto place_on = [&](std::int32_t sm) -> bool {
      while (pending > 0) {
        --pending;
        const double jitter = rng.lognormal(1.0, sigma);
        const double compute = base.compute_cycles * jitter;
        const double memory = base.memory_bytes * jitter;
        const double floor = base.floor_s * jitter;
        if (compute <= kSimEps && memory <= kSimEps && floor <= kSimEps)
          continue;
        ++stats_.cohorts;
        double deadline = 0.0;
        if (compute > kSimEps) deadline = t + compute * compute_inv;
        if (floor > kSimEps) deadline = std::max(deadline, t + floor);
        cohort_deadline_[static_cast<std::size_t>(sm)] = deadline;
        ++resident;
        if (memory > kSimEps) {
          mem_heap.push(level + memory, sm);
          ++consumers;
        } else {
          dl_heap.push(deadline, sm);
        }
        return true;
      }
      return false;
    };

    // Initial fill: greedy places onto SM 0, 1, ... in index order.
    for (std::int32_t sm = 0; sm < num_sms && pending > 0; ++sm)
      place_on(sm);
    if (consumers > 0) {
      rate = mem_rate_[static_cast<std::size_t>(consumers)];
      inv_rate = mem_inv_rate_[static_cast<std::size_t>(consumers)];
    }
    double next_mem =
        !mem_heap.empty() && rate > 0.0
            ? last_t +
                  std::max(0.0, mem_heap.top_key() - level) * inv_rate
            : kInf;
    double next_dl = dl_heap.empty() ? kInf : dl_heap.top_key();

    while (resident > 0) {
      // Tie goes to the memory stream, the lower stream index.
      const bool is_mem = next_mem <= next_dl;
      const double event_t = is_mem ? next_mem : next_dl;
      GROPHECY_ENSURES(std::isfinite(event_t) && event_t >= t);
      t = event_t;
      ++stats_.events;

      int freed_n = 0;
      if (is_mem) {
        level += rate * (t - last_t);
        last_t = t;
        if (level < mem_heap.top_key()) level = mem_heap.top_key();
        do {
          const std::int32_t sm = mem_heap.top_value();
          mem_heap.pop();
          --consumers;
          const double deadline =
              cohort_deadline_[static_cast<std::size_t>(sm)];
          if (deadline > t) {
            dl_heap.push(deadline, sm);
          } else {
            --resident;
            freed_sms_[static_cast<std::size_t>(freed_n++)] = sm;
          }
        } while (!mem_heap.empty() && mem_heap.top_key() <= level);
      } else {
        do {
          const std::int32_t sm = dl_heap.top_value();
          dl_heap.pop();
          --resident;
          freed_sms_[static_cast<std::size_t>(freed_n++)] = sm;
        } while (!dl_heap.empty() && dl_heap.top_key() <= t);
      }

      if (pending > 0 && freed_n > 0) {
        // Greedy backfill = lowest-index free SM first.
        if (freed_n > 1)
          std::sort(freed_sms_.begin(), freed_sms_.begin() + freed_n);
        level += rate * (t - last_t);
        last_t = t;
        for (int i = 0; i < freed_n; ++i)
          if (!place_on(freed_sms_[static_cast<std::size_t>(i)])) break;
      }

      if (consumers > 0) {
        rate = mem_rate_[static_cast<std::size_t>(consumers)];
        inv_rate = mem_inv_rate_[static_cast<std::size_t>(consumers)];
      } else {
        rate = 0.0;
        inv_rate = 0.0;
      }
      next_mem =
          !mem_heap.empty() && rate > 0.0
              ? last_t +
                    std::max(0.0, mem_heap.top_key() - level) * inv_rate
              : kInf;
      next_dl = dl_heap.empty() ? kInf : dl_heap.top_key();
    }
    GROPHECY_ENSURES(pending == 0);
    return t;
  }

  std::int64_t pending = kc.num_blocks;
  std::int64_t resident = 0;
  std::int64_t mem_consumers = 0;
  double t = 0.0;

  auto mark_dirty = [&](std::size_t stream_id) {
    if (dirty_flag_[stream_id]) return;
    dirty_flag_[stream_id] = 1;
    dirty_.push_back(stream_id);
  };

  auto alloc_cohort = [&]() -> std::int32_t {
    if (!free_cohorts_.empty()) {
      const std::int32_t id = free_cohorts_.back();
      free_cohorts_.pop_back();
      return id;
    }
    cohort_sm_.push_back(0);
    cohort_count_.push_back(0);
    cohort_remaining_.push_back(0);
    cohort_deadline_.push_back(0.0);
    return static_cast<std::int32_t>(cohort_sm_.size() - 1);
  };

  // Opens a one-block cohort on `sm` with the given jittered demands.
  // Heap-backed demands push their threshold (drain level at placement +
  // demand); constant-rate demands fold into the private deadline. Merged
  // blocks join later by bumping the count and consumer tallies.
  auto open_cohort = [&](int sm, double compute, double memory,
                         double floor) __attribute__((always_inline))
                         -> std::int32_t {
    const std::int32_t id = alloc_cohort();
    const auto cid = static_cast<std::size_t>(id);
    cohort_sm_[cid] = sm;
    cohort_count_[cid] = 1;
    std::uint8_t remaining = 0;
    double deadline = 0.0;
    ++stats_.cohorts;
    if (compute > kSimEps) {
      if (fold_compute) {
        // Sole occupant of its SM stream: the rate issue/1 never changes,
        // so the exhaustion instant is known now.
        deadline = t + compute * compute_inv_rate_[1];
      } else {
        remaining |= kComputeBit;
        const auto sm_id = static_cast<std::size_t>(sm);
        StreamCore& stream = streams_[sm_id];
        stream.level += stream.rate * (t - stream.last_t);
        stream.last_t = t;
        heaps_[sm_id].push(stream.level + compute, id);
        ++compute_consumers_[sm_id];
        mark_dirty(sm_id);
      }
    }
    if (memory > kSimEps) {
      remaining |= kMemoryBit;
      StreamCore& stream = streams_[mem_stream];
      stream.level += stream.rate * (t - stream.last_t);
      stream.last_t = t;
      heaps_[mem_stream].push(stream.level + memory, id);
      ++mem_consumers;
      mark_dirty(mem_stream);
    }
    if (floor > kSimEps) {
      // The floor drains at rate 1 always: a pure wall-clock deadline.
      deadline = std::max(deadline, t + floor);
    }
    cohort_remaining_[cid] = remaining;
    cohort_deadline_[cid] = deadline;
    if (remaining == 0) {
      // Every demand folded: the cohort retires at its deadline.
      heaps_[deadline_stream].push(deadline, id);
      mark_dirty(deadline_stream);
    }
    return id;
  };

  // Greedy backfill equivalent to the reference policy (one block at a
  // time to the least-loaded SM, lowest index on ties), restated as slot
  // enumeration: visit load levels from the current minimum upward and,
  // within a level, SMs in index order — O(1) amortized per block instead
  // of an O(num_sms) scan. Jitters for a whole batch of free slots are
  // drawn at once (the bulk fill is bitwise the sequential draw stream);
  // degenerate draws retire instantly without taking a slot, so the loop
  // re-draws until the chip is full or no blocks remain. In quantized mode
  // the draws snap onto the jitter lattice through the memo, and
  // same-(SM, lattice point) placements of a batch collapse into one
  // cohort via the epoch-tagged counting buckets.
  auto place_pending = [&]() {
    int level = sm_load_[0];
    for (int s = 1; s < num_sms; ++s)
      level = std::min(level, sm_load_[static_cast<std::size_t>(s)]);
    int cursor = 0;
    std::int64_t free_slots = capacity - resident;
    while (pending > 0 && free_slots > 0) {
      const auto n = static_cast<std::size_t>(std::min(pending, free_slots));
      draw_.resize(n);
      bool use_buckets = false;
      std::int32_t lattice_lo = 0;
      if (quantized) {
        draw_idx_.resize(n);
        if (n == 1) {
          draw_[0] = rng.normal();  // bitwise fill_normal(dst, 1)
        } else {
          rng.fill_normal(draw_.data(), n);
        }
        std::int32_t lo = std::numeric_limits<std::int32_t>::max();
        std::int32_t hi = std::numeric_limits<std::int32_t>::min();
        for (std::size_t j = 0; j < n; ++j) {
          const double didx =
              std::round(sigma * draw_[j] * inv_lattice_step);
          if (std::abs(didx) <= static_cast<double>(kLatticeWindow)) {
            const auto idx = static_cast<std::int32_t>(didx);
            double& memo = lattice_jitter_[static_cast<std::size_t>(
                idx + kLatticeWindow)];
            if (std::isnan(memo)) memo = std::exp(didx * lattice_step);
            draw_[j] = memo;
            draw_idx_[j] = idx;
            lo = std::min(lo, idx);
            hi = std::max(hi, idx);
          } else {
            draw_[j] = std::exp(didx * lattice_step);
            draw_idx_[j] = kNoLattice;
          }
        }
        if (lo <= hi) {
          const std::size_t span_cells =
              (static_cast<std::size_t>(hi - lo) + 1) *
              static_cast<std::size_t>(num_sms);
          if (span_cells <= kMaxBucketCells) {
            use_buckets = true;
            lattice_lo = lo;
            if (bucket_cohort_.size() < span_cells) {
              bucket_cohort_.resize(span_cells);
              bucket_epoch_.resize(span_cells, 0);
            }
            if (++epoch_ == 0) {  // epoch wrap: invalidate every cell
              std::fill(bucket_epoch_.begin(), bucket_epoch_.end(), 0u);
              epoch_ = 1;
            }
          }
        }
      } else if (n == 1) {
        // The steady-state common case (one freed slot, one draw): skip
        // the bulk-fill call layer; bitwise fill_lognormal(1.0, sigma, 1).
        draw_[0] = rng.lognormal(1.0, sigma);
      } else {
        rng.fill_lognormal(1.0, sigma, draw_.data(), n);
      }

      for (std::size_t j = 0; j < n; ++j) {
        --pending;
        const double jitter = draw_[j];
        const double compute = base.compute_cycles * jitter;
        const double memory = base.memory_bytes * jitter;
        const double floor = base.floor_s * jitter;
        if (compute <= kSimEps && memory <= kSimEps && floor <= kSimEps)
          continue;  // degenerate block: retires the instant it is placed

        while (sm_load_[static_cast<std::size_t>(cursor)] != level) {
          if (++cursor == num_sms) {
            cursor = 0;
            ++level;
            GROPHECY_ENSURES(level < cap_per_sm);
          }
        }
        const int sm = cursor;
        ++sm_load_[static_cast<std::size_t>(sm)];
        ++resident;
        --free_slots;
        if (++cursor == num_sms) {
          cursor = 0;
          ++level;
        }

        if (use_buckets && draw_idx_[j] != kNoLattice) {
          const std::size_t cell =
              static_cast<std::size_t>(draw_idx_[j] - lattice_lo) *
                  static_cast<std::size_t>(num_sms) +
              static_cast<std::size_t>(sm);
          if (bucket_epoch_[cell] == epoch_) {
            // Counting merge: the cohort exists, the block just joins it.
            const auto cid = static_cast<std::size_t>(bucket_cohort_[cell]);
            ++cohort_count_[cid];
            const std::uint8_t remaining = cohort_remaining_[cid];
            if (remaining & kComputeBit)
              ++compute_consumers_[static_cast<std::size_t>(sm)];
            if (remaining & kMemoryBit) ++mem_consumers;
            continue;
          }
          bucket_cohort_[cell] = open_cohort(sm, compute, memory, floor);
          bucket_epoch_[cell] = epoch_;
          continue;
        }
        open_cohort(sm, compute, memory, floor);
      }
    }
  };

  // Recomputes a dirty stream's per-block drain rate from its consumer
  // count (a table load, not a divide) and rekeys its lazy next-exhaustion
  // time (a multiply by the precomputed reciprocal).
  auto refresh = [&](std::size_t stream_id) {
    if (stream_id == deadline_stream) {
      // Deadline keys are wall-clock times already.
      next_time_[deadline_stream] = heaps_[deadline_stream].empty()
                                        ? kInf
                                        : heaps_[deadline_stream].top_key();
      return;
    }
    StreamCore& stream = streams_[stream_id];
    stream.level += stream.rate * (t - stream.last_t);
    stream.last_t = t;
    if (stream_id < mem_stream) {
      const std::int64_t consumers = compute_consumers_[stream_id];
      if (consumers > 0) {
        stream.rate = compute_rate_[static_cast<std::size_t>(consumers)];
        stream.inv_rate =
            compute_inv_rate_[static_cast<std::size_t>(consumers)];
      } else {
        stream.rate = 0.0;
        stream.inv_rate = 0.0;
      }
    } else {
      if (mem_consumers > 0) {
        stream.rate = mem_rate_[static_cast<std::size_t>(mem_consumers)];
        stream.inv_rate =
            mem_inv_rate_[static_cast<std::size_t>(mem_consumers)];
      } else {
        stream.rate = 0.0;
        stream.inv_rate = 0.0;
      }
    }
    double key = kInf;
    const auto& heap = heaps_[stream_id];
    if (!heap.empty() && stream.rate > 0.0) {
      // max(0, ...) guards the one-ulp overshoot when a tied stream was
      // advanced exactly onto its own next threshold by another event.
      key = stream.last_t +
            std::max(0.0, heap.top_key() - stream.level) * stream.inv_rate;
    }
    next_time_[stream_id] = key;
  };

  auto flush_dirty = [&]() {
    for (const std::size_t id : dirty_) {
      dirty_flag_[id] = 0;
      refresh(id);
    }
    dirty_.clear();
  };

  place_pending();
  flush_dirty();

  while (resident > 0) {
    // Cross-stream pick: a vectorizable min over the lazy per-stream
    // next-exhaustion times, then the lowest tied index. For the few dozen
    // streams of a real chip this beats re-sifting an indexed heap on
    // every rate change. With folded compute the per-SM streams are
    // guaranteed idle and the scan covers just the mem + deadline slots.
    double event_t = next_time_[scan_base];
    std::size_t stream_id = scan_base;
    for (std::size_t s = scan_base + 1; s < num_streams; ++s) {
      if (next_time_[s] < event_t) {
        event_t = next_time_[s];
        stream_id = s;  // strict < keeps the lowest tied index
      }
    }
    GROPHECY_ENSURES(std::isfinite(event_t) && event_t >= t);
    t = event_t;
    ++stats_.events;

    int freed_count = 0;
    int freed_sm = 0;
    // Retires a cohort whose heap-backed demands are all exhausted — or
    // parks it on the deadline heap when a folded demand outlives them.
    auto finish_or_defer = [&](std::size_t cid) {
      if (cohort_remaining_[cid] != 0) return;
      const double deadline = cohort_deadline_[cid];
      if (deadline > t) {
        heaps_[deadline_stream].push(deadline,
                                     static_cast<std::int32_t>(cid));
        mark_dirty(deadline_stream);
        return;
      }
      sm_load_[static_cast<std::size_t>(cohort_sm_[cid])] -=
          cohort_count_[cid];
      resident -= cohort_count_[cid];
      free_cohorts_.push_back(static_cast<std::int32_t>(cid));
      ++freed_count;
      freed_sm = cohort_sm_[cid];
    };

    auto& heap = heaps_[stream_id];
    GROPHECY_ENSURES(!heap.empty());
    if (stream_id == deadline_stream) {
      // Deadline retirements: remaining is 0 by construction, the slots
      // just come free now.
      do {
        const auto cid = static_cast<std::size_t>(heap.top_value());
        heap.pop();
        sm_load_[static_cast<std::size_t>(cohort_sm_[cid])] -=
            cohort_count_[cid];
        resident -= cohort_count_[cid];
        free_cohorts_.push_back(static_cast<std::int32_t>(cid));
        ++freed_count;
        freed_sm = cohort_sm_[cid];
      } while (!heap.empty() && heap.top_key() <= t);
    } else {
      StreamCore& stream = streams_[stream_id];
      stream.level += stream.rate * (t - stream.last_t);
      stream.last_t = t;
      // Snap onto the triggering threshold: the event time was computed as
      // the exact crossing, so any residue is rounding, not physics.
      if (stream.level < heap.top_key()) stream.level = heap.top_key();

      if (stream_id < mem_stream) {
        do {
          const auto cid = static_cast<std::size_t>(heap.top_value());
          heap.pop();
          compute_consumers_[stream_id] -= cohort_count_[cid];
          cohort_remaining_[cid] &= static_cast<std::uint8_t>(~kComputeBit);
          finish_or_defer(cid);
        } while (!heap.empty() && heap.top_key() <= stream.level);
      } else {
        do {
          const auto cid = static_cast<std::size_t>(heap.top_value());
          heap.pop();
          mem_consumers -= cohort_count_[cid];
          cohort_remaining_[cid] &= static_cast<std::uint8_t>(~kMemoryBit);
          finish_or_defer(cid);
        } while (!heap.empty() && heap.top_key() <= stream.level);
      }
    }
    mark_dirty(stream_id);

    if (freed_count > 0 && pending > 0) {
      if (freed_count == 1 && !quantized) {
        // Steady-state fast path: while blocks are pending the chip was
        // full before this event, so the single freed slot is the unique
        // least-loaded SM — no min scan, no batch machinery. Draw order
        // matches place_pending exactly (one draw per pending decrement,
        // redrawing through degenerate blocks).
        while (pending > 0) {
          --pending;
          const double jitter = rng.lognormal(1.0, sigma);
          const double compute = base.compute_cycles * jitter;
          const double memory = base.memory_bytes * jitter;
          const double floor = base.floor_s * jitter;
          if (compute <= kSimEps && memory <= kSimEps && floor <= kSimEps)
            continue;
          ++sm_load_[static_cast<std::size_t>(freed_sm)];
          ++resident;
          open_cohort(freed_sm, compute, memory, floor);
          break;
        }
      } else {
        place_pending();
      }
    }
    flush_dirty();
  }
  GROPHECY_ENSURES(pending == 0);
  return t;
}

}  // namespace grophecy::sim
