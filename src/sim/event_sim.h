// Discrete-event GPU timing simulator (higher-fidelity cross-check).
//
// The wave-based GpuSimulator assumes blocks execute in synchronized waves
// and every SM gets an equal slice of DRAM bandwidth. Real devices are
// messier: the block scheduler is greedy (a finishing block's slot is
// refilled immediately), DRAM bandwidth is shared chip-wide, and
// block-to-block variation skews the tail. EventGpuSimulator models those
// effects with a fluid discrete-event simulation:
//
//   * every thread block carries a compute demand (issue cycles on its SM)
//     and a memory demand (bytes from the shared DRAM controller);
//   * resident blocks progress concurrently: compute rate is an equal
//     share of the SM's issue bandwidth, memory rate an equal share of
//     chip DRAM bandwidth — recomputed at every block start/finish event;
//   * the scheduler backfills the earliest free SM slot greedily.
//
// For homogeneous, fully occupied kernels the fluid model converges to the
// wave model (the cross-validation tests pin this), while partially filled
// tails and jittered blocks show the greedy scheduler's advantage. The
// projection pipeline can opt in via ProjectionOptions::detailed_sim.
//
// Two interchangeable engines implement the fluid model:
//
//   * SimEngine::kCohort (default) — the cohort engine in sim/cohort_sim.h:
//     closed-form generations when jitter is off (bitwise-equal results),
//     per-stream threshold heaps when it is on. This is the fast path.
//   * SimEngine::kReference — the original per-block O(events x resident)
//     loop, retained as the executable specification. The equivalence
//     suite (tests/sim_equivalence_test.cpp) pins the two together.
#pragma once

#include <cstdint>
#include <vector>

#include "gpumodel/characteristics.h"
#include "hw/machine.h"
#include "sim/cohort_sim.h"
#include "sim/gpu_sim.h"
#include "util/rng.h"

namespace grophecy::sim {

/// Which fluid-model engine EventGpuSimulator runs.
enum class SimEngine {
  kCohort,     ///< Cohort engine (fast path, default).
  kReference,  ///< Original per-block loop (executable specification).
};

/// Tuning knobs for EventGpuSimulator. Defaults reproduce the reference
/// behaviour exactly (bitwise when jitter is off).
struct EventSimOptions {
  SimEngine engine = SimEngine::kCohort;

  /// When > 0, jittered runs snap each block's lognormal draw onto a
  /// lattice with step `jitter_quantum * sigma` in log space, letting
  /// same-jitter blocks share cohorts (fewer events, small documented
  /// accuracy cost — see docs/performance.md). 0 keeps draws continuous.
  double jitter_quantum = 0.0;
};

/// Fluid discrete-event simulator of a GpuSpec.
class EventGpuSimulator final : public KernelTimer {
 public:
  EventGpuSimulator(hw::GpuSpec gpu, std::uint64_t seed,
                    EventSimOptions options = {});

  /// Deterministic launch time with per-block jitter disabled.
  SimBreakdown expected_launch(const gpumodel::KernelCharacteristics& kc) const;

  /// One observation with per-block lognormal jitter (plus launch jitter).
  double run_launch_seconds(const gpumodel::KernelCharacteristics& kc) override;

  const hw::GpuSpec& gpu() const { return gpu_; }
  const EventSimOptions& options() const { return options_; }

  /// Counters from the cohort engine's most recent simulation (zeroed
  /// while the reference engine is selected). For benches and tests.
  const CohortSimStats& last_stats() const { return engine_.stats(); }

 private:
  /// One resident block's remaining demands (reference engine).
  struct RunningBlock {
    int sm = 0;
    double compute_left = 0.0;
    double memory_left = 0.0;
    double floor_left = 0.0;

    bool done() const {
      return compute_left <= kSimEps && memory_left <= kSimEps &&
             floor_left <= kSimEps;
    }
  };

  /// Core fluid simulation; block_jitter_sigma = 0 gives the expectation.
  double simulate(const gpumodel::KernelCharacteristics& kc,
                  double block_jitter_sigma, util::Rng* rng) const;

  /// The retained reference engine (SimEngine::kReference).
  double simulate_reference(const gpumodel::KernelCharacteristics& kc,
                            double block_jitter_sigma, util::Rng* rng) const;

  hw::GpuSpec gpu_;
  util::Rng rng_;
  EventSimOptions options_;
  mutable CohortEngine engine_;
  // Reference-engine scratch, hoisted so repeated simulations (calibration
  // sweeps run thousands) do not reallocate per call.
  mutable std::vector<int> sm_load_;
  mutable std::vector<RunningBlock> running_;
  mutable std::vector<int> compute_consumers_;
};

}  // namespace grophecy::sim
