// Discrete-event GPU timing simulator (higher-fidelity cross-check).
//
// The wave-based GpuSimulator assumes blocks execute in synchronized waves
// and every SM gets an equal slice of DRAM bandwidth. Real devices are
// messier: the block scheduler is greedy (a finishing block's slot is
// refilled immediately), DRAM bandwidth is shared chip-wide, and
// block-to-block variation skews the tail. EventGpuSimulator models those
// effects with a fluid discrete-event simulation:
//
//   * every thread block carries a compute demand (issue cycles on its SM)
//     and a memory demand (bytes from the shared DRAM controller);
//   * resident blocks progress concurrently: compute rate is an equal
//     share of the SM's issue bandwidth, memory rate an equal share of
//     chip DRAM bandwidth — recomputed at every block start/finish event;
//   * the scheduler backfills the earliest free SM slot greedily.
//
// For homogeneous, fully occupied kernels the fluid model converges to the
// wave model (the cross-validation tests pin this), while partially filled
// tails and jittered blocks show the greedy scheduler's advantage. The
// projection pipeline can opt in via ProjectionOptions::detailed_sim.
#pragma once

#include <cstdint>

#include "gpumodel/characteristics.h"
#include "hw/machine.h"
#include "sim/gpu_sim.h"
#include "util/rng.h"

namespace grophecy::sim {

/// Fluid discrete-event simulator of a GpuSpec.
class EventGpuSimulator final : public KernelTimer {
 public:
  EventGpuSimulator(hw::GpuSpec gpu, std::uint64_t seed);

  /// Deterministic launch time with per-block jitter disabled.
  SimBreakdown expected_launch(const gpumodel::KernelCharacteristics& kc) const;

  /// One observation with per-block lognormal jitter (plus launch jitter).
  double run_launch_seconds(const gpumodel::KernelCharacteristics& kc) override;

  const hw::GpuSpec& gpu() const { return gpu_; }

 private:
  /// Core fluid simulation; block_jitter_sigma = 0 gives the expectation.
  double simulate(const gpumodel::KernelCharacteristics& kc,
                  double block_jitter_sigma, util::Rng* rng) const;

  hw::GpuSpec gpu_;
  util::Rng rng_;
};

}  // namespace grophecy::sim
