// The cohort event engine — the fast projection hot path.
//
// The original (retained) discrete-event fluid simulator advances every
// resident block individually: per event it rebuilds consumer counts,
// allocates a per-SM scratch vector, scans all resident blocks three
// times, and places pending blocks with an O(num_sms) min_element per
// block. That is O(events x resident) work with events ~ O(num_blocks) —
// the wall-clock bottleneck of every projection sweep.
//
// This engine exploits the structure of the fluid model instead:
//
//   * Jitter-free (the expected_launch path): every block of a launch has
//     bitwise-identical demands, so the resident set always forms one
//     synchronized generation of at most TWO cohorts (SMs holding
//     ceil(G/num_sms) blocks and SMs holding floor(G/num_sms)). Each
//     generation is advanced with the same per-event arithmetic as the
//     reference, but per cohort instead of per block: O(1) work per event
//     and O(num_blocks / chip_capacity) generations in total. Because the
//     floating-point expressions and event sequence are identical, the
//     result is bit-for-bit equal to the reference simulator.
//
//   * Jittered (the run_launch_seconds path): per-block lognormal jitter
//     breaks the symmetry, but the fluid rates stay fair-share: every
//     memory consumer drains at the same chip_bw/m rate, every compute
//     consumer on one SM at the same issue/c_s rate, and every floor at
//     rate 1. Demands therefore exhaust in a FIXED per-stream order that
//     rate changes cannot reorder — each block's exhaustion point is a
//     constant threshold in its stream's "drain level" coordinate.
//     Thresholds go into per-stream min-heaps once at placement; an
//     indexed min-heap across the (num_sms + 2) streams picks the next
//     exhaustion; rate changes rekey one stream in O(log) instead of
//     touching every block. Blocks placed at the same instant on the same
//     SM with the same jitter collapse into one cohort (one heap entry,
//     one retirement); with continuous jitter cohorts are singletons, and
//     a quantized-jitter option (EventSimOptions::jitter_quantum) snaps
//     draws to a lattice so batches share cohorts at a small, documented
//     accuracy cost.
//
// See docs/performance.md for the invariants and the micro_sim numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "gpumodel/characteristics.h"
#include "gpumodel/occupancy.h"
#include "hw/machine.h"
#include "util/indexed_heap.h"
#include "util/rng.h"

namespace grophecy::sim {

/// Demand threshold below which a demand counts as exhausted (shared with
/// the retained reference engine so the two agree on degeneracy).
inline constexpr double kSimEps = 1e-15;

/// Static per-block demands derived from the kernel characteristics via
/// the per-warp math shared with the wave simulator
/// (gpumodel::warp_demands).
struct BlockDemands {
  double compute_cycles = 0.0;  ///< SM issue cycles.
  double memory_bytes = 0.0;    ///< Effective DRAM demand (replay/locality).
  double floor_s = 0.0;         ///< Serial floor: exposed latency + syncs.
};

BlockDemands block_demands(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu,
                           const gpumodel::Occupancy& occ);

/// Throughput counters of the last simulation, for tests, the micro_sim
/// bench, and docs/performance.md. Cheap to maintain; not part of the
/// simulated physics.
struct CohortSimStats {
  std::uint64_t events = 0;       ///< Exhaustion events processed.
  std::uint64_t cohorts = 0;      ///< Cohorts created (jittered path).
  std::uint64_t generations = 0;  ///< Synchronized generations (jitter-free).
  std::int64_t blocks = 0;        ///< Blocks scheduled.
};

/// The cohort engine. Owns reusable scratch so repeated simulations do not
/// allocate. Not thread-safe; EventGpuSimulator owns one per instance.
class CohortEngine {
 public:
  /// Jitter-free expected launch body (no launch overhead added).
  /// Bitwise-identical to the reference engine's jitter-free result.
  double simulate_expected(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu);

  /// One jittered launch body (no launch overhead added). `jitter_quantum`
  /// > 0 snaps the lognormal draws to a lattice of that step (in units of
  /// sigma) so same-jitter placements collapse into cohorts.
  double simulate_jittered(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu, double sigma,
                           double jitter_quantum, util::Rng& rng);

  const CohortSimStats& stats() const { return stats_; }

 private:
  // --- jittered-path state (members to keep the hot path allocation-free)
  struct Cohort {
    int sm = 0;
    std::int32_t count = 0;
    std::uint8_t remaining = 0;  ///< Bitmask of unexhausted demands.
  };
  struct HeapEntry {
    double threshold = 0.0;
    std::int32_t cohort = 0;
  };
  struct Stream {
    std::vector<HeapEntry> heap;  ///< Min-heap on threshold.
    double level = 0.0;           ///< Drain level at last_t.
    double last_t = 0.0;
    double rate = 0.0;            ///< Per-block drain rate.
  };
  struct Placement {
    int sm = 0;
    double jitter = 1.0;
    std::int32_t count = 0;
  };

  void heap_push(Stream& stream, double threshold, std::int32_t cohort);
  HeapEntry heap_pop(Stream& stream);

  CohortSimStats stats_;
  std::vector<Stream> streams_;
  std::vector<Cohort> cohorts_;
  std::vector<std::int32_t> free_cohorts_;
  std::vector<int> sm_load_;
  std::vector<std::int64_t> compute_consumers_;
  std::vector<Placement> batch_;
  std::vector<std::size_t> dirty_;
  std::vector<char> dirty_flag_;
  util::IndexedMinHeap next_event_;
};

}  // namespace grophecy::sim
