// The cohort event engine — the fast projection hot path.
//
// The original (retained) discrete-event fluid simulator advances every
// resident block individually: per event it rebuilds consumer counts,
// allocates a per-SM scratch vector, scans all resident blocks three
// times, and places pending blocks with an O(num_sms) min_element per
// block. That is O(events x resident) work with events ~ O(num_blocks) —
// the wall-clock bottleneck of every projection sweep.
//
// This engine exploits the structure of the fluid model instead:
//
//   * Jitter-free (the expected_launch path): every block of a launch has
//     bitwise-identical demands, so the resident set always forms one
//     synchronized generation of at most TWO cohorts (SMs holding
//     ceil(G/num_sms) blocks and SMs holding floor(G/num_sms)). Each
//     generation is advanced with the same per-event arithmetic as the
//     reference, but per cohort instead of per block: O(1) work per event
//     and O(num_blocks / chip_capacity) generations in total. Because the
//     floating-point expressions and event sequence are identical, the
//     result is bit-for-bit equal to the reference simulator.
//
//   * Jittered (the run_launch_seconds path): per-block lognormal jitter
//     breaks the symmetry, but the fluid rates stay fair-share: every
//     memory consumer drains at the same chip_bw/m rate, every compute
//     consumer on one SM at the same issue/c_s rate, and every floor at
//     rate 1. Demands therefore exhaust in a FIXED per-stream order that
//     rate changes cannot reorder — each block's exhaustion point is a
//     constant threshold in its stream's "drain level" coordinate.
//     Thresholds go into per-stream flat 4-ary min-heaps (SoA
//     threshold[]/cohort[] arrays, util::FlatDaryHeap) once at placement;
//     a lazy per-stream next-exhaustion-time array scanned with a
//     vectorized min picks the next event, so a rate change rekeys one
//     stream with one multiply against precomputed fair-share rate tables
//     instead of a divide plus a heap sift. Demands whose drain rate is
//     frozen for the cohort's whole residency — the floor (rate 1 always)
//     and, when occupancy is one block per SM, the private compute stream
//     — never enter a heap at all: they fold into one per-cohort wall-
//     clock deadline resolved at the cohort's last demand pop (or by the
//     deadline heap when the folded demand is what gates retirement), so
//     non-gating exhaustions cost no events. Jitter draws are batched
//     through util::Rng::fill_lognormal (bitwise the sequential stream)
//     and blocks placed at the same instant on the same SM with the same
//     jitter collapse into one cohort (one heap entry, one retirement) —
//     with continuous jitter cohorts are singletons, and a
//     quantized-jitter option (EventSimOptions::jitter_quantum) snaps
//     draws to a lattice (exp memoized per lattice point, merges found by
//     an epoch-tagged bucket table) so batches share cohorts at a small,
//     documented accuracy cost. All scratch is engine-owned and grow-only:
//     after the first launch on a chip geometry, a whole simulation runs
//     without touching the allocator (gated by micro_sim's operator-new
//     counter).
//
// See docs/performance.md for the invariants and the micro_sim numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "gpumodel/characteristics.h"
#include "gpumodel/occupancy.h"
#include "hw/machine.h"
#include "util/flat_dary_heap.h"
#include "util/rng.h"

namespace grophecy::sim {

/// Demand threshold below which a demand counts as exhausted (shared with
/// the retained reference engine so the two agree on degeneracy).
inline constexpr double kSimEps = 1e-15;

/// Static per-block demands derived from the kernel characteristics via
/// the per-warp math shared with the wave simulator
/// (gpumodel::warp_demands).
struct BlockDemands {
  double compute_cycles = 0.0;  ///< SM issue cycles.
  double memory_bytes = 0.0;    ///< Effective DRAM demand (replay/locality).
  double floor_s = 0.0;         ///< Serial floor: exposed latency + syncs.
};

BlockDemands block_demands(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu,
                           const gpumodel::Occupancy& occ);

/// Throughput counters of the last simulation, for tests, the micro_sim
/// bench, and docs/performance.md. Cheap to maintain; not part of the
/// simulated physics.
struct CohortSimStats {
  std::uint64_t events = 0;       ///< Exhaustion events processed.
  std::uint64_t cohorts = 0;      ///< Cohorts created (jittered path).
  std::uint64_t generations = 0;  ///< Synchronized generations (jitter-free).
  std::int64_t blocks = 0;        ///< Blocks scheduled.
};

/// The cohort engine. Owns reusable scratch so repeated simulations do not
/// allocate. Not thread-safe; EventGpuSimulator owns one per instance.
class CohortEngine {
 public:
  /// Jitter-free expected launch body (no launch overhead added).
  /// Bitwise-identical to the reference engine's jitter-free result.
  double simulate_expected(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu);

  /// One jittered launch body (no launch overhead added). `jitter_quantum`
  /// > 0 snaps the lognormal draws to a lattice of that step (in units of
  /// sigma) so same-jitter placements collapse into cohorts.
  double simulate_jittered(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu, double sigma,
                           double jitter_quantum, util::Rng& rng);

  const CohortSimStats& stats() const { return stats_; }

 private:
  // --- jittered-path state, all structure-of-arrays and grow-only so the
  //     steady-state loop never allocates (reserved once per chip geometry,
  //     cleared without freeing between launches).
  struct StreamCore {
    double level = 0.0;     ///< Drain level at last_t.
    double last_t = 0.0;
    double rate = 0.0;      ///< Per-block drain rate.
    double inv_rate = 0.0;  ///< Reciprocal companion: multiply, don't divide.
  };

  CohortSimStats stats_;
  std::vector<StreamCore> streams_;
  std::vector<util::FlatDaryHeap<4>> heaps_;  ///< Thresholds per stream.
  std::vector<double> next_time_;  ///< Lazy next exhaustion time per stream.
  // Cohorts as parallel arrays; retired slots recycle through free_cohorts_.
  std::vector<std::int32_t> cohort_sm_;
  std::vector<std::int32_t> cohort_count_;
  std::vector<std::uint8_t> cohort_remaining_;  ///< Unexhausted-demand bits.
  std::vector<double> cohort_deadline_;  ///< Folded constant-rate demands.
  std::vector<std::int32_t> free_cohorts_;
  std::vector<std::int32_t> freed_sms_;  ///< Solo path: SMs freed this event.
  std::vector<int> sm_load_;
  std::vector<std::int64_t> compute_consumers_;
  // Fair-share rates indexed by consumer count: rate[c] is bitwise the
  // reference's issue/c (resp. bw/c); the precomputed reciprocal turns the
  // per-refresh division into a multiply.
  std::vector<double> compute_rate_;
  std::vector<double> compute_inv_rate_;
  std::vector<double> mem_rate_;
  std::vector<double> mem_inv_rate_;
  // Batched jitter draws and their lattice indices (quantized mode).
  std::vector<double> draw_;
  std::vector<std::int32_t> draw_idx_;
  // Lattice point -> jitter memo: exp() once per distinct point, not per
  // block. Rebuilt only when the lattice step changes.
  std::vector<double> lattice_jitter_;
  double lattice_step_ = 0.0;
  // Lattice-bucket counting merge: cohort id per (lattice point, SM) cell,
  // epoch-tagged so invalidating a batch's cells is O(1).
  std::vector<std::int32_t> bucket_cohort_;
  std::vector<std::uint32_t> bucket_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<std::size_t> dirty_;
  std::vector<char> dirty_flag_;
};

}  // namespace grophecy::sim
