#include "sim/gpu_sim.h"

#include <algorithm>
#include <cmath>

#include "gpumodel/kernel_model.h"
#include "gpumodel/occupancy.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::sim {

namespace {
/// Instruction slots consumed by one special-function op relative to a MAD.
constexpr double kSpecialInstCost = 4.0;
}  // namespace

GpuSimulator::GpuSimulator(hw::GpuSpec gpu, std::uint64_t seed)
    : gpu_(std::move(gpu)), rng_(seed) {}

SimBreakdown GpuSimulator::expected_launch(
    const gpumodel::KernelCharacteristics& kc) const {
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu_, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);  // explorer only emits feasible

  const double clock_hz = gpu_.core_clock_ghz * 1e9;
  const double issue_cycles =
      static_cast<double>(gpu_.warp_size) / gpu_.cores_per_sm;
  const int warps_per_block =
      (kc.variant.block_size + gpu_.warp_size - 1) / gpu_.warp_size;

  // --- per-warp instruction stream (with real-code overheads) ---
  const double insts_per_thread =
      (kc.flops_per_thread / gpu_.flops_per_core_per_cycle +
       kc.special_per_thread * kSpecialInstCost +
       kc.index_insts_per_thread) *
      gpu_.instruction_overhead;
  const double warp_compute_cycles = insts_per_thread * issue_cycles;

  // --- per-warp memory stream (replay + achieved bandwidth) ---
  const double achieved_bw =
      gpu_.mem_bandwidth_gbps * util::kGB * gpu_.achieved_bw_fraction;
  const double bw_bytes_per_cycle_sm = achieved_bw / gpu_.num_sms / clock_hz;

  double warp_traffic_bytes = 0.0;   // effective DRAM demand per warp
  double warp_mem_insts = 0.0;       // warp-level memory instructions
  double warp_latency_cycles = 0.0;  // exposed-latency demand per warp
  for (const gpumodel::MemAccess& access : kc.accesses) {
    gpumodel::WarpAccessCost cost = gpumodel::warp_access_cost(access, gpu_);
    double replay = 1.0;
    if (access.cls == gpumodel::AccessClass::kStrided ||
        access.cls == gpumodel::AccessClass::kScattered) {
      replay = gpu_.uncoalesced_replay_factor;
    }
    double latency = gpu_.dram_latency_cycles;
    if (access.cls == gpumodel::AccessClass::kScattered) {
      latency *= gpu_.indirect_access_penalty;
    }
    // Gathered streams sustain only a fraction of streaming bandwidth;
    // charge the locality loss as extra effective demand.
    double locality = 1.0;
    if (access.gathered_stream) locality = 1.0 / gpu_.gather_stream_fraction;
    warp_traffic_bytes +=
        access.count_per_thread * cost.bytes_moved * replay * locality;
    warp_mem_insts += access.count_per_thread;
    warp_latency_cycles += access.count_per_thread * latency;
  }

  // --- wave-by-wave schedule ---
  const std::int64_t chip_blocks =
      static_cast<std::int64_t>(occ.blocks_per_sm) * gpu_.num_sms;
  const std::int64_t full_waves = kc.num_blocks / chip_blocks;
  const std::int64_t rem_blocks = kc.num_blocks % chip_blocks;

  auto wave_cycles = [&](int resident_blocks_per_sm) {
    const double warps =
        static_cast<double>(resident_blocks_per_sm) * warps_per_block;
    const double compute = warps * warp_compute_cycles;
    const double memory = warps * warp_traffic_bytes / bw_bytes_per_cycle_sm;
    // Memory-level parallelism: stalls overlap across however many warps
    // are resident, but no deeper than the MWP the bus sustains.
    const double dep_delay =
        warp_mem_insts > 0.0
            ? (warp_traffic_bytes / warp_mem_insts) / bw_bytes_per_cycle_sm
            : 1.0;
    const double mwp_bw = std::max(1.0, gpu_.dram_latency_cycles / dep_delay);
    const double overlap = std::max(1.0, std::min(warps, mwp_bw));
    const double latency = warps * warp_latency_cycles / overlap;
    const double sync = static_cast<double>(resident_blocks_per_sm) *
                        kc.syncs_per_thread *
                        (gpu_.sync_cycles + warps_per_block * issue_cycles);
    struct {
      double compute, memory, latency, sync, total;
    } w{compute, memory, latency, sync,
        std::max({compute, memory, latency}) + sync};
    return w;
  };

  SimBreakdown out;
  out.waves = static_cast<int>(full_waves + (rem_blocks > 0 ? 1 : 0));

  double compute_cycles = 0.0, memory_cycles = 0.0, latency_cycles = 0.0,
         sync_cycles = 0.0, total_cycles = 0.0;
  if (full_waves > 0) {
    const auto w = wave_cycles(occ.blocks_per_sm);
    compute_cycles += static_cast<double>(full_waves) * w.compute;
    memory_cycles += static_cast<double>(full_waves) * w.memory;
    latency_cycles += static_cast<double>(full_waves) * w.latency;
    sync_cycles += static_cast<double>(full_waves) * w.sync;
    total_cycles += static_cast<double>(full_waves) * w.total;
  }
  if (rem_blocks > 0) {
    // Final partial wave: blocks spread across SMs; some SMs may idle.
    const int resident = static_cast<int>(
        (rem_blocks + gpu_.num_sms - 1) / gpu_.num_sms);
    const auto w = wave_cycles(resident);
    compute_cycles += w.compute;
    memory_cycles += w.memory;
    latency_cycles += w.latency;
    sync_cycles += w.sync;
    total_cycles += w.total;
  }

  out.compute_s = compute_cycles / clock_hz;
  out.memory_s = memory_cycles / clock_hz;
  out.latency_s = latency_cycles / clock_hz;
  out.sync_s = sync_cycles / clock_hz;
  out.launch_s = gpu_.kernel_launch_overhead_s;
  out.total_s = total_cycles / clock_hz + out.launch_s;
  return out;
}

double KernelTimer::measure_launch_seconds(
    const gpumodel::KernelCharacteristics& kc, int runs) {
  GROPHECY_EXPECTS(runs > 0);
  double sum = 0.0;
  for (int i = 0; i < runs; ++i) sum += run_launch_seconds(kc);
  return sum / runs;
}

double GpuSimulator::run_launch_seconds(
    const gpumodel::KernelCharacteristics& kc) {
  const double base = expected_launch(kc).total_s;
  return rng_.lognormal(base, gpu_.timing_jitter_sigma);
}

}  // namespace grophecy::sim
