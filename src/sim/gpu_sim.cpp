#include "sim/gpu_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "gpumodel/kernel_model.h"
#include "gpumodel/occupancy.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/units.h"

namespace grophecy::sim {

GpuSimulator::GpuSimulator(hw::GpuSpec gpu, std::uint64_t seed)
    : gpu_(std::move(gpu)), rng_(seed) {}

SimBreakdown GpuSimulator::expected_launch(
    const gpumodel::KernelCharacteristics& kc) const {
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu_, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);  // explorer only emits feasible

  const double clock_hz = gpu_.core_clock_ghz * 1e9;

  // Per-warp instruction and memory streams (with real-code overheads,
  // replay, and locality derating) — shared with the event simulator.
  const gpumodel::WarpDemands wd = gpumodel::warp_demands(kc, gpu_);
  const double issue_cycles = wd.issue_cycles;
  const int warps_per_block = wd.warps_per_block;
  const double warp_compute_cycles = wd.compute_cycles;
  const double warp_traffic_bytes = wd.traffic_bytes;
  const double warp_mem_insts = wd.mem_insts;
  const double warp_latency_cycles = wd.latency_cycles;

  const double achieved_bw =
      gpu_.mem_bandwidth_gbps * util::kGB * gpu_.achieved_bw_fraction;
  const double bw_bytes_per_cycle_sm = achieved_bw / gpu_.num_sms / clock_hz;

  // --- wave-by-wave schedule ---
  const std::int64_t chip_blocks =
      static_cast<std::int64_t>(occ.blocks_per_sm) * gpu_.num_sms;
  const std::int64_t full_waves = kc.num_blocks / chip_blocks;
  const std::int64_t rem_blocks = kc.num_blocks % chip_blocks;

  auto wave_cycles = [&](int resident_blocks_per_sm) {
    const double warps =
        static_cast<double>(resident_blocks_per_sm) * warps_per_block;
    const double compute = warps * warp_compute_cycles;
    const double memory = warps * warp_traffic_bytes / bw_bytes_per_cycle_sm;
    // Memory-level parallelism: stalls overlap across however many warps
    // are resident, but no deeper than the MWP the bus sustains.
    const double dep_delay =
        warp_mem_insts > 0.0
            ? (warp_traffic_bytes / warp_mem_insts) / bw_bytes_per_cycle_sm
            : 1.0;
    const double mwp_bw = std::max(1.0, gpu_.dram_latency_cycles / dep_delay);
    const double overlap = std::max(1.0, std::min(warps, mwp_bw));
    const double latency = warps * warp_latency_cycles / overlap;
    const double sync = static_cast<double>(resident_blocks_per_sm) *
                        kc.syncs_per_thread *
                        (gpu_.sync_cycles + warps_per_block * issue_cycles);
    struct {
      double compute, memory, latency, sync, total;
    } w{compute, memory, latency, sync,
        std::max({compute, memory, latency}) + sync};
    return w;
  };

  SimBreakdown out;
  out.waves = static_cast<int>(full_waves + (rem_blocks > 0 ? 1 : 0));

  double compute_cycles = 0.0, memory_cycles = 0.0, latency_cycles = 0.0,
         sync_cycles = 0.0, total_cycles = 0.0;
  if (full_waves > 0) {
    const auto w = wave_cycles(occ.blocks_per_sm);
    compute_cycles += static_cast<double>(full_waves) * w.compute;
    memory_cycles += static_cast<double>(full_waves) * w.memory;
    latency_cycles += static_cast<double>(full_waves) * w.latency;
    sync_cycles += static_cast<double>(full_waves) * w.sync;
    total_cycles += static_cast<double>(full_waves) * w.total;
  }
  if (rem_blocks > 0) {
    // Final partial wave: blocks spread across SMs; some SMs may idle.
    const int resident = static_cast<int>(
        (rem_blocks + gpu_.num_sms - 1) / gpu_.num_sms);
    const auto w = wave_cycles(resident);
    compute_cycles += w.compute;
    memory_cycles += w.memory;
    latency_cycles += w.latency;
    sync_cycles += w.sync;
    total_cycles += w.total;
  }

  out.compute_s = compute_cycles / clock_hz;
  out.memory_s = memory_cycles / clock_hz;
  out.latency_s = latency_cycles / clock_hz;
  out.sync_s = sync_cycles / clock_hz;
  out.launch_s = gpu_.kernel_launch_overhead_s;
  out.total_s = total_cycles / clock_hz + out.launch_s;
  return out;
}

double KernelTimer::measure_launch_seconds(
    const gpumodel::KernelCharacteristics& kc, int runs) {
  GROPHECY_EXPECTS(runs > 0);
  // Numerically stable running mean (Welford): a plain sum can overflow to
  // inf when a fault-injected heavy-tail outlier lands among the samples,
  // silently poisoning the average. A non-finite sample is a broken
  // observation, not a slow one — surface it as a retryable measurement
  // failure instead of folding it in.
  double mean = 0.0;
  for (int i = 0; i < runs; ++i) {
    const double sample = run_launch_seconds(kc);
    if (!std::isfinite(sample))
      throw MeasurementError(
          "kernel timing returned a non-finite sample (run " +
          std::to_string(i + 1) + " of " + std::to_string(runs) + ")");
    mean += (sample - mean) / static_cast<double>(i + 1);
  }
  GROPHECY_ENSURES(std::isfinite(mean));
  return mean;
}

double GpuSimulator::run_launch_seconds(
    const gpumodel::KernelCharacteristics& kc) {
  const double base = expected_launch(kc).total_s;
  return rng_.lognormal(base, gpu_.timing_jitter_sigma);
}

}  // namespace grophecy::sim
