#include "surrogate/features.h"

#include <algorithm>
#include <cmath>

#include "dataflow/usage_cache.h"
#include "gpumodel/characteristics.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/occupancy.h"
#include "util/error.h"
#include "workloads/skeleton_cache.h"

namespace grophecy::surrogate {

namespace {

/// Floor under every log'd time so a zero scalar cannot produce -inf.
constexpr double kTimeEps = 1e-12;

double log_time(double seconds) {
  return std::log(std::max(seconds, kTimeEps));
}

/// The canonical baseline block size the features are characterized with.
/// Fixed (not the explorer's winner) so extraction never explores: the
/// ridge model learns the gap between this baseline and whatever variant
/// the exact pipeline ends up choosing.
int baseline_block_size(const hw::GpuSpec& gpu) {
  return std::max(gpu.warp_size, std::min(256, gpu.max_threads_per_block));
}

/// The spec-derived (uncalibrated) transfer-time estimate: latency plus
/// bytes over asymptotic pinned bandwidth, per direction. A feature, not
/// a prediction — the model learns the calibrated correction.
double spec_transfer_seconds(const dataflow::TransferPlan& plan,
                             const hw::PcieSpec& pcie) {
  const auto price = [](const hw::PcieDirectionProfile& profile,
                        std::uint64_t bytes) {
    return profile.latency_s +
           static_cast<double>(bytes) / (profile.asymptotic_gbps * 1e9);
  };
  double total = 0.0;
  for (const dataflow::Transfer& t : plan.host_to_device)
    total += price(pcie.pinned_h2d, t.bytes);
  for (const dataflow::Transfer& t : plan.device_to_host)
    total += price(pcie.pinned_d2h, t.bytes);
  return total;
}

/// Indices of the strongest base features, crossed pairwise below.
constexpr std::array<int, 6> kCrossBase{3, 4, 5, 8, 14, 15};

}  // namespace

const std::array<std::string, kFeatureCount>& feature_names() {
  static const std::array<std::string, kFeatureCount> names = [] {
    std::array<std::string, kFeatureCount> n;
    const std::array<const char*, kBaseFeatureCount> base{
        "log1p_input_bytes",      // 0
        "log1p_output_bytes",     // 1
        "log1p_transfer_count",   // 2
        "log_iterations",         // 3
        "log_analytic_kernel_s",  // 4
        "log_spec_transfer_s",    // 5
        "log1p_total_threads",    // 6
        "log1p_total_blocks",     // 7
        "log1p_traffic_bytes",    // 8
        "log1p_compute_cycles",   // 9
        "log1p_latency_cycles",   // 10
        "log1p_mem_insts",        // 11
        "occupancy_mean",         // 12
        "log_num_sms",            // 13
        "log_gpu_gflops",         // 14
        "log_gpu_bw_gbps",        // 15
        "log_pcie_gbps",          // 16
        "log_dram_latency",       // 17
        "log_cpu_gflops",         // 18
        "log_cpu_bw_gbps",        // 19
        "log1p_kernels",          // 20
        "log_launch_overhead_s",  // 21
    };
    for (int i = 0; i < kBaseFeatureCount; ++i) n[static_cast<std::size_t>(i)] = base[static_cast<std::size_t>(i)];
    int out = kBaseFeatureCount;
    for (std::size_t a = 0; a < kCrossBase.size(); ++a)
      for (std::size_t b = a + 1; b < kCrossBase.size(); ++b)
        n[static_cast<std::size_t>(out++)] =
            n[static_cast<std::size_t>(kCrossBase[a])] + "*" +
            n[static_cast<std::size_t>(kCrossBase[b])];
    for (int idx : {3, 4, 5})
      n[static_cast<std::size_t>(out++)] =
          n[static_cast<std::size_t>(idx)] + "^2";
    return n;
  }();
  return names;
}

FeatureVector extract_features(const workloads::Workload& workload,
                               const workloads::DataSize& size,
                               int iterations,
                               const hw::MachineSpec& machine) {
  if (iterations < 1)
    throw UsageError("surrogate features need iterations >= 1, got " +
                     std::to_string(iterations));

  const auto built = workloads::cached_skeleton(workload, size, iterations);
  const auto usage = dataflow::cached_usage(built->usage_key, built->app);
  const dataflow::TransferPlan& plan = usage->plan;
  const hw::GpuSpec& gpu = machine.gpu;

  // Per-kernel demands of the canonical baseline variant, summed over the
  // app's kernels (all launch once per iteration). A kernel whose register
  // or shared-memory demand makes the canonical block size infeasible is
  // characterized at the largest feasible power-of-two fraction instead —
  // still deterministic, and never inf in the log features.
  const gpumodel::KernelTimeModel model(gpu);
  double analytic_kernel_s = 0.0;
  double total_threads = 0.0;
  double total_blocks = 0.0;
  double traffic_bytes = 0.0;
  double compute_cycles = 0.0;
  double latency_cycles = 0.0;
  double mem_insts = 0.0;
  double occupancy_sum = 0.0;
  for (const skeleton::KernelSkeleton& kernel : built->app.kernels) {
    gpumodel::Variant variant;
    variant.block_size = baseline_block_size(gpu);
    gpumodel::KernelCharacteristics kc =
        gpumodel::characterize(built->app, kernel, variant, gpu);
    gpumodel::KernelTimeBreakdown breakdown = model.project(kc);
    while (!breakdown.feasible && variant.block_size > gpu.warp_size) {
      variant.block_size =
          std::max(gpu.warp_size, variant.block_size / 2);
      kc = gpumodel::characterize(built->app, kernel, variant, gpu);
      breakdown = model.project(kc);
    }
    const gpumodel::WarpDemands demands = gpumodel::warp_demands(kc, gpu);
    const double warps = static_cast<double>(kc.total_threads) /
                         static_cast<double>(gpu.warp_size);
    if (breakdown.feasible) analytic_kernel_s += breakdown.total_s;
    total_threads += static_cast<double>(kc.total_threads);
    total_blocks += static_cast<double>(kc.num_blocks);
    traffic_bytes += demands.traffic_bytes * warps;
    compute_cycles += demands.compute_cycles * warps;
    latency_cycles += demands.latency_cycles;
    mem_insts += demands.mem_insts * warps;
    occupancy_sum += breakdown.occupancy.fraction;
  }
  const double kernel_count =
      static_cast<double>(built->app.kernels.size());

  FeatureVector features;
  auto& f = features.values;
  f[0] = std::log1p(static_cast<double>(plan.input_bytes()));
  f[1] = std::log1p(static_cast<double>(plan.output_bytes()));
  f[2] = std::log1p(static_cast<double>(plan.transfer_count()));
  f[3] = std::log(static_cast<double>(iterations));
  f[4] = log_time(analytic_kernel_s);
  f[5] = log_time(spec_transfer_seconds(plan, machine.pcie));
  f[6] = std::log1p(total_threads);
  f[7] = std::log1p(total_blocks);
  f[8] = std::log1p(traffic_bytes);
  f[9] = std::log1p(compute_cycles);
  f[10] = std::log1p(latency_cycles);
  f[11] = std::log1p(mem_insts);
  f[12] = kernel_count > 0.0 ? occupancy_sum / kernel_count : 0.0;
  f[13] = std::log(static_cast<double>(gpu.num_sms));
  f[14] = std::log(gpu.peak_gflops());
  f[15] = std::log(gpu.mem_bandwidth_gbps);
  f[16] = std::log(std::max(machine.pcie.pinned_h2d.asymptotic_gbps, 1e-6));
  f[17] = std::log(std::max(gpu.dram_latency_cycles, 1.0));
  f[18] = std::log(machine.cpu.peak_gflops());
  f[19] = std::log(machine.cpu.mem_bandwidth_gbps);
  f[20] = std::log1p(kernel_count);
  f[21] = log_time(gpu.kernel_launch_overhead_s);

  int out = kBaseFeatureCount;
  for (std::size_t a = 0; a < kCrossBase.size(); ++a)
    for (std::size_t b = a + 1; b < kCrossBase.size(); ++b)
      f[static_cast<std::size_t>(out++)] =
          f[static_cast<std::size_t>(kCrossBase[a])] *
          f[static_cast<std::size_t>(kCrossBase[b])];
  for (int idx : {3, 4, 5})
    f[static_cast<std::size_t>(out++)] =
        f[static_cast<std::size_t>(idx)] * f[static_cast<std::size_t>(idx)];
  return features;
}

FeatureVector extract_features(const std::string& workload,
                               const std::string& size_label, int iterations,
                               const hw::MachineSpec& machine) {
  const workloads::Workload& resolved =
      workloads::PaperSuite::instance().find(workload);
  const workloads::DataSize size =
      workloads::find_data_size(resolved, size_label);
  return extract_features(resolved, size, iterations, machine);
}

TargetVector targets_of(const core::ProjectionReport& report) {
  TargetVector targets;
  targets.values = {report.predicted_kernel_s, report.predicted_transfer_s,
                    report.measured_kernel_s, report.measured_transfer_s,
                    report.measured_cpu_s};
  return targets;
}

}  // namespace grophecy::surrogate
