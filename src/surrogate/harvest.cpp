#include "surrogate/harvest.h"

#include <unordered_set>
#include <utility>

#include "exec/journal.h"
#include "exec/sweep.h"
#include "hw/machine_registry.h"
#include "util/logging.h"

namespace grophecy::surrogate {

HarvestResult harvest_journal(const std::string& path,
                              const hw::MachineSpec& default_machine) {
  const exec::JournalReadResult read = exec::ResultJournal::read(path);
  HarvestResult result;
  result.corrupt_lines = read.corrupt_lines;

  std::unordered_set<std::string> seen;
  for (const std::string& payload : read.records) {
    const std::optional<exec::JobRecord> record =
        exec::JobRecord::from_json(payload);
    if (!record) {
      ++result.skipped_unparsed;
      continue;
    }
    if (!record->ok()) {
      ++result.skipped_failed;
      continue;
    }
    if (!seen.insert(record->fingerprint).second) continue;

    const hw::MachineSpec* machine = &default_machine;
    if (!record->machine.empty()) {
      machine = hw::MachineRegistry::global().try_find(record->machine);
      if (!machine) {
        ++result.skipped_unknown;
        continue;
      }
    }
    TrainingSample sample;
    sample.fingerprint = record->fingerprint;
    try {
      sample.features = extract_features(record->workload, record->size_label,
                                         record->iterations, *machine);
    } catch (const std::exception& e) {
      // A journal from a newer/foreign suite can name workloads this
      // build does not know; skip, don't fail the harvest.
      GROPHECY_LOG(kDebug) << "surrogate harvest: skipping "
                           << record->fingerprint << ": " << e.what();
      ++result.skipped_unknown;
      continue;
    }
    sample.targets.values = {record->predicted_kernel_s,
                             record->predicted_transfer_s,
                             record->measured_kernel_s,
                             record->measured_transfer_s,
                             record->measured_cpu_s};
    result.samples.push_back(std::move(sample));
  }
  return result;
}

}  // namespace grophecy::surrogate
