// Journal harvesting: turning finished sweep campaigns into surrogate
// training data.
//
// Every sweep already journals its results as crash-safe JSONL records
// keyed by job fingerprint (exec/journal.h), and a JobRecord carries the
// exact five scalars the surrogate predicts. Harvesting replays those
// records through the feature extractor, so a daemon (or the
// surrogate_train tool) can warm-start its model from past campaigns
// instead of self-distilling from zero.
#pragma once

#include <string>
#include <vector>

#include "hw/machine.h"
#include "surrogate/model.h"

namespace grophecy::surrogate {

struct HarvestResult {
  /// One sample per parseable ok record, journal order (duplicates by
  /// fingerprint keep the first occurrence).
  std::vector<TrainingSample> samples;
  int skipped_failed = 0;    ///< status:"failed" records (no targets).
  int skipped_unknown = 0;   ///< Unresolvable workload/size/machine names.
  int skipped_unparsed = 0;  ///< Checksum-valid lines that are not JobRecords.
  int corrupt_lines = 0;     ///< Journal lines that failed the checksum.
};

/// Reads `path` (a sweep journal) and extracts training samples. Records
/// with an empty machine name resolve against `default_machine`; named
/// machines resolve through hw::MachineRegistry::global(). Never throws
/// for damaged or missing journals — damage is counted, like the sweep
/// engine's own resume path.
HarvestResult harvest_journal(const std::string& path,
                              const hw::MachineSpec& default_machine);

}  // namespace grophecy::surrogate
