// The surrogate's learned core: closed-form ridge regression in log space
// with distance-binned uncertainty.
//
// A SurrogateModel is fit from (features -> targets) pairs by solving the
// normal equations once per target (shared Gram matrix, Cholesky) — no
// iterative optimizer, no external dependency, deterministic to the bit
// for a given pool. Targets are times, so the fit runs on log(target):
// multiplicative structure ("double the iterations, double the time")
// becomes additive, and a single linear model interpolates the paper grid
// to a few percent.
//
// The model also knows what it does NOT know. At fit time every training
// sample records its distance to its nearest neighbour in standardized
// feature space; those distances are bucketed by quantile and each bucket
// carries the p95 relative residual of the samples that live there. A
// query is assigned the bound of the bucket its own nearest-training-
// distance falls into — dense regions answer with tight bounds, sparse
// regions with loose ones, and a query beyond kNoveltyFactor times the
// largest training distance gets an infinite bound, which the engine's
// confidence gate turns into a fallthrough to the exact pipeline.
#pragma once

#include <string>
#include <vector>

#include "core/grophecy.h"
#include "surrogate/features.h"

namespace grophecy::surrogate {

/// One exact projection the model learns from, keyed by the job
/// fingerprint (exec::JobSpec::fingerprint) for pool dedupe.
struct TrainingSample {
  std::string fingerprint;
  FeatureVector features;
  TargetVector targets;
};

/// A surrogate answer with its uncertainty account.
struct Prediction {
  TargetVector targets;
  /// The model's error bound for this query: the p95 relative residual of
  /// the training-density bucket the query falls into. +inf for a query
  /// novel enough that no bucket speaks for it.
  double rel_error_bound = 0.0;
  /// Distance to the nearest training sample, standardized space.
  double nn_distance = 0.0;
  int bucket = 0;  ///< Density bucket index (0 = densest).
};

class SurrogateModel {
 public:
  /// Distance-quantile buckets carrying residual p95 bounds.
  static constexpr int kBuckets = 4;
  /// A bucket needs this many residents to earn its own bound; smaller
  /// buckets inherit the global p95.
  static constexpr int kMinBucketSamples = 5;
  /// Queries farther than this multiple of the largest training
  /// nearest-neighbour distance are "novel": bound = +inf.
  static constexpr double kNoveltyFactor = 4.0;

  /// Fits a model on the pool. Requires >= 2 samples (callers gate on
  /// SurrogateOptions::min_train_points, which validate() keeps >= 2);
  /// `lambda` is the ridge strength. Deterministic: same pool in the same
  /// order gives a bit-identical model.
  static SurrogateModel fit(const std::vector<TrainingSample>& samples,
                            double lambda);

  SurrogateModel() = default;

  bool fitted() const { return !train_points_.empty(); }

  /// Predicts the five target scalars with an uncertainty bound. Requires
  /// fitted().
  Prediction predict(const FeatureVector& features) const;

  /// Pool size the model was fit on.
  int train_count() const { return static_cast<int>(train_points_.size()); }
  /// Global in-sample relative-residual quantiles (diagnostics).
  double rel_error_p50() const { return rel_p50_; }
  double rel_error_p95() const { return rel_p95_; }
  /// Upper distance edge / residual bound of one bucket (diagnostics).
  double bucket_edge(int bucket) const;
  double bucket_bound(int bucket) const;

 private:
  // Standardization (z-scores); degenerate columns keep scale 1 so a
  // query that differs where training never did still moves the distance.
  std::array<double, kFeatureCount> mean_{};
  std::array<double, kFeatureCount> scale_{};
  // Per-target weights in log space: [bias, w_0 .. w_{D-1}].
  std::array<std::array<double, kFeatureCount + 1>, kTargetCount> weights_{};
  // Standardized training points, for query nearest-neighbour distance.
  std::vector<std::array<double, kFeatureCount>> train_points_;
  // Distance-bucket upper edges (ascending) and their residual bounds.
  std::array<double, kBuckets> bucket_edges_{};
  std::array<double, kBuckets> bucket_bounds_{};
  double max_train_distance_ = 0.0;
  double rel_p50_ = 0.0;
  double rel_p95_ = 0.0;
};

}  // namespace grophecy::surrogate
