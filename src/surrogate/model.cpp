#include "surrogate/model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"
#include "util/error.h"
#include "util/stats.h"

namespace grophecy::surrogate {

namespace {

constexpr int kDim = kFeatureCount;
/// Columns of the augmented design: bias + features.
constexpr int kAug = kDim + 1;
/// Floor under a log'd target and under a residual denominator.
constexpr double kTargetEps = 1e-12;

using AugVector = std::array<double, kAug>;
using AugMatrix = std::array<AugVector, kAug>;

/// In-place Cholesky factorization A = L L^T (lower triangle). The Gram
/// matrix is SPD by construction (ridge diagonal), so this cannot fail on
/// real input; the contract guards against NaN poisoning.
void cholesky(AugMatrix& a) {
  for (int j = 0; j < kAug; ++j) {
    double diag = a[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)];
    for (int k = 0; k < j; ++k) {
      const double l = a[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
      diag -= l * l;
    }
    GROPHECY_ENSURES(diag > 0.0);
    const double root = std::sqrt(diag);
    a[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)] = root;
    for (int i = j + 1; i < kAug; ++i) {
      double sum = a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      for (int k = 0; k < j; ++k)
        sum -= a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
               a[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sum / root;
    }
  }
}

/// Solves L L^T x = b given the factor from cholesky().
AugVector cholesky_solve(const AugMatrix& l, const AugVector& b) {
  AugVector y{};
  for (int i = 0; i < kAug; ++i) {
    double sum = b[static_cast<std::size_t>(i)];
    for (int k = 0; k < i; ++k)
      sum -= l[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] =
        sum / l[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
  }
  AugVector x{};
  for (int i = kAug - 1; i >= 0; --i) {
    double sum = y[static_cast<std::size_t>(i)];
    for (int k = i + 1; k < kAug; ++k)
      sum -= l[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
             x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] =
        sum / l[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
  }
  return x;
}

double squared_distance(const std::array<double, kDim>& a,
                        const std::array<double, kDim>& b) {
  double sum = 0.0;
  for (int d = 0; d < kDim; ++d) {
    const double diff =
        a[static_cast<std::size_t>(d)] - b[static_cast<std::size_t>(d)];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

SurrogateModel SurrogateModel::fit(const std::vector<TrainingSample>& samples,
                                   double lambda) {
  if (samples.size() < 2)
    throw UsageError("SurrogateModel::fit needs >= 2 samples, got " +
                     std::to_string(samples.size()));
  if (lambda <= 0.0) throw UsageError("SurrogateModel::fit needs lambda > 0");
  const std::size_t n = samples.size();

  SurrogateModel model;

  // --- standardize columns (z-scores; degenerate columns keep scale 1) ---
  for (int d = 0; d < kDim; ++d) {
    double sum = 0.0;
    for (const TrainingSample& s : samples)
      sum += s.features.values[static_cast<std::size_t>(d)];
    const double mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (const TrainingSample& s : samples) {
      const double diff =
          s.features.values[static_cast<std::size_t>(d)] - mean;
      var += diff * diff;
    }
    const double sd = std::sqrt(var / static_cast<double>(n));
    model.mean_[static_cast<std::size_t>(d)] = mean;
    model.scale_[static_cast<std::size_t>(d)] = sd > 1e-12 ? sd : 1.0;
  }
  model.train_points_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    for (int d = 0; d < kDim; ++d)
      model.train_points_[i][static_cast<std::size_t>(d)] =
          (samples[i].features.values[static_cast<std::size_t>(d)] -
           model.mean_[static_cast<std::size_t>(d)]) /
          model.scale_[static_cast<std::size_t>(d)];

  // --- shared Gram matrix, one closed-form solve per target ---
  AugMatrix gram{};
  for (std::size_t i = 0; i < n; ++i) {
    AugVector a{};
    a[0] = 1.0;
    for (int d = 0; d < kDim; ++d)
      a[static_cast<std::size_t>(d) + 1] =
          model.train_points_[i][static_cast<std::size_t>(d)];
    for (int r = 0; r < kAug; ++r)
      for (int c = 0; c <= r; ++c)
        gram[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] +=
            a[static_cast<std::size_t>(r)] * a[static_cast<std::size_t>(c)];
  }
  for (int r = 0; r < kAug; ++r)
    for (int c = r + 1; c < kAug; ++c)
      gram[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          gram[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
  // Ridge on the feature weights; only a vanishing jitter on the bias so
  // the intercept stays unshrunk.
  gram[0][0] += 1e-10;
  for (int d = 1; d < kAug; ++d)
    gram[static_cast<std::size_t>(d)][static_cast<std::size_t>(d)] += lambda;
  cholesky(gram);

  for (int t = 0; t < kTargetCount; ++t) {
    AugVector rhs{};
    for (std::size_t i = 0; i < n; ++i) {
      const double y = std::log(std::max(
          samples[i].targets.values[static_cast<std::size_t>(t)], kTargetEps));
      rhs[0] += y;
      for (int d = 0; d < kDim; ++d)
        rhs[static_cast<std::size_t>(d) + 1] +=
            model.train_points_[i][static_cast<std::size_t>(d)] * y;
    }
    model.weights_[static_cast<std::size_t>(t)] = cholesky_solve(gram, rhs);
  }

  // --- uncertainty: in-sample residuals, binned by training density ---
  std::vector<double> residuals(n);
  for (std::size_t i = 0; i < n; ++i) {
    double worst = 0.0;
    for (int t = 0; t < kTargetCount; ++t) {
      const AugVector& w = model.weights_[static_cast<std::size_t>(t)];
      double pred = w[0];
      for (int d = 0; d < kDim; ++d)
        pred += w[static_cast<std::size_t>(d) + 1] *
                model.train_points_[i][static_cast<std::size_t>(d)];
      const double truth =
          samples[i].targets.values[static_cast<std::size_t>(t)];
      const double rel = std::abs(std::exp(pred) - truth) /
                         std::max(truth, kTargetEps);
      worst = std::max(worst, rel);
    }
    residuals[i] = worst;
  }
  model.rel_p50_ = util::percentile(residuals, 50.0);
  model.rel_p95_ = util::percentile(residuals, 95.0);

  // Nearest-neighbour distance of each training sample (excluding self):
  // the density signal the buckets are cut on.
  std::vector<double> nn(n);
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      best = std::min(best, squared_distance(model.train_points_[i],
                                             model.train_points_[j]));
    }
    nn[i] = std::sqrt(best);
  }
  model.max_train_distance_ = *std::max_element(nn.begin(), nn.end());
  for (int b = 0; b < kBuckets; ++b)
    model.bucket_edges_[static_cast<std::size_t>(b)] = util::percentile(
        nn, 100.0 * static_cast<double>(b + 1) / kBuckets);

  std::array<std::vector<double>, kBuckets> by_bucket;
  for (std::size_t i = 0; i < n; ++i) {
    int bucket = kBuckets - 1;
    for (int b = 0; b < kBuckets; ++b) {
      if (nn[i] <= model.bucket_edges_[static_cast<std::size_t>(b)]) {
        bucket = b;
        break;
      }
    }
    by_bucket[static_cast<std::size_t>(bucket)].push_back(residuals[i]);
  }
  for (int b = 0; b < kBuckets; ++b) {
    const std::vector<double>& bucket = by_bucket[static_cast<std::size_t>(b)];
    model.bucket_bounds_[static_cast<std::size_t>(b)] =
        bucket.size() >= static_cast<std::size_t>(kMinBucketSamples)
            ? util::percentile(bucket, 95.0)
            : model.rel_p95_;
  }
  return model;
}

Prediction SurrogateModel::predict(const FeatureVector& features) const {
  GROPHECY_EXPECTS(fitted());
  std::array<double, kDim> z{};
  for (int d = 0; d < kDim; ++d)
    z[static_cast<std::size_t>(d)] =
        (features.values[static_cast<std::size_t>(d)] -
         mean_[static_cast<std::size_t>(d)]) /
        scale_[static_cast<std::size_t>(d)];

  Prediction prediction;
  for (int t = 0; t < kTargetCount; ++t) {
    const AugVector& w = weights_[static_cast<std::size_t>(t)];
    double pred = w[0];
    for (int d = 0; d < kDim; ++d)
      pred += w[static_cast<std::size_t>(d) + 1] * z[static_cast<std::size_t>(d)];
    prediction.targets.values[static_cast<std::size_t>(t)] = std::exp(pred);
  }

  double best = std::numeric_limits<double>::infinity();
  for (const std::array<double, kDim>& point : train_points_)
    best = std::min(best, squared_distance(z, point));
  prediction.nn_distance = std::sqrt(best);

  if (prediction.nn_distance > kNoveltyFactor * max_train_distance_) {
    prediction.bucket = kBuckets - 1;
    prediction.rel_error_bound = std::numeric_limits<double>::infinity();
    return prediction;
  }
  int bucket = kBuckets - 1;
  for (int b = 0; b < kBuckets; ++b) {
    if (prediction.nn_distance <=
        bucket_edges_[static_cast<std::size_t>(b)]) {
      bucket = b;
      break;
    }
  }
  prediction.bucket = bucket;
  prediction.rel_error_bound = bucket_bounds_[static_cast<std::size_t>(bucket)];
  return prediction;
}

double SurrogateModel::bucket_edge(int bucket) const {
  GROPHECY_EXPECTS(bucket >= 0 && bucket < kBuckets);
  return bucket_edges_[static_cast<std::size_t>(bucket)];
}

double SurrogateModel::bucket_bound(int bucket) const {
  GROPHECY_EXPECTS(bucket >= 0 && bucket < kBuckets);
  return bucket_bounds_[static_cast<std::size_t>(bucket)];
}

}  // namespace grophecy::surrogate
