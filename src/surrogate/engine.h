// The two-tier surrogate engine: a self-distilling fast path in front of
// the exact projection pipeline.
//
// The serve daemon asks try_predict() first. When the ridge model is fit
// and its per-query uncertainty bound (surrogate/model.h) clears the
// configured gate, the query is answered in microseconds from cached
// artifacts — no simulation, no measurement. Otherwise the caller runs
// the exact pipeline as before and hands the result back via observe():
// the exact answer both serves the client and grows the training pool
// (self-distillation), so precisely the traffic the surrogate cannot yet
// answer is what teaches it to.
//
// Refits run on a background thread behind a single-flight guard — a
// refit in progress is never duplicated and never blocks try_predict()
// or observe(); the serve path keeps answering from the previous model
// snapshot until the new one is swapped in. All entry points are
// thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/grophecy.h"
#include "exec/sweep.h"
#include "hw/machine.h"
#include "surrogate/model.h"

namespace grophecy::surrogate {

class SurrogateEngine {
 public:
  /// Serving counters, all monotonic except pool_size (a gauge).
  struct Stats {
    std::uint64_t served = 0;     ///< Queries answered by the surrogate.
    std::uint64_t fallbacks = 0;  ///< Queries gated through to exact.
    std::uint64_t observed = 0;   ///< Exact results absorbed into the pool.
    std::uint64_t refits = 0;     ///< Completed model fits.
    std::size_t pool_size = 0;    ///< Training samples held right now.
  };

  /// `default_machine` resolves specs with an empty machine name (the
  /// daemon's own machine); named machines resolve through
  /// hw::MachineRegistry::global(). Options must have passed
  /// ProjectionOptions::validate().
  SurrogateEngine(core::SurrogateOptions options,
                  hw::MachineSpec default_machine);
  ~SurrogateEngine();  ///< Joins any in-flight refit.

  SurrogateEngine(const SurrogateEngine&) = delete;
  SurrogateEngine& operator=(const SurrogateEngine&) = delete;

  /// The fast tier. Returns a prediction only when the model is fit on at
  /// least min_train_points samples AND the query's uncertainty bound is
  /// within max_rel_error; otherwise (including any internal error — an
  /// unknown machine name, a feature-extraction failure) returns nullopt
  /// and the caller must run the exact pipeline. Never throws.
  std::optional<Prediction> try_predict(const exec::JobSpec& spec);

  /// Feeds one exact projection back into the training pool, deduped by
  /// job fingerprint. Every refit_interval new observations (and at the
  /// min_train_points threshold) a background refit is scheduled. Never
  /// throws; a sample whose features cannot be extracted is dropped.
  void observe(const exec::JobSpec& spec,
               const core::ProjectionReport& report);
  /// Same, for pre-extracted samples (the journal harvester's path).
  void observe(TrainingSample sample);

  /// Synchronous fit of the current pool (tools and tests; the serve path
  /// uses the background refits). Waits out any in-flight background
  /// refit first. Throws UsageError when the pool holds fewer than
  /// min_train_points samples.
  void fit_now();

  /// Blocks until no refit is in flight. The model visible afterwards
  /// includes every refit scheduled before the call.
  void wait_for_refit();

  /// Test hook, invoked on the refit thread at the start of every
  /// background refit (before the pool snapshot). Lets tests hold a refit
  /// open and prove the serve path stays responsive.
  void set_fit_hook(std::function<void()> hook);

  Stats stats() const;
  const core::SurrogateOptions& options() const { return options_; }

  /// The current model snapshot (nullptr before the first fit). Shared,
  /// immutable — safe to use concurrently with refits.
  std::shared_ptr<const SurrogateModel> model() const;

 private:
  const hw::MachineSpec& resolve_machine(const exec::JobSpec& spec) const;
  /// Schedules a background refit unless one is already in flight.
  /// Call with mutex_ held.
  void maybe_schedule_refit_locked();
  void run_refit();

  const core::SurrogateOptions options_;
  const hw::MachineSpec default_machine_;

  mutable std::mutex mutex_;
  std::condition_variable refit_cv_;
  std::vector<TrainingSample> pool_;
  std::unordered_set<std::string> fingerprints_;
  std::shared_ptr<const SurrogateModel> model_;
  std::function<void()> fit_hook_;
  int since_fit_ = 0;       ///< Observations since the last scheduled fit.
  bool refit_inflight_ = false;
  std::thread refit_thread_;

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> refits_{0};
};

}  // namespace grophecy::surrogate
