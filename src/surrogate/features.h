// Deterministic feature extraction for the learned surrogate fast tier.
//
// A query's features are a pure function of the artifacts the pipeline
// already caches — the built skeleton, the iteration-independent transfer
// plan, per-warp kernel demands (gpumodel::warp_demands) and occupancy of
// a canonical baseline variant, and the machine's headline geometry
// (hw::GpuSpec / CpuSpec / PcieSpec). Extraction therefore costs cache
// lookups plus a few hundred floating-point operations: microseconds on a
// warm process, never a measurement.
//
// The vector is fixed width and keyed by the existing FNV-1a job
// fingerprint (exec::JobSpec::fingerprint), so a training pool and a
// query agree on identity exactly the way the journal and the daemon's
// coalescing index already do. Most features live in log space because
// every target (a time) is fitted in log space: scale relationships
// ("kernel time ~ iterations x work / throughput") become linear there,
// which is what lets a tiny ridge model interpolate the paper grid to a
// few percent. The tail of the vector is the ridge's feature *crosses* —
// pairwise products of the strongest log-features — giving the closed-form
// solver curvature without any iterative training.
#pragma once

#include <array>
#include <string>

#include "core/report.h"
#include "hw/machine.h"
#include "workloads/workload.h"

namespace grophecy::surrogate {

/// Base (interpretable) features; see feature_names() for the labels.
inline constexpr int kBaseFeatureCount = 22;
/// Pairwise crosses + squares of the strongest base features.
inline constexpr int kCrossFeatureCount = 18;
inline constexpr int kFeatureCount = kBaseFeatureCount + kCrossFeatureCount;

/// The targets the surrogate predicts — the five journaled scalars every
/// derived metric of a ProjectionReport is a function of, in this order:
/// predicted_kernel_s, predicted_transfer_s, measured_kernel_s,
/// measured_transfer_s, measured_cpu_s.
inline constexpr int kTargetCount = 5;

struct FeatureVector {
  std::array<double, kFeatureCount> values{};
};

struct TargetVector {
  std::array<double, kTargetCount> values{};
};

/// Diagnostic labels, index-aligned with FeatureVector::values (crosses
/// are named "a*b").
const std::array<std::string, kFeatureCount>& feature_names();

/// Extracts the features of one (workload, size, iterations, machine)
/// query from the cached artifacts. Deterministic: identical inputs give
/// bit-identical vectors. Throws UsageError for an invalid iteration
/// count (mirroring the skeleton builder); workload/size are the caller's
/// resolved objects, so no name errors are possible here.
FeatureVector extract_features(const workloads::Workload& workload,
                               const workloads::DataSize& size,
                               int iterations, const hw::MachineSpec& machine);

/// Name-resolving convenience keyed like exec::JobSpec: looks up the
/// paper-suite workload and size label (throwing the suite's UsageError
/// for unknown names). An empty machine name uses `default_machine`; a
/// non-empty one must be resolved by the caller (the daemon and harvester
/// resolve against hw::MachineRegistry before calling).
FeatureVector extract_features(const std::string& workload,
                               const std::string& size_label, int iterations,
                               const hw::MachineSpec& machine);

/// The five target scalars of an exact projection, in training order.
TargetVector targets_of(const core::ProjectionReport& report);

}  // namespace grophecy::surrogate
