#include "surrogate/engine.h"

#include <utility>

#include "hw/machine_registry.h"
#include "util/logging.h"

namespace grophecy::surrogate {

SurrogateEngine::SurrogateEngine(core::SurrogateOptions options,
                                 hw::MachineSpec default_machine)
    : options_(options), default_machine_(std::move(default_machine)) {}

SurrogateEngine::~SurrogateEngine() {
  wait_for_refit();
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    to_join = std::move(refit_thread_);
  }
  if (to_join.joinable()) to_join.join();
}

const hw::MachineSpec& SurrogateEngine::resolve_machine(
    const exec::JobSpec& spec) const {
  if (spec.machine.empty()) return default_machine_;
  return hw::MachineRegistry::global().find(spec.machine);
}

std::optional<Prediction> SurrogateEngine::try_predict(
    const exec::JobSpec& spec) {
  std::shared_ptr<const SurrogateModel> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = model_;
  }
  if (!snapshot) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  try {
    const FeatureVector features =
        extract_features(spec.workload, spec.size_label, spec.iterations,
                         resolve_machine(spec));
    Prediction prediction = snapshot->predict(features);
    if (snapshot->train_count() >= options_.min_train_points &&
        prediction.rel_error_bound <= options_.max_rel_error) {
      served_.fetch_add(1, std::memory_order_relaxed);
      return prediction;
    }
  } catch (const std::exception& e) {
    // A query the extractor cannot price (unknown name, invalid
    // iterations) is exactly what the exact pipeline's own validation
    // should judge — fall through and let it.
    GROPHECY_LOG(kDebug) << "surrogate: fallthrough for " << spec.key()
                         << ": " << e.what();
  }
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void SurrogateEngine::observe(const exec::JobSpec& spec,
                              const core::ProjectionReport& report) {
  TrainingSample sample;
  sample.fingerprint = spec.fingerprint();
  try {
    sample.features = extract_features(spec.workload, spec.size_label,
                                       spec.iterations,
                                       resolve_machine(spec));
  } catch (const std::exception& e) {
    GROPHECY_LOG(kDebug) << "surrogate: dropping observation " << spec.key()
                         << ": " << e.what();
    return;
  }
  sample.targets = targets_of(report);
  observe(std::move(sample));
}

void SurrogateEngine::observe(TrainingSample sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!fingerprints_.insert(sample.fingerprint).second) return;
  pool_.push_back(std::move(sample));
  if (pool_.size() > options_.max_pool_points) {
    fingerprints_.erase(pool_.front().fingerprint);
    pool_.erase(pool_.begin());
  }
  observed_.fetch_add(1, std::memory_order_relaxed);
  ++since_fit_;
  maybe_schedule_refit_locked();
}

void SurrogateEngine::maybe_schedule_refit_locked() {
  if (refit_inflight_) return;  // single flight; since_fit_ keeps counting
  if (pool_.size() < static_cast<std::size_t>(options_.min_train_points))
    return;
  if (model_ && since_fit_ < options_.refit_interval) return;
  refit_inflight_ = true;
  since_fit_ = 0;
  // The previous refit thread has finished its work (refit_inflight_ was
  // false); joining here only reaps it.
  if (refit_thread_.joinable()) refit_thread_.join();
  refit_thread_ = std::thread([this] { run_refit(); });
}

void SurrogateEngine::run_refit() {
  std::function<void()> hook;
  std::vector<TrainingSample> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hook = fit_hook_;
  }
  if (hook) hook();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = pool_;
  }
  auto fitted = std::make_shared<const SurrogateModel>(
      SurrogateModel::fit(snapshot, options_.lambda));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(fitted);
    refit_inflight_ = false;
  }
  refits_.fetch_add(1, std::memory_order_relaxed);
  refit_cv_.notify_all();
}

void SurrogateEngine::fit_now() {
  wait_for_refit();
  std::vector<TrainingSample> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = pool_;
  }
  if (snapshot.size() < static_cast<std::size_t>(options_.min_train_points))
    throw UsageError(
        "SurrogateEngine::fit_now: pool holds " +
        std::to_string(snapshot.size()) + " samples, need min_train_points=" +
        std::to_string(options_.min_train_points));
  auto fitted = std::make_shared<const SurrogateModel>(
      SurrogateModel::fit(snapshot, options_.lambda));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(fitted);
    since_fit_ = 0;
  }
  refits_.fetch_add(1, std::memory_order_relaxed);
}

void SurrogateEngine::wait_for_refit() {
  std::unique_lock<std::mutex> lock(mutex_);
  refit_cv_.wait(lock, [this] { return !refit_inflight_; });
}

void SurrogateEngine::set_fit_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  fit_hook_ = std::move(hook);
}

SurrogateEngine::Stats SurrogateEngine::stats() const {
  Stats stats;
  stats.served = served_.load(std::memory_order_relaxed);
  stats.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  stats.observed = observed_.load(std::memory_order_relaxed);
  stats.refits = refits_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.pool_size = pool_.size();
  }
  return stats;
}

std::shared_ptr<const SurrogateModel> SurrogateEngine::model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_;
}

}  // namespace grophecy::surrogate
