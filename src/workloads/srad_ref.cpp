#include "workloads/srad_ref.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace grophecy::workloads {

SradReference::SradReference(std::int64_t n, std::uint64_t seed,
                             float lambda)
    : n_(n), lambda_(lambda) {
  GROPHECY_EXPECTS(n >= 4);
  GROPHECY_EXPECTS(lambda > 0.0f && lambda <= 1.0f);
  const std::size_t cells = static_cast<std::size_t>(n) * n;
  image_.resize(cells);
  coef_.resize(cells);
  d_n_.resize(cells);
  d_s_.resize(cells);
  d_w_.resize(cells);
  d_e_.resize(cells);

  util::Rng rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // Smooth background (a bright disc on a dark field) with
      // multiplicative exponential speckle, like the Rodinia input.
      const double di = (static_cast<double>(i) - n / 2.0) / n;
      const double dj = (static_cast<double>(j) - n / 2.0) / n;
      const double background = di * di + dj * dj < 0.09 ? 0.8 : 0.2;
      const double speckle = -std::log(1.0 - rng.uniform() * 0.999999);
      image_[static_cast<std::size_t>(i * n + j)] =
          static_cast<float>(background * speckle + 0.05);
    }
  }
}

double SradReference::image_mean() const {
  double sum = 0.0;
  for (float v : image_) sum += v;
  return sum / static_cast<double>(image_.size());
}

double SradReference::image_variance() const {
  const double mean = image_mean();
  double sum_sq = 0.0;
  for (float v : image_) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(image_.size());
}

void SradReference::step() {
  const std::int64_t n = n_;
  const double mean = image_mean();
  const double variance = image_variance();
  const float q0sqr = static_cast<float>(variance / (mean * mean));

  float* image = image_.data();
  float* coef = coef_.data();
  float* dn = d_n_.data();
  float* ds = d_s_.data();
  float* dw = d_w_.data();
  float* de = d_e_.data();

  // Kernel 1: derivatives and diffusion coefficient.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t idx = i * n + j;
      const float jc = image[idx];
      const float jn = i > 0 ? image[idx - n] : jc;
      const float js = i < n - 1 ? image[idx + n] : jc;
      const float jw = j > 0 ? image[idx - 1] : jc;
      const float je = j < n - 1 ? image[idx + 1] : jc;

      dn[idx] = jn - jc;
      ds[idx] = js - jc;
      dw[idx] = jw - jc;
      de[idx] = je - jc;

      const float g2 = (dn[idx] * dn[idx] + ds[idx] * ds[idx] +
                        dw[idx] * dw[idx] + de[idx] * de[idx]) /
                       (jc * jc);
      const float l = (dn[idx] + ds[idx] + dw[idx] + de[idx]) / jc;
      const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
      const float den1 = 1.0f + 0.25f * l;
      const float qsqr = num / (den1 * den1);
      const float den2 =
          (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
      coef[idx] = std::clamp(1.0f / (1.0f + den2), 0.0f, 1.0f);
    }
  }

  // Kernel 2: divergence update.
  const float quarter_lambda = 0.25f * lambda_;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t idx = i * n + j;
      const float c_c = coef[idx];
      const float c_s = i < n - 1 ? coef[idx + n] : c_c;
      const float c_e = j < n - 1 ? coef[idx + 1] : c_c;
      const float divergence = c_c * dn[idx] + c_s * ds[idx] +
                               c_c * dw[idx] + c_e * de[idx];
      image[idx] += quarter_lambda * divergence;
    }
  }
}

void SradReference::run(int count) {
  GROPHECY_EXPECTS(count >= 0);
  for (int i = 0; i < count; ++i) step();
}

}  // namespace grophecy::workloads
