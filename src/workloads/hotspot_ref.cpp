#include "workloads/hotspot_ref.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"
#include "util/rng.h"

namespace grophecy::workloads {

HotspotReference::HotspotReference(std::int64_t n, std::uint64_t seed,
                                   HotspotParams params)
    : n_(n), params_(params) {
  GROPHECY_EXPECTS(n >= 4);
  const std::size_t cells = static_cast<std::size_t>(n) * n;
  temp_in_.resize(cells);
  temp_out_.resize(cells);
  power_.resize(cells);

  util::Rng rng(seed);
  for (std::size_t idx = 0; idx < cells; ++idx) {
    temp_in_[idx] =
        params_.amb_temp + static_cast<float>(rng.uniform(0.0, 1.0));
    // A few percent of cells are active functional units drawing power.
    power_[idx] = rng.bernoulli(0.05)
                      ? static_cast<float>(rng.uniform(0.5, 1.0))
                      : 0.0f;
  }

  // Rodinia's coefficient setup.
  const float grid_height = params_.chip_height / static_cast<float>(n);
  const float grid_width = params_.chip_width / static_cast<float>(n);
  const float cap =
      params_.spec_heat_si * params_.t_chip * grid_height * grid_width;
  const float rx = grid_width /
                   (2.0f * params_.k_si * params_.t_chip * grid_height);
  const float ry = grid_height /
                   (2.0f * params_.k_si * params_.t_chip * grid_width);
  const float rz = params_.t_chip / (params_.k_si * grid_height * grid_width);
  const float max_slope =
      params_.max_pd / (params_.t_chip * params_.spec_heat_si);
  const float step = params_.precision / max_slope;
  rx_1_ = 1.0f / rx;
  ry_1_ = 1.0f / ry;
  rz_1_ = 1.0f / rz;
  cap_1_ = step / cap;
}

void HotspotReference::step() {
  const std::int64_t n = n_;
  const float amb = params_.amb_temp;
  const float* in = temp_in_.data();
  const float* pow_map = power_.data();
  float* out = temp_out_.data();

#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t idx = i * n + j;
      const float center = in[idx];
      // Clamped (Neumann-like) boundary: out-of-grid neighbors repeat the
      // center value, matching the guarded loads the skeleton models.
      const float north = i > 0 ? in[idx - n] : center;
      const float south = i < n - 1 ? in[idx + n] : center;
      const float west = j > 0 ? in[idx - 1] : center;
      const float east = j < n - 1 ? in[idx + 1] : center;
      const float delta =
          cap_1_ * (pow_map[idx] + (south + north - 2.0f * center) * ry_1_ +
                    (east + west - 2.0f * center) * rx_1_ +
                    (amb - center) * rz_1_);
      out[idx] = center + delta;
    }
  }
  std::swap(temp_in_, temp_out_);
}

void HotspotReference::run(int count) {
  GROPHECY_EXPECTS(count >= 0);
  for (int i = 0; i < count; ++i) step();
}

}  // namespace grophecy::workloads
