// Runnable OpenMP reference implementation of SRAD.
//
// Speckle-Reducing Anisotropic Diffusion (Rodinia): kernel 1 computes
// directional derivatives and the diffusion coefficient per pixel, kernel 2
// applies the divergence update. Used by the tests to validate the
// skeleton's two-kernel dataflow (image in/out, five temporaries) and the
// smoothing property (variance decreases while features persist).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace grophecy::workloads {

/// An n x n SRAD instance over a synthetic speckled image.
class SradReference {
 public:
  /// Builds a deterministic speckled image: smooth background times
  /// exponential multiplicative noise, as in ultrasound imagery.
  SradReference(std::int64_t n, std::uint64_t seed, float lambda = 0.5f);

  /// One diffusion iteration (both kernels).
  void step();
  void run(int count);

  std::int64_t size() const { return n_; }
  std::span<const float> image() const { return image_; }
  std::span<const float> coefficients() const { return coef_; }

  /// Mean and variance of the current image (used for q0 and by tests).
  double image_mean() const;
  double image_variance() const;

 private:
  std::int64_t n_;
  float lambda_;
  std::vector<float> image_;
  std::vector<float> coef_;
  std::vector<float> d_n_, d_s_, d_w_, d_e_;
};

}  // namespace grophecy::workloads
