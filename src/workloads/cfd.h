// CFD skeleton (paper §IV-B).
//
// "An unstructured-grid, finite-volume solver for the 3D Euler equations
// for compressible flow. The core part of the benchmark is spread over
// three GPU kernels. The kernels are separated in order to enforce global
// synchronization so that an array can be consumed before it is updated."
//
// Per element the solver carries 5 conserved variables (density, 3x
// momentum, energy), an area, 4 neighbor indices, and 6 floats of face
// geometry — 64 B of input and 20 B of output per element, matching
// Table I (97K elements: 6.3 MB in / 1.9 MB out, decimal MB). The flux
// kernel gathers neighbor variables through the element-surrounding-
// elements list: a genuinely data-dependent, scatter-class access.
#pragma once

#include "workloads/workload.h"

namespace grophecy::workloads {

/// Builds the CFD skeleton directly (n = element count).
skeleton::AppSkeleton cfd_skeleton(std::int64_t n, int iterations);

}  // namespace grophecy::workloads
