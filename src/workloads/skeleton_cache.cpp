#include "workloads/skeleton_cache.h"

#include "skeleton/fingerprint.h"

namespace grophecy::workloads {

util::ArtifactCache<BuiltSkeleton>& skeleton_cache() {
  static util::ArtifactCache<BuiltSkeleton> cache;
  return cache;
}

std::shared_ptr<const BuiltSkeleton> cached_skeleton(const Workload& workload,
                                                     const DataSize& size,
                                                     int iterations) {
  util::KeyBuilder key;
  key.field("skeleton")
      .field(workload.name())
      .field(size.label)
      .field(size.param)
      .field(iterations);
  return skeleton_cache().get_or_build(key.hash(), [&] {
    BuiltSkeleton built;
    built.app = workload.make_skeleton(size, iterations);
    built.content_hash = skeleton::fingerprint(built.app);
    built.usage_key = skeleton::usage_fingerprint(built.app);
    return built;
  });
}

}  // namespace grophecy::workloads
