#include "workloads/matmul.h"

#include <algorithm>

#include "skeleton/builder.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace grophecy::workloads {

skeleton::AppSkeleton matmul_skeleton(std::int64_t n, int iterations) {
  GROPHECY_EXPECTS(n >= 8);
  using skeleton::ElemType;

  skeleton::AppBuilder app("matmul");
  const auto a = app.array("A", ElemType::kF32, {n, n});
  const auto b = app.array("B", ElemType::kF32, {n, n});
  const auto c = app.array("C", ElemType::kF32, {n, n});
  app.iterations(iterations);

  skeleton::KernelBuilder& k = app.kernel("mm");
  k.parallel_loop("i", n).parallel_loop("j", n).loop("k", n);
  // Multiply-add per (i, j, k); the accumulator lives in a register and
  // C is stored once per (i, j).
  k.statement(/*flops=*/2.0)
      .load(a, {k.var("i"), k.var("k")})
      .load(b, {k.var("k"), k.var("j")});
  k.statement(/*flops=*/0.0).at_depth(2).store(c, {k.var("i"), k.var("j")});
  return app.build();
}

MatmulReference::MatmulReference(std::int64_t n, std::uint64_t seed)
    : n_(n) {
  GROPHECY_EXPECTS(n >= 1);
  const std::size_t cells = static_cast<std::size_t>(n) * n;
  a_.resize(cells);
  b_.resize(cells);
  c_.resize(cells, 0.0f);
  util::Rng rng(seed);
  for (std::size_t idx = 0; idx < cells; ++idx) {
    a_[idx] = static_cast<float>(rng.uniform(-1.0, 1.0));
    b_[idx] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
}

void MatmulReference::multiply() {
  const std::int64_t n = n_;
  const float* a = a_.data();
  const float* b = b_.data();
  float* c = c_.data();
  constexpr std::int64_t kTile = 64;

#pragma omp parallel for schedule(static)
  for (std::int64_t i0 = 0; i0 < n; i0 += kTile) {
    for (std::int64_t k0 = 0; k0 < n; k0 += kTile) {
      for (std::int64_t i = i0; i < std::min(i0 + kTile, n); ++i) {
        for (std::int64_t kk = k0; kk < std::min(k0 + kTile, n); ++kk) {
          const float a_ik = a[i * n + kk];
          const float* b_row = b + kk * n;
          float* c_row = c + i * n;
          for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
        }
      }
    }
  }
}

}  // namespace grophecy::workloads
