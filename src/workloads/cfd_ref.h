// Runnable OpenMP reference implementation of CFD.
//
// A compact unstructured finite-volume Euler solver in the shape of
// Rodinia's CFD benchmark: per iteration it (1) saves state and computes a
// CFL step factor per element, (2) accumulates upwind-ish fluxes over four
// face neighbors gathered through an element-surrounding-elements list,
// and (3) integrates in time. The mesh is synthetic (a perturbed ring of
// elements) but exercises the same indirect access pattern; the physics is
// simplified yet conservative enough for tests to assert density stays
// positive and mass is approximately conserved in the interior.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace grophecy::workloads {

/// Number of conserved variables: density, 3x momentum, energy.
inline constexpr int kCfdVars = 5;
/// Face neighbors per element.
inline constexpr int kCfdNeighbors = 4;

/// A synthetic unstructured CFD instance with `n` elements.
class CfdReference {
 public:
  CfdReference(std::int64_t n, std::uint64_t seed);

  /// One solver iteration (all three kernels).
  void step();
  void run(int count);

  std::int64_t size() const { return n_; }
  /// Variable v of every element (v in [0, kCfdVars)).
  std::span<const float> variable(int v) const;
  /// Neighbor list of element i.
  std::span<const std::int32_t> neighbors_of(std::int64_t i) const;

  /// Total density over all elements (tests: approximate conservation).
  double total_density() const;

 private:
  std::int64_t n_;
  // Structure-of-arrays, matching the skeleton: variables[v*n + i].
  std::vector<float> variables_;
  std::vector<float> old_variables_;
  std::vector<float> fluxes_;
  std::vector<float> step_factors_;
  std::vector<float> areas_;
  std::vector<std::int32_t> esel_;   ///< esel[nb*n + i].
  std::vector<float> normals_;       ///< normals[f*n + i], f in [0, 6).
};

}  // namespace grophecy::workloads
