// The paper's benchmark suite as code skeletons (paper §IV-B).
//
// Four benchmarks: SRAD, HotSpot and CFD from Rodinia, plus Stassuij from
// DOE's INCITE program (rebuilt synthetically — see DESIGN.md). Each
// workload provides the data sizes the paper evaluates and a skeleton
// factory; real OpenMP reference implementations live in *_ref.h.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "skeleton/skeleton.h"

namespace grophecy::workloads {

/// One of the paper's data-set configurations.
struct DataSize {
  std::string label;       ///< Table I label, e.g. "97K" or "1024 x 1024".
  std::int64_t param = 0;  ///< Element count (CFD) or grid side (others).
};

/// A benchmark that can be projected by the framework.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// The data sizes evaluated in the paper, smallest first.
  virtual std::vector<DataSize> paper_data_sizes() const = 0;

  /// Builds the application skeleton for a data size and iteration count.
  virtual skeleton::AppSkeleton make_skeleton(const DataSize& size,
                                              int iterations) const = 0;
};

/// CFD: unstructured-grid finite-volume 3D Euler solver, three kernels per
/// iteration, indirect neighbor accesses.
std::unique_ptr<Workload> make_cfd();

/// HotSpot: structured-grid ODE solver (5-point stencil), one kernel.
std::unique_ptr<Workload> make_hotspot();

/// SRAD: speckle-reducing anisotropic diffusion, two dependent kernels.
std::unique_ptr<Workload> make_srad();

/// Stassuij: CSR sparse (real) x dense (complex) matrix multiply from
/// Green's Function Monte Carlo.
std::unique_ptr<Workload> make_stassuij();

/// All four, in the paper's Table I order (CFD, HotSpot, SRAD, Stassuij).
std::vector<std::unique_ptr<Workload>> paper_workloads();

/// The paper suite built once per process, with sorted lookup indexes
/// over workload names and per-workload size labels. Sweeps resolve every
/// job through this instead of reconstructing the four workloads and
/// scanning their name lists per job. Immutable after construction, so
/// concurrent lookups from sweep workers are safe.
class PaperSuite {
 public:
  /// The shared instance (built on first use).
  static const PaperSuite& instance();

  /// The workloads in Table I order.
  const std::vector<std::unique_ptr<Workload>>& all() const { return all_; }

  /// O(log n) name lookup; throws the same UsageError as find_workload,
  /// byte for byte.
  const Workload& find(const std::string& name) const;

  /// O(log n) size-label lookup for one of this suite's workloads; throws
  /// the same UsageError as find_data_size, byte for byte. Returns
  /// nullptr (never throws) when `workload` is not a suite instance so
  /// callers can fall back to the generic scan.
  const DataSize* try_find_size(const Workload& workload,
                                const std::string& label,
                                std::string* valid_labels) const;

 private:
  PaperSuite();

  struct SizeIndex {
    std::map<std::string, DataSize, std::less<>> by_label;
    std::string valid;  ///< Labels joined ", " in declaration order.
  };

  std::vector<std::unique_ptr<Workload>> all_;
  std::map<std::string, const Workload*, std::less<>> by_name_;
  std::string valid_names_;  ///< Names joined ", " in Table I order.
  std::map<const Workload*, SizeIndex> sizes_;
};

/// Looks up a workload by name. An unknown name is bad user input, not a
/// broken invariant: throws grophecy::UsageError listing the valid names.
/// Lookups against PaperSuite::instance().all() use its sorted index;
/// caller-built lists fall back to a linear scan.
const Workload& find_workload(
    const std::vector<std::unique_ptr<Workload>>& all,
    const std::string& name);

/// Looks up one of `workload`'s paper data sizes by its Table I label.
/// Throws grophecy::UsageError listing the valid labels when absent.
/// Suite workloads use the once-built sorted label index.
DataSize find_data_size(const Workload& workload, const std::string& label);

}  // namespace grophecy::workloads
