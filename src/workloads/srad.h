// SRAD skeleton (paper §IV-B).
//
// "A diffusion method to remove speckles from ultrasonic and radar imaging
// applications... It has two kernels: the first one generates diffusion
// coefficients, and the second one updates the image. Data dependency among
// the two kernels involves several arrays, and each data-parallel task in
// the consumer kernel depends on several tasks in the producer kernel."
//
// The image is the only input and the only output (Table I: 2048x2048
// transfers 16 MB each way); the coefficient and derivative arrays are
// user-hinted temporaries (§III-B) and never cross the bus.
#pragma once

#include "workloads/workload.h"

namespace grophecy::workloads {

/// Builds the SRAD skeleton directly (image side n).
skeleton::AppSkeleton srad_skeleton(std::int64_t n, int iterations);

}  // namespace grophecy::workloads
