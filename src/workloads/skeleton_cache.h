// Process-wide cache of built workload skeletons.
//
// A workload skeleton is a pure function of (workload, data size,
// iteration count); a sweep re-builds the same one once per job and once
// per retry. This cache builds each configuration once and shares the
// immutable result — together with its content fingerprints, so the
// downstream usage-analysis cache never has to re-hash the skeleton.
#pragma once

#include <cstdint>
#include <memory>

#include "skeleton/skeleton.h"
#include "util/artifact_cache.h"
#include "workloads/workload.h"

namespace grophecy::workloads {

/// An immutable built skeleton plus its precomputed content identity.
struct BuiltSkeleton {
  skeleton::AppSkeleton app;
  std::uint64_t content_hash = 0;  ///< skeleton::fingerprint(app).
  std::uint64_t usage_key = 0;     ///< skeleton::usage_fingerprint(app).
};

/// Returns the skeleton for one (workload, size, iterations)
/// configuration, built at most once per process. The key is
/// (workload name, size label, size param, iterations) — everything
/// make_skeleton reads.
std::shared_ptr<const BuiltSkeleton> cached_skeleton(const Workload& workload,
                                                     const DataSize& size,
                                                     int iterations);

/// The process-wide cache behind cached_skeleton (accounting and tests).
util::ArtifactCache<BuiltSkeleton>& skeleton_cache();

}  // namespace grophecy::workloads
