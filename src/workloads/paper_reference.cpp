#include "workloads/paper_reference.h"

#include <array>

namespace grophecy::workloads {

namespace {

constexpr std::array<PaperTable1Row, 10> kTable1 = {{
    {"CFD", "97K", 1.9, 3.2, 63, 6.3, 1.9},
    {"CFD", "193K", 3.2, 6.2, 66, 12.6, 3.7},
    {"CFD", "233K", 3.1, 7.4, 70, 15.1, 4.4},
    {"HotSpot", "64 x 64", 0.05, 0.05, 41, 0.05, 0.05},
    {"HotSpot", "512 x 512", 0.3, 1.2, 77, 2.0, 1.0},
    {"HotSpot", "1024 x 1024", 1.2, 4.6, 79, 8.0, 4.0},
    {"SRAD", "1024 x 1024", 2.0, 4.0, 67, 4.0, 4.0},
    {"SRAD", "2048 x 2048", 7.6, 13.0, 63, 16.0, 16.0},
    {"SRAD", "4096 x 4096", 28.1, 49.0, 64, 64.0, 64.0},
    {"Stassuij", "132 x 2048", 2.4, 4.9, 67, 8.5, 4.1},
}};

constexpr std::array<PaperTable2Row, 10> kTable2 = {{
    {"CFD", "97K", 377.0, 67.0, 24.0},
    {"CFD", "193K", 344.0, 56.0, 15.0},
    {"CFD", "233K", 316.0, 46.0, 8.0},
    {"HotSpot", "64x64", 93.0, 198.0, 17.0},
    {"HotSpot", "512x512", 406.0, 35.0, 7.0},
    {"HotSpot", "1024x1024", 366.0, 31.0, 2.0},
    {"SRAD", "1024x1024", 241.0, 97.0, 25.0},
    {"SRAD", "2048x2048", 196.0, 72.0, 9.0},
    {"SRAD", "4096x4096", 176.0, 61.0, 1.0},
    {"Stassuij", "132 x 2048", 182.0, 51.0, 2.0},
}};

}  // namespace

std::span<const PaperTable1Row> paper_table1() { return kTable1; }

std::span<const PaperTable2Row> paper_table2() { return kTable2; }

PaperTable2Averages paper_table2_averages() { return {}; }

}  // namespace grophecy::workloads
