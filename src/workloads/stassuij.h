// Stassuij skeleton (paper §IV-B).
//
// "Stassuij lies in the core of Green's Function Monte Carlo, which
// performs Monte Carlo calculations for light nuclei. It multiplies a
// 132x132 sparse matrix of real numbers with a 132x2048 dense matrix of
// complex numbers. The sparse matrix is represented in CSR format with
// three vectors."
//
// The production code is proprietary; this is the synthetic equivalent
// (see DESIGN.md). The dense operand and the accumulator are complex
// doubles (132x2048x16 B = 4.3 MB each — Table I: 8.5 MB in, 4.1 MB out);
// the CSR vectors are marked sparse, triggering the conservative
// whole-array transfer rule (§III-B). Within a warp the dense accesses are
// coalesced along the j dimension even though the row is data dependent —
// the per-dimension gather modeling in the skeleton IR captures exactly
// this, which is why the paper's kernel-only projection shows a mild GPU
// win (1.10x) that the transfer overhead turns into a 0.39x loss.
#pragma once

#include "workloads/workload.h"

namespace grophecy::workloads {

/// Parameters of the synthetic Stassuij instance.
struct StassuijConfig {
  std::int64_t rows = 132;      ///< Sparse matrix rows (and cols).
  std::int64_t dense_cols = 2048;
  std::int64_t nnz_per_row = 8; ///< Average nonzeros per sparse row.
};

/// Builds the Stassuij skeleton directly.
skeleton::AppSkeleton stassuij_skeleton(const StassuijConfig& config,
                                        int iterations);

}  // namespace grophecy::workloads
