#include "workloads/cfd.h"

#include "skeleton/builder.h"
#include "util/contracts.h"

namespace grophecy::workloads {

skeleton::AppSkeleton cfd_skeleton(std::int64_t n, int iterations) {
  GROPHECY_EXPECTS(n >= 8);
  using skeleton::AffineExpr;
  using skeleton::ElemType;
  const AffineExpr zero = AffineExpr::make_constant(0);

  skeleton::AppBuilder app("cfd");
  // Structure-of-arrays layout as in the Rodinia CUDA port.
  const auto variables = app.array("variables", ElemType::kF32, {5, n});
  const auto old_variables =
      app.array("old_variables", ElemType::kF32, {5, n});
  const auto fluxes = app.array("fluxes", ElemType::kF32, {5, n});
  const auto step_factors = app.array("step_factors", ElemType::kF32, {n});
  const auto areas = app.array("areas", ElemType::kF32, {n});
  const auto esel = app.array("esel", ElemType::kI32, {4, n});
  const auto normals = app.array("normals", ElemType::kF32, {6, n});
  app.temporary(old_variables)
      .temporary(fluxes)
      .temporary(step_factors)
      .iterations(iterations);

  // Kernel 1: save the current state and compute the per-element CFL step
  // factor from density, momentum, energy and cell area.
  {
    skeleton::KernelBuilder& k = app.kernel("compute_step_factor");
    k.parallel_loop("i", n).loop("v", 5);
    const AffineExpr i = k.var("i");
    const AffineExpr v = k.var("v");
    k.statement(/*flops=*/1.0).load(variables, {v, i}).store(old_variables,
                                                             {v, i});
    // Speed of sound + velocity magnitude: divisions and a square root.
    k.statement(/*flops=*/12.0, /*special_ops=*/3.0)
        .at_depth(1)
        .load(variables, {zero, i})
        .load(areas, {i})
        .store(step_factors, {i});
  }

  // Kernel 2: accumulate fluxes over the four face neighbors. Neighbor
  // state is gathered through esel — data dependent on the thread index,
  // hence scatter-class loads that defeat coalescing.
  {
    skeleton::KernelBuilder& k = app.kernel("compute_flux");
    k.parallel_loop("i", n).loop("nb", 4);
    const AffineExpr i = k.var("i");
    const AffineExpr nb = k.var("nb");
    skeleton::KernelBuilder& stmt = k.statement(/*flops=*/42.0,
                                                /*special_ops=*/2.0);
    stmt.load(esel, {nb, i}).load(normals, {nb, i});
    // Gather the neighbor's five conserved variables: variables[v][nbr]
    // where nbr = esel[nb][i]. Dimension 1 is hidden behind the index
    // array and varies with the (thread) loop i.
    for (int v = 0; v < 5; ++v) {
      stmt.load_gather(variables,
                       {AffineExpr::make_constant(v), zero},
                       /*indirect_dims=*/{1}, /*dep_loops=*/{"i", "nb"});
    }
    // Per-element epilogue: own variables, remaining face geometry, and
    // the five accumulated flux stores.
    skeleton::KernelBuilder& epi = k.statement(/*flops=*/26.0,
                                               /*special_ops=*/1.0);
    epi.at_depth(1);
    for (int v = 0; v < 5; ++v)
      epi.load(variables, {AffineExpr::make_constant(v), i});
    epi.load(normals, {AffineExpr::make_constant(4), i})
        .load(normals, {AffineExpr::make_constant(5), i});
    for (int v = 0; v < 5; ++v)
      epi.store(fluxes, {AffineExpr::make_constant(v), i});
  }

  // Kernel 3: explicit time integration using the saved state, the step
  // factor, and the fluxes.
  {
    skeleton::KernelBuilder& k = app.kernel("time_step");
    k.parallel_loop("i", n).loop("v", 5);
    const AffineExpr i = k.var("i");
    const AffineExpr v = k.var("v");
    k.statement(/*flops=*/3.0)
        .load(old_variables, {v, i})
        .load(fluxes, {v, i})
        .load(step_factors, {i})
        .store(variables, {v, i});
  }
  return app.build();
}

namespace {

class CfdWorkload final : public Workload {
 public:
  std::string name() const override { return "CFD"; }

  std::vector<DataSize> paper_data_sizes() const override {
    // Rodinia mesh sizes: fvcorr.domn.097K, fvcorr.domn.193K, missile.domn.
    return {{"97K", 97046}, {"193K", 193474}, {"233K", 232536}};
  }

  skeleton::AppSkeleton make_skeleton(const DataSize& size,
                                      int iterations) const override {
    return cfd_skeleton(size.param, iterations);
  }
};

}  // namespace

std::unique_ptr<Workload> make_cfd() {
  return std::make_unique<CfdWorkload>();
}

}  // namespace grophecy::workloads
