// Dense matrix multiplication — the pedagogical example of the paper's
// Figure 1 ("the overall framework of GPU performance projection" is
// illustrated with a matmul code skeleton).
//
// Not part of the paper's evaluation suite, but bundled because it is the
// canonical showcase for the transformation explorer: the untiled kernel
// is latency-bound (one global load of A and B per multiply-add), while
// the seq-tiled variant stages k-tiles of both operands through shared
// memory and runs an order of magnitude faster — "different
// transformations may result in performance that is orders of magnitude
// apart" (§II-C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workloads/workload.h"

namespace grophecy::workloads {

/// Builds the C = A * B skeleton (square n x n matrices).
skeleton::AppSkeleton matmul_skeleton(std::int64_t n, int iterations = 1);

/// Runnable OpenMP reference: C = A * B with deterministic operands.
class MatmulReference {
 public:
  MatmulReference(std::int64_t n, std::uint64_t seed);

  /// Blocked OpenMP multiply.
  void multiply();

  std::int64_t size() const { return n_; }
  std::span<const float> a() const { return a_; }
  std::span<const float> b() const { return b_; }
  std::span<const float> c() const { return c_; }

 private:
  std::int64_t n_;
  std::vector<float> a_;
  std::vector<float> b_;
  std::vector<float> c_;
};

}  // namespace grophecy::workloads
