#include "workloads/srad.h"

#include "skeleton/builder.h"
#include "util/contracts.h"

namespace grophecy::workloads {

skeleton::AppSkeleton srad_skeleton(std::int64_t n, int iterations) {
  GROPHECY_EXPECTS(n >= 4);
  using skeleton::AffineExpr;
  using skeleton::ElemType;

  skeleton::AppBuilder app("srad");
  const auto image = app.array("image", ElemType::kF32, {n, n});
  const auto coef = app.array("c", ElemType::kF32, {n, n});
  const auto d_n = app.array("dN", ElemType::kF32, {n, n});
  const auto d_s = app.array("dS", ElemType::kF32, {n, n});
  const auto d_w = app.array("dW", ElemType::kF32, {n, n});
  const auto d_e = app.array("dE", ElemType::kF32, {n, n});
  app.temporary(coef)
      .temporary(d_n)
      .temporary(d_s)
      .temporary(d_w)
      .temporary(d_e)
      .iterations(iterations);

  // Kernel 1: directional derivatives + diffusion coefficient.
  {
    skeleton::KernelBuilder& k = app.kernel("srad_prep");
    k.parallel_loop("i", n).parallel_loop("j", n);
    const AffineExpr i = k.var("i");
    const AffineExpr j = k.var("j");
    // dN/dS/dW/dE, gradient magnitude, laplacian, q, and the coefficient
    // 1/(1 + (q - q0)/(q0 (1 + q0))): ~28 flops plus 2 divisions.
    k.statement(/*flops=*/28.0, /*special_ops=*/2.0)
        .load(image, {i, j})
        .load(image, {i.shifted(-1), j})
        .load(image, {i.shifted(1), j})
        .load(image, {i, j.shifted(-1)})
        .load(image, {i, j.shifted(1)})
        .store(d_n, {i, j})
        .store(d_s, {i, j})
        .store(d_w, {i, j})
        .store(d_e, {i, j})
        .store(coef, {i, j});
  }

  // Kernel 2: divergence of the diffusion flux, image update.
  {
    skeleton::KernelBuilder& k = app.kernel("srad_update");
    k.parallel_loop("i", n).parallel_loop("j", n);
    const AffineExpr i = k.var("i");
    const AffineExpr j = k.var("j");
    // D = cC*dN + cS*dS + cC*dW + cE*dE; J += lambda/4 * D: ~14 flops.
    k.statement(/*flops=*/14.0, /*special_ops=*/0.0)
        .load(coef, {i, j})
        .load(coef, {i.shifted(1), j})
        .load(coef, {i, j.shifted(1)})
        .load(d_n, {i, j})
        .load(d_s, {i, j})
        .load(d_w, {i, j})
        .load(d_e, {i, j})
        .load(image, {i, j})
        .store(image, {i, j});
  }
  return app.build();
}

namespace {

class SradWorkload final : public Workload {
 public:
  std::string name() const override { return "SRAD"; }

  std::vector<DataSize> paper_data_sizes() const override {
    return {{"1024 x 1024", 1024},
            {"2048 x 2048", 2048},
            {"4096 x 4096", 4096}};
  }

  skeleton::AppSkeleton make_skeleton(const DataSize& size,
                                      int iterations) const override {
    return srad_skeleton(size.param, iterations);
  }
};

}  // namespace

std::unique_ptr<Workload> make_srad() {
  return std::make_unique<SradWorkload>();
}

}  // namespace grophecy::workloads
