#include "workloads/cfd_ref.h"

#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace grophecy::workloads {

namespace {
constexpr float kGamma = 1.4f;
constexpr float kCfl = 0.3f;
}  // namespace

CfdReference::CfdReference(std::int64_t n, std::uint64_t seed) : n_(n) {
  GROPHECY_EXPECTS(n >= 8);
  const std::size_t count = static_cast<std::size_t>(n);
  variables_.resize(kCfdVars * count);
  old_variables_.resize(kCfdVars * count);
  fluxes_.resize(kCfdVars * count);
  step_factors_.resize(count);
  areas_.resize(count);
  esel_.resize(kCfdNeighbors * count);
  normals_.resize(6 * count);

  util::Rng rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    // Freestream-ish initial state with mild perturbations.
    variables_[0 * n + i] = 1.0f + 0.1f * static_cast<float>(rng.normal());
    variables_[1 * n + i] = 0.3f + 0.05f * static_cast<float>(rng.normal());
    variables_[2 * n + i] = 0.02f * static_cast<float>(rng.normal());
    variables_[3 * n + i] = 0.02f * static_cast<float>(rng.normal());
    variables_[4 * n + i] = 2.5f + 0.1f * static_cast<float>(rng.normal());
    areas_[i] = static_cast<float>(rng.uniform(0.8, 1.2));
    // Symmetric ring topology (i +/- 1, i +/- 2): unstructured in layout,
    // conservative under pairwise exchange.
    esel_[0 * n + i] = static_cast<std::int32_t>((i + 1) % n);
    esel_[1 * n + i] = static_cast<std::int32_t>((i - 1 + n) % n);
    esel_[2 * n + i] = static_cast<std::int32_t>((i + 2) % n);
    esel_[3 * n + i] = static_cast<std::int32_t>((i - 2 + n) % n);
    for (int f = 0; f < 6; ++f)
      normals_[f * n + i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
}

std::span<const float> CfdReference::variable(int v) const {
  GROPHECY_EXPECTS(v >= 0 && v < kCfdVars);
  return {variables_.data() + static_cast<std::size_t>(v) * n_,
          static_cast<std::size_t>(n_)};
}

std::span<const std::int32_t> CfdReference::neighbors_of(
    std::int64_t i) const {
  GROPHECY_EXPECTS(i >= 0 && i < n_);
  static thread_local std::int32_t scratch[kCfdNeighbors];
  for (int nb = 0; nb < kCfdNeighbors; ++nb)
    scratch[nb] = esel_[static_cast<std::size_t>(nb) * n_ + i];
  return {scratch, kCfdNeighbors};
}

double CfdReference::total_density() const {
  double sum = 0.0;
  for (std::int64_t i = 0; i < n_; ++i) sum += variables_[i];
  return sum;
}

void CfdReference::step() {
  const std::int64_t n = n_;

  // Kernel 1: save state, compute CFL step factor.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    for (int v = 0; v < kCfdVars; ++v)
      old_variables_[static_cast<std::size_t>(v) * n + i] =
          variables_[static_cast<std::size_t>(v) * n + i];
    const float density = variables_[i];
    const float mx = variables_[1 * n + i];
    const float my = variables_[2 * n + i];
    const float mz = variables_[3 * n + i];
    const float energy = variables_[4 * n + i];
    const float speed2 = (mx * mx + my * my + mz * mz) / (density * density);
    const float pressure =
        (kGamma - 1.0f) * (energy - 0.5f * density * speed2);
    const float sound =
        std::sqrt(std::max(kGamma * pressure / density, 1e-6f));
    step_factors_[i] =
        kCfl / ((std::sqrt(speed2) + sound) * std::sqrt(areas_[i]));
  }

  // Kernel 2: flux accumulation over gathered neighbors.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    float flux[kCfdVars] = {0, 0, 0, 0, 0};
    for (int nb = 0; nb < kCfdNeighbors; ++nb) {
      const std::int32_t nbr = esel_[static_cast<std::size_t>(nb) * n + i];
      // Pairwise exchange weight: symmetric across the shared face, so the
      // scheme conserves the state sums exactly before time scaling.
      const float weight = nb < 2 ? 0.35f : 0.15f;
      for (int v = 0; v < kCfdVars; ++v) {
        const float mine = old_variables_[static_cast<std::size_t>(v) * n + i];
        const float theirs =
            old_variables_[static_cast<std::size_t>(v) * n + nbr];
        flux[v] += weight * (theirs - mine);
      }
    }
    for (int v = 0; v < kCfdVars; ++v)
      fluxes_[static_cast<std::size_t>(v) * n + i] = flux[v];
  }

  // Kernel 3: time integration.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const float factor = step_factors_[i];
    for (int v = 0; v < kCfdVars; ++v) {
      const std::size_t idx = static_cast<std::size_t>(v) * n + i;
      variables_[idx] = old_variables_[idx] + factor * fluxes_[idx];
    }
  }
}

void CfdReference::run(int count) {
  GROPHECY_EXPECTS(count >= 0);
  for (int i = 0; i < count; ++i) step();
}

}  // namespace grophecy::workloads
