// The paper's published numbers (Tables I and II), for side-by-side
// comparison in the reproduction benches and the experiment report.
// These values are copied verbatim from the paper and are never used by
// the models — only for printing "paper vs. measured" columns.
#pragma once

#include <span>

namespace grophecy::workloads {

/// Table I: measured kernel/transfer times and transfer sizes.
struct PaperTable1Row {
  const char* app;
  const char* data_size;
  double kernel_ms;     ///< < 0.1 entries stored as 0.05.
  double transfer_ms;
  int percent_transfer;
  double input_mb;
  double output_mb;
};

std::span<const PaperTable1Row> paper_table1();

/// Table II: error magnitude of the predicted GPU speedup.
struct PaperTable2Row {
  const char* app;
  const char* data_set;
  double kernel_only_pct;
  double transfer_only_pct;
  double both_pct;
};

std::span<const PaperTable2Row> paper_table2();

/// Table II bottom rows: the two overall averages.
struct PaperTable2Averages {
  double by_data_set_kernel_only = 270.0;
  double by_data_set_transfer_only = 71.0;
  double by_data_set_both = 11.0;
  double by_application_kernel_only = 255.0;
  double by_application_transfer_only = 68.0;
  double by_application_both = 9.0;
};

PaperTable2Averages paper_table2_averages();

}  // namespace grophecy::workloads
