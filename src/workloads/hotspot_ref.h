// Runnable OpenMP reference implementation of HotSpot.
//
// The Rodinia HotSpot thermal solver: explicit finite-difference update of
// a chip temperature grid under a power map. This is the C++ baseline the
// paper parallelizes with OpenMP (§IV-B); the framework's tests use it to
// validate the skeleton's shape (same arrays, same stencil) and its
// numerics (heat moves toward power sources, boundary behaviour).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace grophecy::workloads {

/// Physical/solver constants of the HotSpot model.
struct HotspotParams {
  float max_pd = 3.0e6f;       ///< Max power density (W/m^2).
  float precision = 0.001f;
  float spec_heat_si = 1.75e6f;
  float k_si = 100.0f;
  float t_chip = 0.0005f;      ///< Chip thickness (m).
  float chip_height = 0.016f;
  float chip_width = 0.016f;
  float amb_temp = 80.0f;      ///< Ambient temperature.
};

/// An n x n HotSpot instance with synthetic initial state.
class HotspotReference {
 public:
  /// Initializes temperature near ambient and a deterministic pseudo-random
  /// power map (seeded), mirroring the Rodinia input files.
  HotspotReference(std::int64_t n, std::uint64_t seed,
                   HotspotParams params = {});

  /// Advances one timestep with OpenMP over rows.
  void step();

  /// Advances `count` timesteps.
  void run(int count);

  std::int64_t size() const { return n_; }
  std::span<const float> temperature() const { return temp_in_; }
  std::span<const float> power() const { return power_; }

 private:
  std::int64_t n_;
  HotspotParams params_;
  std::vector<float> temp_in_;
  std::vector<float> temp_out_;
  std::vector<float> power_;
  float rx_1_, ry_1_, rz_1_, cap_1_;  ///< Precomputed update coefficients.
};

}  // namespace grophecy::workloads
