#include "workloads/stassuij_ref.h"

#include <algorithm>
#include <set>

#include "util/contracts.h"
#include "util/rng.h"

namespace grophecy::workloads {

CsrMatrix make_synthetic_csr(std::int64_t rows, std::int64_t nnz_per_row,
                             std::uint64_t seed) {
  GROPHECY_EXPECTS(rows >= 1);
  GROPHECY_EXPECTS(nnz_per_row >= 1 && nnz_per_row <= rows);
  util::Rng rng(seed);

  CsrMatrix m;
  m.rows = rows;
  m.cols = rows;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  for (std::int64_t i = 0; i < rows; ++i) {
    std::set<std::int32_t> cols;
    cols.insert(static_cast<std::int32_t>(i));  // keep the diagonal
    while (static_cast<std::int64_t>(cols.size()) < nnz_per_row)
      cols.insert(static_cast<std::int32_t>(rng.uniform_int(0, rows - 1)));
    for (std::int32_t col : cols) {
      m.col_idx.push_back(col);
      m.values.push_back(rng.normal(0.0, 1.0));
    }
    m.row_ptr.push_back(static_cast<std::int32_t>(m.col_idx.size()));
  }
  return m;
}

StassuijReference::StassuijReference(const StassuijConfig& config,
                                     std::uint64_t seed)
    : config_(config),
      a_(make_synthetic_csr(config.rows, config.nnz_per_row, seed)) {
  const std::size_t dense =
      static_cast<std::size_t>(config.rows) * config.dense_cols;
  b_.resize(dense);
  c_initial_.resize(dense);
  util::Rng rng(seed ^ 0x5ca1ab1eULL);
  for (std::size_t idx = 0; idx < dense; ++idx) {
    b_[idx] = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    c_initial_[idx] = {rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)};
  }
  c_ = c_initial_;
}

void StassuijReference::multiply() {
  const std::int64_t rows = config_.rows;
  const std::int64_t cols = config_.dense_cols;

#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t begin = a_.row_ptr[i];
    const std::int32_t end = a_.row_ptr[i + 1];
    std::complex<double>* c_row = c_.data() + i * cols;
    for (std::int32_t k = begin; k < end; ++k) {
      const double a_ik = a_.values[k];
      const std::complex<double>* b_row =
          b_.data() + static_cast<std::int64_t>(a_.col_idx[k]) * cols;
      for (std::int64_t j = 0; j < cols; ++j) c_row[j] += a_ik * b_row[j];
    }
  }
}

void StassuijReference::reset() { c_ = c_initial_; }

}  // namespace grophecy::workloads
