#include "workloads/workload.h"

#include "util/error.h"

namespace grophecy::workloads {

std::vector<std::unique_ptr<Workload>> paper_workloads() {
  std::vector<std::unique_ptr<Workload>> all;
  all.push_back(make_cfd());
  all.push_back(make_hotspot());
  all.push_back(make_srad());
  all.push_back(make_stassuij());
  return all;
}

const Workload& find_workload(
    const std::vector<std::unique_ptr<Workload>>& all,
    const std::string& name) {
  for (const auto& workload : all)
    if (workload->name() == name) return *workload;
  std::string valid;
  for (const auto& workload : all) {
    if (!valid.empty()) valid += ", ";
    valid += workload->name();
  }
  throw UsageError("unknown workload '" + name + "' (valid: " + valid + ")");
}

DataSize find_data_size(const Workload& workload, const std::string& label) {
  const std::vector<DataSize> sizes = workload.paper_data_sizes();
  for (const DataSize& size : sizes)
    if (size.label == label) return size;
  std::string valid;
  for (const DataSize& size : sizes) {
    if (!valid.empty()) valid += ", ";
    valid += size.label;
  }
  throw UsageError("unknown data size '" + label + "' for " +
                   workload.name() + " (valid: " + valid + ")");
}

}  // namespace grophecy::workloads
