#include "workloads/workload.h"

namespace grophecy::workloads {

std::vector<std::unique_ptr<Workload>> paper_workloads() {
  std::vector<std::unique_ptr<Workload>> all;
  all.push_back(make_cfd());
  all.push_back(make_hotspot());
  all.push_back(make_srad());
  all.push_back(make_stassuij());
  return all;
}

}  // namespace grophecy::workloads
