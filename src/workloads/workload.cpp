#include "workloads/workload.h"

#include "util/error.h"

namespace grophecy::workloads {

std::vector<std::unique_ptr<Workload>> paper_workloads() {
  std::vector<std::unique_ptr<Workload>> all;
  all.push_back(make_cfd());
  all.push_back(make_hotspot());
  all.push_back(make_srad());
  all.push_back(make_stassuij());
  return all;
}

PaperSuite::PaperSuite() : all_(paper_workloads()) {
  for (const auto& workload : all_) {
    by_name_.emplace(workload->name(), workload.get());
    if (!valid_names_.empty()) valid_names_ += ", ";
    valid_names_ += workload->name();

    SizeIndex& index = sizes_[workload.get()];
    for (const DataSize& size : workload->paper_data_sizes()) {
      index.by_label.emplace(size.label, size);
      if (!index.valid.empty()) index.valid += ", ";
      index.valid += size.label;
    }
  }
}

const PaperSuite& PaperSuite::instance() {
  static const PaperSuite suite;
  return suite;
}

const Workload& PaperSuite::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return *it->second;
  throw UsageError("unknown workload '" + name + "' (valid: " + valid_names_ +
                   ")");
}

const DataSize* PaperSuite::try_find_size(const Workload& workload,
                                          const std::string& label,
                                          std::string* valid_labels) const {
  const auto index = sizes_.find(&workload);
  if (index == sizes_.end()) return nullptr;
  if (valid_labels) *valid_labels = index->second.valid;
  const auto it = index->second.by_label.find(label);
  return it != index->second.by_label.end() ? &it->second : nullptr;
}

const Workload& find_workload(
    const std::vector<std::unique_ptr<Workload>>& all,
    const std::string& name) {
  const PaperSuite& suite = PaperSuite::instance();
  if (&all == &suite.all()) return suite.find(name);
  for (const auto& workload : all)
    if (workload->name() == name) return *workload;
  std::string valid;
  for (const auto& workload : all) {
    if (!valid.empty()) valid += ", ";
    valid += workload->name();
  }
  throw UsageError("unknown workload '" + name + "' (valid: " + valid + ")");
}

DataSize find_data_size(const Workload& workload, const std::string& label) {
  std::string valid;
  if (const DataSize* size =
          PaperSuite::instance().try_find_size(workload, label, &valid))
    return *size;
  if (!valid.empty())
    throw UsageError("unknown data size '" + label + "' for " +
                     workload.name() + " (valid: " + valid + ")");
  const std::vector<DataSize> sizes = workload.paper_data_sizes();
  for (const DataSize& size : sizes)
    if (size.label == label) return size;
  for (const DataSize& size : sizes) {
    if (!valid.empty()) valid += ", ";
    valid += size.label;
  }
  throw UsageError("unknown data size '" + label + "' for " +
                   workload.name() + " (valid: " + valid + ")");
}

}  // namespace grophecy::workloads
