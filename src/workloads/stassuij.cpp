#include "workloads/stassuij.h"

#include "skeleton/builder.h"
#include "util/contracts.h"

namespace grophecy::workloads {

skeleton::AppSkeleton stassuij_skeleton(const StassuijConfig& config,
                                        int iterations) {
  GROPHECY_EXPECTS(config.rows >= 1);
  GROPHECY_EXPECTS(config.dense_cols >= 1);
  GROPHECY_EXPECTS(config.nnz_per_row >= 1 &&
                   config.nnz_per_row <= config.rows);
  using skeleton::AffineExpr;
  using skeleton::ElemType;
  const AffineExpr zero = AffineExpr::make_constant(0);

  const std::int64_t m = config.rows;
  const std::int64_t j_cols = config.dense_cols;
  const std::int64_t nnz = config.rows * config.nnz_per_row;

  skeleton::AppBuilder app("stassuij");
  const auto a_val = app.array("a_val", ElemType::kF64, {nnz}, true);
  const auto a_col = app.array("a_col", ElemType::kI32, {nnz}, true);
  const auto a_rowptr =
      app.array("a_rowptr", ElemType::kI32, {m + 1}, true);
  const auto b = app.array("B", ElemType::kComplexF64, {m, j_cols});
  const auto c = app.array("C", ElemType::kComplexF64, {m, j_cols});
  app.iterations(iterations);

  skeleton::KernelBuilder& k = app.kernel("spmm");
  k.parallel_loop("i", m).parallel_loop("j", j_cols)
      .loop("k", config.nnz_per_row);
  const AffineExpr i = k.var("i");
  const AffineExpr j = k.var("j");

  // Row bounds: rowptr[i] and rowptr[i+1], read once per (i, j) pair.
  k.statement(/*flops=*/1.0)
      .at_depth(2)
      .load(a_rowptr, {i})
      .load(a_rowptr, {i.shifted(1)});
  // Inner product over the row's nonzeros: real * complex multiply-add is
  // 4 flops. a_val/a_col are indexed by the hidden CSR position (a
  // function of i and k, uniform across the warp's j lanes); the B row is
  // selected by a_col yet contiguous in j, hence coalesced.
  skeleton::KernelBuilder& body = k.statement(/*flops=*/4.0);
  body.load_gather(a_val, {zero}, /*indirect_dims=*/{0},
                   /*dep_loops=*/{"i", "k"})
      .load_gather(a_col, {zero}, /*indirect_dims=*/{0},
                   /*dep_loops=*/{"i", "k"})
      .load_gather(b, {zero, j}, /*indirect_dims=*/{0},
                   /*dep_loops=*/{"i", "k"});
  // Accumulator update, once per (i, j): C is both consumed (initialized
  // by the host) and produced.
  k.statement(/*flops=*/2.0)
      .at_depth(2)
      .load(c, {i, j})
      .store(c, {i, j});

  return app.build();
}

namespace {

class StassuijWorkload final : public Workload {
 public:
  std::string name() const override { return "Stassuij"; }

  std::vector<DataSize> paper_data_sizes() const override {
    return {{"132 x 2048", 132}};
  }

  skeleton::AppSkeleton make_skeleton(const DataSize& size,
                                      int iterations) const override {
    StassuijConfig config;
    config.rows = size.param;
    return stassuij_skeleton(config, iterations);
  }
};

}  // namespace

std::unique_ptr<Workload> make_stassuij() {
  return std::make_unique<StassuijWorkload>();
}

}  // namespace grophecy::workloads
