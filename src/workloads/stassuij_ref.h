// Runnable OpenMP reference implementation of Stassuij.
//
// C += A * B where A is a rows x rows CSR sparse matrix of real doubles and
// B, C are rows x dense_cols matrices of complex doubles — the core
// operation of Green's Function Monte Carlo as the paper describes it
// (§IV-B). The sparse structure is synthesized deterministically from a
// seed; tests validate the result against a naive dense multiply.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "workloads/stassuij.h"

namespace grophecy::workloads {

/// CSR sparse matrix of real doubles.
struct CsrMatrix {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<double> values;
  std::vector<std::int32_t> col_idx;
  std::vector<std::int32_t> row_ptr;  ///< rows + 1 entries.

  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values.size());
  }
};

/// Deterministically synthesizes a CSR matrix with ~nnz_per_row nonzeros
/// per row (distinct, sorted columns).
CsrMatrix make_synthetic_csr(std::int64_t rows, std::int64_t nnz_per_row,
                             std::uint64_t seed);

/// A Stassuij instance: sparse A, dense complex B, accumulator C.
class StassuijReference {
 public:
  StassuijReference(const StassuijConfig& config, std::uint64_t seed);

  /// C += A * B with OpenMP over (row, column-block).
  void multiply();

  const CsrMatrix& a() const { return a_; }
  std::span<const std::complex<double>> b() const { return b_; }
  std::span<const std::complex<double>> c() const { return c_; }

  /// Resets C to its initial (host-provided) contents.
  void reset();

 private:
  StassuijConfig config_;
  CsrMatrix a_;
  std::vector<std::complex<double>> b_;
  std::vector<std::complex<double>> c_;
  std::vector<std::complex<double>> c_initial_;
};

}  // namespace grophecy::workloads
