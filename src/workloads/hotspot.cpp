#include "workloads/hotspot.h"

#include "skeleton/builder.h"
#include "util/contracts.h"

namespace grophecy::workloads {

skeleton::AppSkeleton hotspot_skeleton(std::int64_t n, int iterations) {
  GROPHECY_EXPECTS(n >= 4);
  using skeleton::AffineExpr;
  using skeleton::ElemType;

  skeleton::AppBuilder app("hotspot");
  const auto temp_in = app.array("temp_in", ElemType::kF32, {n, n});
  const auto power = app.array("power", ElemType::kF32, {n, n});
  const auto temp_out = app.array("temp_out", ElemType::kF32, {n, n});
  app.iterations(iterations);

  skeleton::KernelBuilder& k = app.kernel("hotspot_step");
  k.parallel_loop("i", n).parallel_loop("j", n);
  const AffineExpr i = k.var("i");
  const AffineExpr j = k.var("j");
  // out = in + dt/Cap * (power + (S+N-2c)/Ry + (E+W-2c)/Rx + (amb-c)/Rz):
  // ~12 adds/muls plus the three divisions the Rodinia kernel performs per
  // element (it divides by Rx/Ry/Rz instead of premultiplying reciprocals).
  k.statement(/*flops=*/12.0, /*special_ops=*/3.0)
      .load(temp_in, {i, j})
      .load(temp_in, {i.shifted(-1), j})
      .load(temp_in, {i.shifted(1), j})
      .load(temp_in, {i, j.shifted(-1)})
      .load(temp_in, {i, j.shifted(1)})
      .load(power, {i, j})
      .store(temp_out, {i, j});
  return app.build();
}

namespace {

class HotspotWorkload final : public Workload {
 public:
  std::string name() const override { return "HotSpot"; }

  std::vector<DataSize> paper_data_sizes() const override {
    return {{"64 x 64", 64}, {"512 x 512", 512}, {"1024 x 1024", 1024}};
  }

  skeleton::AppSkeleton make_skeleton(const DataSize& size,
                                      int iterations) const override {
    return hotspot_skeleton(size.param, iterations);
  }
};

}  // namespace

std::unique_ptr<Workload> make_hotspot() {
  return std::make_unique<HotspotWorkload>();
}

}  // namespace grophecy::workloads
