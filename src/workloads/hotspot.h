// HotSpot skeleton (paper §IV-B).
//
// "An ordinary differential equation solver over a structured grid which is
// used to estimate micro-architecture temperature. Every element is
// computed by gathering a 3x3 neighborhood of elements (i.e., the stencil)
// from the input array. Multiple invocations of the same kernel across
// several iterations can be fused together."
//
// Arrays: temp_in and power are inputs, temp_out is the output; per Table I
// a 1024x1024 grid transfers 8 MB in and 4 MB out.
#pragma once

#include "workloads/workload.h"

namespace grophecy::workloads {

/// Builds the HotSpot skeleton directly (grid side n).
skeleton::AppSkeleton hotspot_skeleton(std::int64_t n, int iterations);

}  // namespace grophecy::workloads
