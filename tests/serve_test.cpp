// The daemon soak/chaos suite: under a burst of queued queries with
// injected faults, the projection daemon must never crash or deadlock,
// must answer *every* request with exactly one typed reply, must shed at
// the configured bound, must expire deadlines without leaking workers,
// must hand coalesced duplicates byte-identical replies, and must drain
// its queue on clean shutdown.
//
// Most tests drive the daemon through a stub job function so the
// scheduling semantics are tested in microseconds; two smoke tests run
// the real projection pipeline and the real socket transport end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "faults/fault_injector.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/socket_server.h"
#include "util/error.h"
#include "util/jsonl.h"

namespace grophecy::serve {
namespace {

using core::ProjectionReport;
using exec::JobSpec;

ProjectionReport stub_report(const JobSpec& spec, bool degraded = false) {
  ProjectionReport report;
  report.app_name = spec.workload;
  report.machine_name = "stub";
  report.iterations = spec.iterations;
  report.predicted_kernel_s = 1e-3;
  report.measured_kernel_s = 1.1e-3;
  report.predicted_transfer_s = 2e-3;
  report.measured_transfer_s = 2.1e-3;
  report.measured_cpu_s = 0.5;
  report.calibration.used_fallback = degraded;
  return report;
}

std::string project_line(const std::string& id, const std::string& workload,
                         const std::string& size, double deadline_ms = 0.0,
                         int iterations = 1) {
  util::FlatJson request;
  request.emplace_back("id", id);
  request.emplace_back("type", std::string("project"));
  request.emplace_back("workload", workload);
  request.emplace_back("size", size);
  request.emplace_back("iterations", static_cast<double>(iterations));
  if (deadline_ms > 0.0) request.emplace_back("deadline_ms", deadline_ms);
  return util::write_flat_json(request);
}

std::string field(const std::string& reply, std::string_view key) {
  const auto object = util::parse_flat_json(reply);
  if (!object) return "<unparseable>";
  if (const auto text = util::json_string(*object, key)) return *text;
  if (const auto number = util::json_number(*object, key))
    return std::to_string(*number);
  if (const auto flag = util::json_bool(*object, key))
    return *flag ? "true" : "false";
  return "<missing>";
}

/// A gate the stub job function blocks on, so tests control exactly when
/// the single worker is busy and when it finishes.
class Gate {
 public:
  void open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Collects replies for requests submitted asynchronously.
class ReplyBin {
 public:
  Daemon::ReplyFn slot() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++expected_;
    }
    return [this](std::string reply) {
      std::lock_guard<std::mutex> lock(mutex_);
      replies_.push_back(std::move(reply));
      cv_.notify_all();
    };
  }

  std::vector<std::string> wait_all() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return replies_.size() == expected_; });
    return replies_;
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mutex_);
    return replies_.size();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> replies_;
  std::size_t expected_ = 0;
};

// --- protocol ---

TEST(ServeProtocol, ParsesAFullProjectRequest) {
  const auto parsed = parse_request(
      R"({"id":"7","type":"project","workload":"CFD","size":"97K",)"
      R"("iterations":8,"deadline_ms":250})");
  const Request* request = std::get_if<Request>(&parsed);
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->type, RequestType::kProject);
  EXPECT_EQ(request->id, "7");
  EXPECT_EQ(request->workload, "CFD");
  EXPECT_EQ(request->size_label, "97K");
  EXPECT_EQ(request->iterations, 8);
  EXPECT_DOUBLE_EQ(request->deadline_ms, 250.0);
}

TEST(ServeProtocol, MalformedLinesBecomeTypedWireErrors) {
  struct Case {
    const char* name;
    const char* line;
    ErrorKind kind;
  };
  const Case corpus[] = {
      {"not_json", "hello", ErrorKind::kParse},
      {"empty_object_missing_type", "{}", ErrorKind::kUsage},
      {"nested", R"({"type":{"a":1}})", ErrorKind::kParse},
      {"unknown_type", R"({"id":"1","type":"fly"})", ErrorKind::kUsage},
      {"missing_workload", R"({"type":"project","size":"97K"})",
       ErrorKind::kUsage},
      {"missing_size", R"({"type":"project","workload":"CFD"})",
       ErrorKind::kUsage},
      {"iterations_zero",
       R"({"type":"project","workload":"CFD","size":"97K","iterations":0})",
       ErrorKind::kUsage},
      {"iterations_fractional",
       R"({"type":"project","workload":"CFD","size":"97K","iterations":1.5})",
       ErrorKind::kUsage},
      {"iterations_string",
       R"({"type":"project","workload":"CFD","size":"97K","iterations":"8"})",
       ErrorKind::kUsage},
      {"deadline_negative",
       R"({"type":"project","workload":"CFD","size":"97K","deadline_ms":-1})",
       ErrorKind::kUsage},
      {"raw_control_byte", "{\"type\":\"ping\",\"id\":\"a\x01b\"}",
       ErrorKind::kParse},
      {"truncated", R"({"type":"ping")", ErrorKind::kParse},
  };
  for (const Case& c : corpus) {
    const auto parsed = parse_request(c.line);
    const WireError* error = std::get_if<WireError>(&parsed);
    ASSERT_NE(error, nullptr) << c.name;
    EXPECT_EQ(error->kind, c.kind) << c.name;
    EXPECT_FALSE(error->message.empty()) << c.name;
  }
}

TEST(ServeProtocol, SalvagesTheIdForErrorReplies) {
  const auto parsed = parse_request(R"({"id":"req-9","type":"warp"})");
  const WireError* error = std::get_if<WireError>(&parsed);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->id, "req-9");
  const std::string reply = error_reply(error->id, error->kind,
                                        error->message);
  EXPECT_EQ(field(reply, "id"), "req-9");
  EXPECT_EQ(field(reply, "status"), "error");
  EXPECT_EQ(field(reply, "error"), "usage");
}

TEST(ServeProtocol, MachineFieldIsOptionalAndTyped) {
  const auto parsed = parse_request(
      R"({"id":"m","type":"project","workload":"CFD","size":"97K",)"
      R"("machine":"hopper_h100"})");
  const Request* request = std::get_if<Request>(&parsed);
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->machine, "hopper_h100");

  // Absent means the daemon's configured machine — the legacy protocol.
  const auto legacy = parse_request(
      R"({"id":"l","type":"project","workload":"CFD","size":"97K"})");
  const Request* legacy_request = std::get_if<Request>(&legacy);
  ASSERT_NE(legacy_request, nullptr);
  EXPECT_TRUE(legacy_request->machine.empty());

  // Wrong type is a framing-level usage error, like every other field.
  const auto bad = parse_request(
      R"({"id":"m","type":"project","workload":"CFD","size":"97K",)"
      R"("machine":7})");
  const WireError* error = std::get_if<WireError>(&bad);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->kind, ErrorKind::kUsage);
  EXPECT_EQ(error->id, "m");
}

TEST(ServeProtocol, ProjectionReplyIsAPureFunctionOfItsInputs) {
  const JobSpec spec{"CFD", "97K", 4};
  const ProjectionReport report = stub_report(spec);
  EXPECT_EQ(projection_reply("a", report, 1), projection_reply("a", report, 1));
  EXPECT_NE(projection_reply("a", report, 1), projection_reply("b", report, 1));
}

TEST(ServeProtocol, OverloadedReplyCarriesTheRetryHint) {
  const std::string reply =
      error_reply("9", ErrorKind::kOverloaded, "queue full", 12.5);
  EXPECT_EQ(field(reply, "error"), "overloaded");
  EXPECT_DOUBLE_EQ(
      util::json_number(*util::parse_flat_json(reply), "retry_after_ms")
          .value_or(0.0),
      12.5);
}

// --- daemon scheduling semantics (stub job function) ---

DaemonOptions stub_options(exec::SweepEngine::JobFn fn) {
  DaemonOptions options;
  options.workers = 1;
  options.job_fn = std::move(fn);
  return options;
}

TEST(ServeDaemon, ServesProjectionsAndControlRequests) {
  Daemon daemon(stub_options([](const JobSpec& spec) {
    return stub_report(spec);
  }));
  daemon.start();

  const std::string reply = daemon.handle(project_line("1", "CFD", "97K"));
  EXPECT_EQ(field(reply, "status"), "ok");
  EXPECT_EQ(field(reply, "id"), "1");
  EXPECT_EQ(field(reply, "workload"), "CFD");
  EXPECT_EQ(field(reply, "degraded"), "false");

  EXPECT_EQ(field(daemon.handle(R"({"id":"p","type":"ping"})"), "type"),
            "pong");
  const std::string stats = daemon.handle(R"({"id":"s","type":"stats"})");
  EXPECT_EQ(field(stats, "status"), "ok");
  const auto object = util::parse_flat_json(stats);
  ASSERT_TRUE(object.has_value());
  EXPECT_DOUBLE_EQ(util::json_number(*object, "ok").value_or(-1), 1.0);
  EXPECT_DOUBLE_EQ(util::json_number(*object, "executed").value_or(-1), 1.0);

  daemon.shutdown();
  const DaemonStats after = daemon.stats();
  EXPECT_EQ(after.received, 3u);
  EXPECT_EQ(after.replies, 3u);
}

TEST(ServeDaemon, ShedsAtTheConfiguredBoundWithARetryHint) {
  Gate gate;
  auto options = stub_options([&gate](const JobSpec& spec) {
    gate.wait();
    return stub_report(spec);
  });
  options.max_queue_depth = 4;
  Daemon daemon(std::move(options));
  daemon.start();

  ReplyBin bin;
  // One request occupies the worker; unique specs then fill the queue.
  daemon.handle_line(project_line("busy", "CFD", "97K"), bin.slot());
  // Wait until the worker has claimed "busy" (popped off the queue but
  // still in flight) so the next 4 land in the queue, not the worker.
  while (daemon.stats().queue_depth != 0 || daemon.stats().inflight != 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (int i = 0; i < 4; ++i)
    daemon.handle_line(
        project_line("q" + std::to_string(i), "CFD", "97K", 0.0, i + 2),
        bin.slot());

  // Wait until the worker holds "busy" and exactly 4 jobs are queued.
  while (daemon.stats().queue_depth < 4)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // The 5th distinct spec must be shed, typed and hinted.
  const std::string shed = daemon.handle(
      project_line("over", "CFD", "97K", 0.0, 99));
  EXPECT_EQ(field(shed, "status"), "error");
  EXPECT_EQ(field(shed, "error"), "overloaded");
  EXPECT_TRUE(util::json_number(*util::parse_flat_json(shed),
                                "retry_after_ms")
                  .has_value());

  // A control request is still served while the queue is full.
  EXPECT_EQ(field(daemon.handle(R"({"id":"p","type":"ping"})"), "type"),
            "pong");

  gate.open();
  const std::vector<std::string> replies = bin.wait_all();
  EXPECT_EQ(replies.size(), 5u);
  for (const std::string& reply : replies)
    EXPECT_EQ(field(reply, "status"), "ok") << reply;

  daemon.shutdown();
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.ok, 5u);
  EXPECT_EQ(stats.received, stats.replies);
}

TEST(ServeDaemon, ExpiredDeadlineGetsTimeoutWithoutWedgingTheWorker) {
  std::atomic<int> executions{0};
  auto options = stub_options([&executions](const JobSpec& spec) {
    ++executions;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return stub_report(spec);
  });
  Daemon daemon(std::move(options));
  daemon.start();

  const auto start = std::chrono::steady_clock::now();
  const std::string reply =
      daemon.handle(project_line("slow", "CFD", "97K", 30.0));
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(field(reply, "status"), "error");
  EXPECT_EQ(field(reply, "error"), "timeout");
  // The reply came from the watchdog, not from waiting out the job.
  EXPECT_LT(elapsed_s, 0.25);

  // The worker is free despite the abandoned attempt: a follow-up with a
  // generous deadline is served normally.
  const std::string ok =
      daemon.handle(project_line("fast", "SRAD", "2048", 5000.0));
  EXPECT_EQ(field(ok, "status"), "ok");

  daemon.shutdown();  // joins the abandoned attempts; must not hang
  EXPECT_GE(daemon.stats().abandoned, 1u);
  EXPECT_EQ(daemon.stats().timeouts, 1u);
  EXPECT_EQ(daemon.stats().ok, 1u);
  EXPECT_EQ(executions.load(), 2);
}

TEST(ServeDaemon, RequestsExpiringInTheQueueAreNotExecuted) {
  Gate gate;
  auto options = stub_options([&gate](const JobSpec& spec) {
    gate.wait();
    return stub_report(spec);
  });
  Daemon daemon(std::move(options));
  daemon.start();

  ReplyBin bin;
  daemon.handle_line(project_line("busy", "CFD", "97K"), bin.slot());
  // Queued behind the blocked worker with a deadline that will expire
  // before the worker frees up.
  daemon.handle_line(project_line("doomed", "SRAD", "2048", 10.0),
                     bin.slot());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.open();

  const std::vector<std::string> replies = bin.wait_all();
  ASSERT_EQ(replies.size(), 2u);
  std::map<std::string, std::string> by_id;
  for (const std::string& reply : replies)
    by_id[field(reply, "id")] = field(reply, "status") == "ok"
                                    ? "ok"
                                    : field(reply, "error");
  EXPECT_EQ(by_id["busy"], "ok");
  EXPECT_EQ(by_id["doomed"], "timeout");

  daemon.shutdown();
  EXPECT_EQ(daemon.stats().expired_unrun, 1u);
  EXPECT_EQ(daemon.stats().executed, 1u);  // "doomed" never ran
}

TEST(ServeDaemon, CoalescedDuplicatesGetByteIdenticalReplies) {
  Gate gate;
  std::atomic<int> executions{0};
  auto options = stub_options([&](const JobSpec& spec) {
    gate.wait();
    ++executions;
    return stub_report(spec);
  });
  Daemon daemon(std::move(options));
  daemon.start();

  ReplyBin bin;
  daemon.handle_line(project_line("busy", "CFD", "97K"), bin.slot());
  // Three identical requests (same id, same spec) while the worker is
  // blocked: the first queues, the rest coalesce onto it.
  for (int i = 0; i < 3; ++i)
    daemon.handle_line(project_line("dup", "SRAD", "2048"), bin.slot());
  while (daemon.stats().coalesce_hits < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  gate.open();

  const std::vector<std::string> replies = bin.wait_all();
  ASSERT_EQ(replies.size(), 4u);
  std::vector<std::string> dup_replies;
  for (const std::string& reply : replies)
    if (field(reply, "id") == "dup") dup_replies.push_back(reply);
  ASSERT_EQ(dup_replies.size(), 3u);
  EXPECT_EQ(dup_replies[0], dup_replies[1]);
  EXPECT_EQ(dup_replies[1], dup_replies[2]);

  daemon.shutdown();
  EXPECT_EQ(daemon.stats().coalesce_hits, 2u);
  EXPECT_EQ(executions.load(), 2);  // busy + one shared dup execution
}

TEST(ServeDaemon, CalibrationFallbackServesDegradedNotFailed) {
  Daemon daemon(stub_options([](const JobSpec& spec) {
    return stub_report(spec, /*degraded=*/true);
  }));
  daemon.start();
  const std::string reply = daemon.handle(project_line("1", "CFD", "97K"));
  EXPECT_EQ(field(reply, "status"), "ok");
  EXPECT_EQ(field(reply, "degraded"), "true");
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().ok, 1u);
  EXPECT_EQ(daemon.stats().degraded, 1u);
  EXPECT_EQ(daemon.stats().failed, 0u);
}

TEST(ServeDaemon, PermanentFailuresAreTypedAndTransientOnesRetried) {
  std::atomic<int> calls{0};
  auto options = stub_options([&calls](const JobSpec& spec) {
    ++calls;
    if (spec.workload == "CFD") throw CalibrationError("link down");
    // Transient: first attempt fails, the retry succeeds.
    if (calls.load() % 2 == 1) throw MeasurementError("blip");
    return stub_report(spec);
  });
  options.max_retries = 1;
  Daemon daemon(std::move(options));
  daemon.start();

  const std::string fatal = daemon.handle(project_line("f", "CFD", "97K"));
  EXPECT_EQ(field(fatal, "status"), "error");
  EXPECT_EQ(field(fatal, "error"), "calibration");

  calls = 0;
  const std::string retried =
      daemon.handle(project_line("r", "SRAD", "2048"));
  EXPECT_EQ(field(retried, "status"), "ok");
  EXPECT_EQ(field(retried, "attempts"), "2.000000");

  daemon.shutdown();
  EXPECT_EQ(daemon.stats().failed, 1u);
  EXPECT_EQ(daemon.stats().ok, 1u);
}

TEST(ServeDaemon, MalformedLinesNeverCrashAndAlwaysReplyTyped) {
  Daemon daemon(stub_options([](const JobSpec& spec) {
    return stub_report(spec);
  }));
  daemon.start();
  const char* corpus[] = {
      "",
      "garbage",
      "{",
      "{}",
      R"({"type":"project"})",
      R"({"type":"project","workload":"CFD","size":"97K","iterations":-1})",
      R"({"id":"x","type":"noop"})",
      "\x01\x02\x03",
      R"({"id":"y","type":"project","workload":123,"size":"97K"})",
      "[1,2,3]",
  };
  for (const char* line : corpus) {
    const std::string reply = daemon.handle(line);
    EXPECT_EQ(field(reply, "status"), "error") << line;
    const std::string kind = field(reply, "error");
    EXPECT_TRUE(kind == "parse" || kind == "usage") << line << " -> " << kind;
  }
  daemon.shutdown();
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.parse_errors + stats.usage_errors,
            std::size(corpus));
  EXPECT_EQ(stats.received, stats.replies);
}

TEST(ServeDaemon, UnknownWorkloadsAreRejectedBeforeTheQueue) {
  // Canonical pipeline options — but the request never reaches a worker,
  // so this is still instant.
  DaemonOptions options;
  options.workers = 1;
  Daemon daemon(std::move(options));
  daemon.start();
  const std::string reply =
      daemon.handle(project_line("u", "NoSuchWorkload", "97K"));
  EXPECT_EQ(field(reply, "status"), "error");
  EXPECT_EQ(field(reply, "error"), "usage");
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().executed, 0u);
  EXPECT_EQ(daemon.stats().usage_errors, 1u);
}

TEST(ServeDaemon, UnknownMachinesAreRejectedBeforeTheQueue) {
  DaemonOptions options;
  options.workers = 1;
  Daemon daemon(std::move(options));
  daemon.start();
  const std::string reply = daemon.handle(
      R"({"id":"m","type":"project","workload":"CFD","size":"97K",)"
      R"("machine":"no_such_machine"})");
  EXPECT_EQ(field(reply, "status"), "error");
  EXPECT_EQ(field(reply, "error"), "usage");
  // The UsageError message lists the registered fleet.
  EXPECT_NE(reply.find("anl_eureka"), std::string::npos) << reply;
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().executed, 0u);
  EXPECT_EQ(daemon.stats().usage_errors, 1u);
}

TEST(ServeDaemon, MachineFieldReachesTheJobFunction) {
  std::string seen;
  Daemon daemon(stub_options([&seen](const JobSpec& spec) {
    seen = spec.machine;
    return stub_report(spec);
  }));
  daemon.start();
  const std::string reply = daemon.handle(
      R"({"id":"m","type":"project","workload":"CFD","size":"97K",)"
      R"("machine":"volta_v100"})");
  EXPECT_EQ(field(reply, "status"), "ok");
  daemon.shutdown();
  EXPECT_EQ(seen, "volta_v100");
}

TEST(ServeDaemon, DrainingShutdownAnswersEveryQueuedRequest) {
  Gate gate;
  auto options = stub_options([&gate](const JobSpec& spec) {
    gate.wait();
    return stub_report(spec);
  });
  options.max_queue_depth = 64;
  Daemon daemon(std::move(options));
  daemon.start();

  ReplyBin bin;
  for (int i = 0; i < 16; ++i)
    daemon.handle_line(
        project_line("d" + std::to_string(i), "CFD", "97K", 0.0, i + 1),
        bin.slot());
  gate.open();
  daemon.shutdown(/*drain=*/true);

  const std::vector<std::string> replies = bin.wait_all();
  EXPECT_EQ(replies.size(), 16u);
  for (const std::string& reply : replies)
    EXPECT_EQ(field(reply, "status"), "ok") << reply;
  EXPECT_EQ(daemon.stats().ok, 16u);
}

TEST(ServeDaemon, AbortingShutdownStillAnswersEveryQueuedRequest) {
  Gate gate;
  auto options = stub_options([&gate](const JobSpec& spec) {
    gate.wait();
    return stub_report(spec);
  });
  options.max_queue_depth = 64;
  Daemon daemon(std::move(options));
  daemon.start();

  ReplyBin bin;
  for (int i = 0; i < 8; ++i)
    daemon.handle_line(
        project_line("a" + std::to_string(i), "CFD", "97K", 0.0, i + 1),
        bin.slot());
  while (daemon.stats().queue_depth < 7)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Abort while the worker is still gated: the 7 queued jobs must be
  // answered "overloaded" *before* shutdown waits on the worker.
  std::thread stopper([&daemon] { daemon.shutdown(/*drain=*/false); });
  while (bin.count() < 7)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  gate.open();  // lets the one running job (and shutdown) finish
  stopper.join();

  const std::vector<std::string> replies = bin.wait_all();
  EXPECT_EQ(replies.size(), 8u);
  std::size_t ok = 0, overloaded = 0;
  for (const std::string& reply : replies) {
    if (field(reply, "status") == "ok")
      ++ok;
    else if (field(reply, "error") == "overloaded")
      ++overloaded;
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(overloaded, 7u);
  EXPECT_EQ(daemon.stats().received, daemon.stats().replies);
}

// --- chaos soak ---

TEST(ServeSoak, BurstWithInjectedFaultsAnswersEveryRequestExactlyOnce) {
  // Deterministic per-spec fault mix derived from the fingerprint:
  // ~1/8 of specs fail transiently once, ~1/16 hang past any deadline,
  // the rest answer quickly. Some requests carry tight deadlines.
  auto chaotic = [](const JobSpec& spec) {
    const std::string fp = spec.fingerprint();
    const unsigned char h = static_cast<unsigned char>(fp.back());
    if (h % 16 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    else if (h % 8 == 1)
      throw MeasurementError("chaos blip");
    else
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    return stub_report(spec);
  };
  DaemonOptions options;
  options.workers = 4;
  options.max_queue_depth = 64;
  options.max_retries = 1;
  options.default_deadline_s = 2.0;
  options.job_fn = chaotic;
  Daemon daemon(std::move(options));
  daemon.start();

  constexpr int kRequests = 2000;
  std::mutex mutex;
  std::map<std::string, int> replies_per_id;
  std::atomic<int> total_replies{0};
  std::condition_variable done_cv;

  {
    std::vector<std::thread> clients;
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back([&, c] {
        for (int i = c; i < kRequests; i += 8) {
          const std::string id = "soak-" + std::to_string(i);
          // Cycle sizes and iteration counts so coalescing, shedding, and
          // unique execution all occur; every 7th request gets a deadline
          // tight enough to expire behind a hang.
          const double deadline_ms = (i % 7 == 0) ? 20.0 : 0.0;
          daemon.handle_line(
              project_line(id, i % 2 ? "CFD" : "SRAD",
                           i % 2 ? "97K" : "2048", deadline_ms,
                           1 + (i % 50)),
              [&, id](std::string) {
                {
                  std::lock_guard<std::mutex> lock(mutex);
                  ++replies_per_id[id];
                }
                ++total_replies;
                done_cv.notify_all();
              });
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }

  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(60), [&] {
      return total_replies.load() == kRequests;
    })) << "deadlock: only " << total_replies.load() << "/" << kRequests
        << " replies arrived";
  }

  // Exactly one reply per request id.
  EXPECT_EQ(replies_per_id.size(), static_cast<std::size_t>(kRequests));
  for (const auto& [id, count] : replies_per_id)
    EXPECT_EQ(count, 1) << id;

  daemon.shutdown();  // must not hang on abandoned chaos attempts
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.received, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.replies, static_cast<std::uint64_t>(kRequests));
  // The accounting identity: every reply is exactly one outcome.
  EXPECT_EQ(stats.ok + stats.timeouts + stats.shed + stats.failed +
                stats.parse_errors + stats.usage_errors,
            stats.replies);
  EXPECT_GT(stats.coalesce_hits, 0u);
}

TEST(ServeSoak, FaultEngineDrivenJobsDegradeToTypedOutcomes) {
  // The faults module's scripted engine as the chaos source: transient
  // failures become measurement errors (retryable), which the daemon
  // either retries to success or fails typed — never crashes.
  faults::FaultPlan plan;
  plan.failure_probability = 0.3;
  plan.seed = 7;
  auto engine = std::make_shared<faults::FaultEngine>(plan);
  std::mutex engine_mutex;
  DaemonOptions options;
  options.workers = 2;
  options.max_retries = 3;
  options.job_fn = [engine, &engine_mutex](const JobSpec& spec) {
    {
      std::lock_guard<std::mutex> lock(engine_mutex);
      engine->transform(1e-3);  // throws MeasurementError on a fault
    }
    return stub_report(spec);
  };
  Daemon daemon(std::move(options));
  daemon.start();

  ReplyBin bin;
  for (int i = 0; i < 64; ++i)
    daemon.handle_line(
        project_line("f" + std::to_string(i), "CFD", "97K", 0.0, i + 1),
        bin.slot());
  const std::vector<std::string> replies = bin.wait_all();
  ASSERT_EQ(replies.size(), 64u);
  for (const std::string& reply : replies) {
    const std::string status = field(reply, "status");
    if (status != "ok") {
      EXPECT_EQ(field(reply, "error"), "measurement") << reply;
    }
  }
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().received, daemon.stats().replies);
}

// --- real pipeline + real socket ---

TEST(ServeEndToEnd, RealPipelineServesAProjection) {
  DaemonOptions options;
  options.workers = 2;
  Daemon daemon(std::move(options));
  daemon.start();
  const std::string reply = daemon.handle(project_line("real", "CFD", "97K"));
  EXPECT_EQ(field(reply, "status"), "ok") << reply;
  // The pipeline's report names the app "<workload> <size>".
  EXPECT_EQ(field(reply, "workload").rfind("CFD", 0), 0u);
  EXPECT_EQ(field(reply, "machine"), "anl_eureka");
  const auto object = util::parse_flat_json(reply);
  ASSERT_TRUE(object.has_value());
  EXPECT_GT(util::json_number(*object, "predicted_kernel_s").value_or(0), 0);
  EXPECT_GT(util::json_number(*object, "predicted_speedup").value_or(0), 0);
  daemon.shutdown();
  // Warm multi-tenant tier visible through stats.
  const DaemonStats stats = daemon.stats();
  EXPECT_GE(stats.calibration_hits + stats.calibration_misses, 1u);
}

// --- the surrogate fast tier, end to end through the daemon ---

TEST(ServeSurrogate, WarmRepeatsAreServedFromTheSurrogateTier) {
  DaemonOptions options;
  options.workers = 2;
  options.projection.surrogate.enabled = true;
  options.projection.surrogate.min_train_points = 6;
  options.projection.surrogate.refit_interval = 4;
  Daemon daemon(std::move(options));
  daemon.start();

  // Phase 1: novel traffic runs the exact pipeline (tier "exact") and
  // self-distills into the training pool.
  const int iters[] = {1, 2, 4, 8, 16, 32};
  for (const int n : iters) {
    const std::string reply = daemon.handle(
        project_line("novel-" + std::to_string(n), "CFD", "97K", 0.0, n));
    EXPECT_EQ(field(reply, "status"), "ok") << reply;
    EXPECT_EQ(field(reply, "tier"), "exact") << reply;
  }
  // The background refit must land without any serving-path involvement.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon.stats().surrogate_refits == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(daemon.stats().surrogate_refits, 1u);

  // Phase 2: the same queries are answered by the surrogate, with the
  // error bound on the wire, without touching a worker.
  const DaemonStats before = daemon.stats();
  for (const int n : iters) {
    const std::string reply = daemon.handle(
        project_line("warm-" + std::to_string(n), "CFD", "97K", 0.0, n));
    EXPECT_EQ(field(reply, "status"), "ok") << reply;
    EXPECT_EQ(field(reply, "tier"), "surrogate") << reply;
    const auto object = util::parse_flat_json(reply);
    ASSERT_TRUE(object.has_value());
    EXPECT_GT(util::json_number(*object, "rel_error_bound").value_or(-1), 0.0);
    EXPECT_GT(util::json_number(*object, "predicted_kernel_s").value_or(0), 0);
    EXPECT_GT(util::json_number(*object, "predicted_speedup").value_or(0), 0);
  }
  EXPECT_EQ(daemon.stats().executed, before.executed);  // no worker ran

  // The tier's counters are on the stats wire, and served replies count
  // in `ok` so the accounting identity still holds.
  const std::string stats_line = daemon.handle(R"({"id":"s","type":"stats"})");
  const auto object = util::parse_flat_json(stats_line);
  ASSERT_TRUE(object.has_value());
  EXPECT_GE(util::json_number(*object, "surrogate_served").value_or(0), 6.0);
  EXPECT_GE(util::json_number(*object, "surrogate_pool").value_or(0), 6.0);
  EXPECT_GE(util::json_number(*object, "surrogate_refits").value_or(0), 1.0);
  daemon.shutdown();
  const DaemonStats after = daemon.stats();
  EXPECT_GE(after.surrogate_served, 6u);
  EXPECT_EQ(after.ok, 12u);  // surrogate-served replies count in ok
}

TEST(ServeSurrogate, FallbackRepliesAreByteIdenticalToADisabledDaemon) {
  // A gate high enough that nothing is ever served by the surrogate: the
  // fallback path must be indistinguishable on the wire from a daemon
  // with the tier disabled.
  DaemonOptions gated;
  gated.workers = 1;
  gated.projection.surrogate.enabled = true;
  gated.projection.surrogate.min_train_points = 64;
  DaemonOptions disabled;
  disabled.workers = 1;
  Daemon gated_daemon(std::move(gated));
  Daemon plain_daemon(std::move(disabled));
  gated_daemon.start();
  plain_daemon.start();

  for (const int n : {1, 3, 7}) {
    const std::string line =
        project_line("cmp-" + std::to_string(n), "CFD", "97K", 0.0, n);
    EXPECT_EQ(gated_daemon.handle(line), plain_daemon.handle(line)) << line;
  }
  gated_daemon.shutdown();
  plain_daemon.shutdown();
  EXPECT_EQ(gated_daemon.stats().surrogate_served, 0u);
  EXPECT_GE(gated_daemon.stats().surrogate_fallbacks, 3u);
}

TEST(ServeEndToEnd, SocketTransportRoundTripsRequestsAndSurvivesGarbage) {
  Daemon daemon(stub_options([](const JobSpec& spec) {
    return stub_report(spec);
  }));
  daemon.start();
  const std::string socket_path =
      "/tmp/grophecy_serve_test_" + std::to_string(::getpid()) + ".sock";
  SocketServer server(daemon, {.socket_path = socket_path,
                               .max_line_bytes = 4096});
  server.start();

  Client client;
  ASSERT_TRUE(client.connect(socket_path));

  const auto pong = client.request(R"({"id":"1","type":"ping"})");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(field(*pong, "type"), "pong");

  const auto projected = client.request(project_line("2", "CFD", "97K"));
  ASSERT_TRUE(projected.has_value());
  EXPECT_EQ(field(*projected, "status"), "ok");

  // Binary garbage gets a typed reply on the same connection.
  const auto garbage = client.request("\x01\x02garbage\x7f");
  ASSERT_TRUE(garbage.has_value());
  EXPECT_EQ(field(*garbage, "error"), "parse");

  // An oversized line is answered and discarded; the connection lives.
  const auto oversized =
      client.request("{\"pad\":\"" + std::string(8192, 'x') + "\"}");
  ASSERT_TRUE(oversized.has_value());
  EXPECT_EQ(field(*oversized, "error"), "parse");
  const auto after = client.request(R"({"id":"3","type":"ping"})");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(field(*after, "type"), "pong");

  server.stop();
  daemon.shutdown();
}

}  // namespace
}  // namespace grophecy::serve
