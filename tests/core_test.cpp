// End-to-end tests of the GROPHECY++ orchestrator: report consistency,
// determinism, the paper's headline claims (transfer-aware predictions
// beat kernel-only ones; Stassuij flips from predicted win to actual
// loss), iteration behaviour, and fusion.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/grophecy.h"
#include "hw/registry.h"
#include "skeleton/builder.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/stats.h"
#include "workloads/workload.h"

namespace grophecy::core {
namespace {

using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ArrayId;
using skeleton::ElemType;
using skeleton::KernelBuilder;

AppSkeleton vector_add(std::int64_t n) {
  AppBuilder builder("vadd");
  const ArrayId a = builder.array("a", ElemType::kF32, {n});
  const ArrayId b = builder.array("b", ElemType::kF32, {n});
  const ArrayId c = builder.array("c", ElemType::kF32, {n});
  KernelBuilder& k = builder.kernel("add");
  k.parallel_loop("i", n);
  k.statement(1.0).load(a, {k.var("i")}).load(b, {k.var("i")}).store(
      c, {k.var("i")});
  return builder.build();
}

TEST(Grophecy, CalibratesOnConstruction) {
  Grophecy engine(hw::anl_eureka());
  // §III-C: alpha on the order of 10 us, bandwidth ~2.5 GB/s.
  EXPECT_GT(engine.bus_model().h2d.alpha_s, 5e-6);
  EXPECT_LT(engine.bus_model().h2d.alpha_s, 20e-6);
  EXPECT_NEAR(engine.bus_model().h2d.bandwidth_gbps(), 2.5, 0.25);
}

TEST(Grophecy, ReportInternalConsistency) {
  Grophecy engine(hw::anl_eureka());
  const ProjectionReport report = engine.project(vector_add(1 << 22));

  double kernel_pred = 0.0, kernel_meas = 0.0;
  for (const KernelResult& k : report.kernels) {
    kernel_pred += k.predicted_s;
    kernel_meas += k.measured_s;
  }
  EXPECT_DOUBLE_EQ(kernel_pred, report.predicted_kernel_s);
  EXPECT_DOUBLE_EQ(kernel_meas, report.measured_kernel_s);

  double xfer_pred = 0.0, xfer_meas = 0.0;
  for (const TransferResult& t : report.transfers) {
    xfer_pred += t.predicted_s;
    xfer_meas += t.measured_s;
  }
  EXPECT_DOUBLE_EQ(xfer_pred, report.predicted_transfer_s);
  EXPECT_DOUBLE_EQ(xfer_meas, report.measured_transfer_s);

  EXPECT_DOUBLE_EQ(report.predicted_total_s(),
                   report.predicted_kernel_s + report.predicted_transfer_s);
  EXPECT_GT(report.measured_cpu_s, 0.0);
  EXPECT_EQ(report.transfers.size(), report.plan.transfer_count());

  // Speedup identities.
  EXPECT_NEAR(report.measured_speedup(),
              report.measured_cpu_s / report.measured_total_s(), 1e-12);
  EXPECT_GT(report.predicted_speedup_kernel_only(),
            report.predicted_speedup_both());
}

TEST(Grophecy, SameSeedReproducesEveryNumber) {
  Grophecy a(hw::anl_eureka()), b(hw::anl_eureka());
  const AppSkeleton app = vector_add(1 << 20);
  const ProjectionReport ra = a.project(app);
  const ProjectionReport rb = b.project(app);
  EXPECT_DOUBLE_EQ(ra.measured_kernel_s, rb.measured_kernel_s);
  EXPECT_DOUBLE_EQ(ra.measured_transfer_s, rb.measured_transfer_s);
  EXPECT_DOUBLE_EQ(ra.measured_cpu_s, rb.measured_cpu_s);
  EXPECT_DOUBLE_EQ(ra.predicted_kernel_s, rb.predicted_kernel_s);
}

TEST(Grophecy, DescribeMentionsTheEssentials) {
  Grophecy engine(hw::anl_eureka());
  const ProjectionReport report = engine.project(vector_add(1 << 20));
  const std::string text = report.describe();
  EXPECT_NE(text.find("vadd"), std::string::npos);
  EXPECT_NE(text.find("kernel add"), std::string::npos);
  EXPECT_NE(text.find("speedup"), std::string::npos);
}

TEST(Grophecy, VectorAddLosesEndToEndOnEureka) {
  // The paper's §II-B motivating example: vector addition looks like a GPU
  // win from kernel time alone but loses once transfers are counted.
  Grophecy engine(hw::anl_eureka());
  const ProjectionReport report = engine.project(vector_add(1 << 24));
  EXPECT_GT(report.predicted_speedup_kernel_only(), 1.0);
  EXPECT_LT(report.predicted_speedup_both(), 1.0);
  EXPECT_LT(report.measured_speedup(), 1.0);
}

TEST(Grophecy, TransferAwareBeatsKernelOnlyForEveryPaperWorkload) {
  // The paper's central claim (Table II).
  ExperimentRunner runner;
  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      const ProjectionReport report = runner.run(*workload, size);
      EXPECT_LT(report.speedup_error_both_pct(),
                report.speedup_error_kernel_only_pct())
          << workload->name() << " " << size.label;
      // And the combined prediction is genuinely accurate (paper: 9% avg).
      EXPECT_LT(report.speedup_error_both_pct(), 30.0)
          << workload->name() << " " << size.label;
    }
  }
}

TEST(Grophecy, StassuijKernelOnlyPredictsWinButMachineLoses) {
  // §V-B4: the only workload where ignoring transfers flips the verdict.
  ExperimentRunner runner;
  const auto all = workloads::paper_workloads();
  const ProjectionReport report =
      runner.run(*all[3], all[3]->paper_data_sizes().front());
  EXPECT_GT(report.predicted_speedup_kernel_only(), 1.0);
  EXPECT_LT(report.measured_speedup(), 1.0);
  EXPECT_LT(report.predicted_speedup_both(), 1.0);
  EXPECT_LT(report.speedup_error_both_pct(), 10.0);
}

TEST(Grophecy, TransferVolumeIndependentOfIterationsButAmortized) {
  // §IV-B: transfer is fixed; speedup grows with iterations.
  ExperimentRunner runner;
  const auto all = workloads::paper_workloads();
  const workloads::Workload& srad = *all[2];
  const workloads::DataSize size = srad.paper_data_sizes().back();

  const ProjectionReport once = runner.run(srad, size, 1);
  const ProjectionReport many = runner.run(srad, size, 64);
  EXPECT_EQ(once.plan.total_bytes(), many.plan.total_bytes());
  EXPECT_GT(many.measured_speedup(), once.measured_speedup() * 2.0);
  // Speedup approaches the no-transfer limit from below.
  EXPECT_LT(many.measured_speedup(), many.measured_speedup_limit());
}

TEST(Grophecy, PredictionsConvergeAtLargeIterationCounts) {
  // Figs. 8/10/12: with and without transfer converge as iterations grow.
  ExperimentRunner runner;
  const auto all = workloads::paper_workloads();
  const ProjectionReport report =
      runner.run(*all[1], all[1]->paper_data_sizes().back(), 512);
  const double gap =
      report.predicted_speedup_kernel_only() / report.predicted_speedup_both();
  EXPECT_LT(gap, 1.10);
}

TEST(Grophecy, FusionChosenWhenLaunchOverheadDominates) {
  // A tiny iterative stencil: launches dominate, so the explorer should
  // fuse iterations (the HotSpot fusion of §IV-B).
  ExperimentRunner runner;
  const auto all = workloads::paper_workloads();
  const ProjectionReport report =
      runner.run(*all[1], all[1]->paper_data_sizes().front(), 64);
  ASSERT_EQ(report.kernels.size(), 1u);
  EXPECT_GT(report.kernels[0].projected.variant.fuse_iterations, 1);
  EXPECT_LT(report.kernels[0].launches, 64);
}

TEST(Grophecy, MeasurementNoiseOverrideInflatesTransferError) {
  ProjectionOptions noisy_options;
  hw::PcieNoiseProfile noise = hw::anl_eureka().pcie.noise;
  noise.outlier_probability = 0.5;
  noise.outlier_factor = 3.0;
  noisy_options.measurement_noise = noise;

  Grophecy clean(hw::anl_eureka());
  Grophecy noisy(hw::anl_eureka(), noisy_options);
  const AppSkeleton app = vector_add(1 << 22);
  EXPECT_GT(noisy.project(app).transfer_error_pct(),
            clean.project(app).transfer_error_pct() * 5.0);
}

TEST(Grophecy, RejectsBadOptions) {
  // Bad knobs are user input, not broken invariants: UsageError, naming
  // the offending field, before any calibration work happens.
  ProjectionOptions bad;
  bad.measurement_runs = 0;
  try {
    Grophecy engine(hw::anl_eureka(), bad);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("measurement_runs"),
              std::string::npos);
  }

  ProjectionOptions bad_replicates;
  bad_replicates.calibration.replicates = -1;
  try {
    Grophecy engine(hw::anl_eureka(), bad_replicates);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("calibration.replicates"),
              std::string::npos);
  }

  ProjectionOptions bad_timeout;
  bad_timeout.calibration.robustness.timeout_s = 0.0;
  EXPECT_THROW(Grophecy(hw::anl_eureka(), bad_timeout), UsageError);
}

TEST(Grophecy, DeviceFootprintTracked) {
  Grophecy engine(hw::anl_eureka());
  const ProjectionReport report = engine.project(vector_add(1 << 20));
  EXPECT_EQ(report.device_footprint_bytes, 3u * (1 << 20) * 4);
  EXPECT_TRUE(report.fits_device_memory);
}

TEST(Grophecy, OversizedFootprintFlagged) {
  // Three 1-GiB vectors exceed the FX 5600's 1.5 GiB.
  Grophecy engine(hw::anl_eureka());
  const ProjectionReport report =
      engine.project(vector_add(std::int64_t{1} << 28));
  EXPECT_GT(report.device_footprint_bytes,
            hw::anl_eureka().gpu.memory_bytes);
  EXPECT_FALSE(report.fits_device_memory);
}

TEST(Report, AnalyticIterationCurveMatchesReprojection) {
  // The analytic curve from a 1-iteration report must track re-running the
  // engine at higher iteration counts (within the fusion-choice wiggle).
  ExperimentRunner runner;
  const auto all = workloads::paper_workloads();
  const workloads::Workload& srad = *all[2];  // two kernels: no fusion
  const workloads::DataSize size = srad.paper_data_sizes().front();

  const ProjectionReport base = runner.run(srad, size, 1);
  for (int n : {1, 4, 16, 64}) {
    const ProjectionReport live = runner.run(srad, size, n);
    EXPECT_NEAR(base.predicted_speedup_at_iterations(n),
                live.predicted_speedup_both(),
                live.predicted_speedup_both() * 0.02)
        << n;
    EXPECT_NEAR(base.measured_speedup_at_iterations(n),
                live.measured_speedup(), live.measured_speedup() * 0.05)
        << n;
  }
  // The curve converges to the limit speedup.
  EXPECT_NEAR(base.measured_speedup_at_iterations(100000),
              base.measured_speedup_limit(),
              base.measured_speedup_limit() * 0.01);
  EXPECT_THROW(base.predicted_speedup_at_iterations(0), ContractViolation);
}

TEST(ExperimentRunner, RunAllSizesCoversTheCatalog) {
  ExperimentRunner runner;
  const auto all = workloads::paper_workloads();
  const auto reports = runner.run_all_sizes(*all[2]);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_NE(reports[0].app_name.find("SRAD"), std::string::npos);
}

}  // namespace
}  // namespace grophecy::core
