// Tests for the process-sharded sweep: the wire protocol, option
// validation, the shard supervisor's death/respawn/quarantine machinery,
// and the crash-consistent shard merge.
//
// The headline contracts:
//   * a sweep sharded across worker processes produces a journal and a
//     summary byte-identical to the in-process engine running the same
//     grid (record_wall_time = false);
//   * any worker may die at any instant — SIGKILL, _exit, std::abort, an
//     infinite loop — and the sweep still completes, re-assigning the
//     interrupted job to a fresh worker;
//   * a job that keeps killing its workers is quarantined as a permanent
//     structured ErrorKind::kWorkerDeath failure instead of eating the
//     fleet;
//   * leftover shard journals from a killed supervisor are merged into
//     the canonical journal on the next run and then retired.
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "exec/journal.h"
#include "exec/shard/protocol.h"
#include "exec/shard/supervisor.h"
#include "exec/sweep.h"
#include "faults/fault_injector.h"
#include "util/error.h"

namespace grophecy::exec {
namespace {

namespace fs = std::filesystem;

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("grophecy_shard_test_" + name + "_" +
                std::to_string(::getpid())))
                  .string()) {
    cleanup();
  }
  ~TempPath() { cleanup(); }
  const std::string& path() const { return path_; }
  /// "<path>.<suffix>" helper for marker files etc.
  std::string with(const std::string& suffix) const {
    return path_ + "." + suffix;
  }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    for (const std::string& shard : shard::existing_shard_paths(path_))
      std::remove(shard.c_str());
  }
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Deterministic fake projection (same shape as sweep_engine_test's).
core::ProjectionReport fake_report(const JobSpec& spec) {
  core::ProjectionReport report;
  report.app_name = spec.workload + " " + spec.size_label;
  report.machine_name = "fake";
  report.iterations = spec.iterations;
  report.predicted_kernel_s = 0.010 + 0.001 * spec.iterations;
  report.measured_kernel_s = 0.011;
  report.predicted_transfer_s = 0.020;
  report.measured_transfer_s = 0.019;
  report.measured_cpu_s = 0.300;
  return report;
}

std::vector<JobSpec> grid(int jobs) {
  std::vector<JobSpec> specs;
  for (int i = 0; i < jobs; ++i)
    specs.push_back({"W", "size" + std::to_string(i), 1});
  return specs;
}

/// True once per marker path: creates the marker on the first call.
bool first_time(const std::string& marker) {
  if (::access(marker.c_str(), F_OK) == 0) return false;
  std::FILE* file = std::fopen(marker.c_str(), "w");
  if (file) std::fclose(file);
  return true;
}

SweepOptions sharded_options(int shards, const std::string& journal = "") {
  SweepOptions options;
  options.shards = shards;
  options.journal_path = journal;
  options.record_wall_time = false;
  options.heartbeat_timeout_s = 10.0;
  return options;
}

// --- the wire protocol ---

TEST(ShardProtocol, JobPayloadRoundTrips) {
  const JobSpec spec{"CFD", "97K", 8};
  const auto decoded = shard::decode_job(shard::encode_job(42, spec));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, 42u);
  EXPECT_EQ(decoded->spec.workload, "CFD");
  EXPECT_EQ(decoded->spec.size_label, "97K");
  EXPECT_EQ(decoded->spec.iterations, 8);
}

TEST(ShardProtocol, DonePayloadRoundTripsExactRecordBytes) {
  const JobSpec spec{"CFD", "97K", 1};
  const JobRecord record =
      JobRecord::from_report(spec, fake_report(spec), 2, 0.0);
  shard::Completion completion;
  completion.index = 7;
  completion.status = JobStatus::kOk;
  completion.attempts = 2;
  completion.elapsed_s = 0.5;
  completion.backoff_s = 0.001;
  completion.record_json = record.to_json();

  const auto decoded = shard::decode_done(shard::encode_done(completion));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, 7u);
  EXPECT_EQ(decoded->status, JobStatus::kOk);
  EXPECT_EQ(decoded->attempts, 2);
  // The record travels as exact bytes: the merge appends them verbatim.
  EXPECT_EQ(decoded->record_json, record.to_json());
}

TEST(ShardProtocol, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(shard::decode_job("not json").has_value());
  EXPECT_FALSE(shard::decode_job("{\"index\":1}").has_value());
  EXPECT_FALSE(shard::decode_done("no newline").has_value());
  // Valid meta but a torn record part must not decode either.
  EXPECT_FALSE(
      shard::decode_done("{\"index\":1,\"status\":\"ok\",\"attempts\":1,"
                         "\"elapsed_s\":0,\"backoff_s\":0}\n{\"torn")
          .has_value());
}

TEST(ShardProtocol, FramesRoundTripOverASocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(shard::write_frame(sv[0], shard::MsgType::kJob, "payload"));
  const auto frame = shard::read_frame(sv[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, shard::MsgType::kJob);
  EXPECT_EQ(frame->payload, "payload");
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ShardProtocol, FrameReaderReassemblesSplitFrames) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Build two frames worth of bytes, then deliver them split at an
  // awkward boundary: reader must buffer the partial second frame.
  int pair2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair2), 0);
  ASSERT_TRUE(shard::write_frame(pair2[0], shard::MsgType::kHeartbeat, ""));
  ASSERT_TRUE(shard::write_frame(pair2[0], shard::MsgType::kDone, "abcdef"));
  char bytes[64];
  const ssize_t total = ::read(pair2[1], bytes, sizeof bytes);
  ASSERT_GT(total, 8);

  shard::FrameReader reader;
  std::vector<shard::Frame> frames;
  ASSERT_EQ(::send(sv[0], bytes, 7, 0), 7);  // frame 1 + torn frame 2 header
  EXPECT_EQ(reader.read_available(sv[1], frames),
            shard::FrameReader::Status::kOpen);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, shard::MsgType::kHeartbeat);
  ASSERT_EQ(::send(sv[0], bytes + 7, static_cast<std::size_t>(total) - 7, 0),
            total - 7);
  EXPECT_EQ(reader.read_available(sv[1], frames),
            shard::FrameReader::Status::kOpen);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1].type, shard::MsgType::kDone);
  EXPECT_EQ(frames[1].payload, "abcdef");
  ::close(sv[0]);
  ::close(sv[1]);
  ::close(pair2[0]);
  ::close(pair2[1]);
}

TEST(ShardProtocol, EofWithBufferedPartialFrameIsTorn) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Half a frame, then the writer "dies" (closes).
  const char torn[] = {0x10, 0x00, 0x00, 0x00, 'C', 'p', 'a'};
  ASSERT_EQ(::send(sv[0], torn, sizeof torn, 0),
            static_cast<ssize_t>(sizeof torn));
  ::close(sv[0]);
  shard::FrameReader reader;
  std::vector<shard::Frame> frames;
  // Drain until EOF; the torn bytes never become a frame.
  shard::FrameReader::Status status;
  do {
    status = reader.read_available(sv[1], frames);
  } while (status == shard::FrameReader::Status::kOpen);
  EXPECT_EQ(status, shard::FrameReader::Status::kEof);
  EXPECT_TRUE(frames.empty());
  ::close(sv[1]);
}

TEST(ShardProtocol, OversizedLengthIsAProtocolViolation) {
  EXPECT_FALSE(shard::write_frame(
      -1, shard::MsgType::kJob,
      std::string(shard::kMaxFramePayload + 1, 'x')));
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const unsigned char evil[] = {0xff, 0xff, 0xff, 0x7f, 'J'};
  ASSERT_EQ(::send(sv[0], evil, sizeof evil, 0),
            static_cast<ssize_t>(sizeof evil));
  shard::FrameReader reader;
  std::vector<shard::Frame> frames;
  EXPECT_EQ(reader.read_available(sv[1], frames),
            shard::FrameReader::Status::kProtocol);
  ::close(sv[0]);
  ::close(sv[1]);
}

// --- shard file naming ---

TEST(ShardPath, FormatsSlotNumbersAndScansOnlyShardFiles) {
  EXPECT_EQ(shard::shard_path("/tmp/j.jsonl", 7), "/tmp/j.jsonl.shard007");

  TempPath base("scan");
  const auto touch = [](const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    ASSERT_NE(file, nullptr);
    std::fclose(file);
  };
  touch(base.path() + ".shard002");
  touch(base.path() + ".shard000");
  touch(base.path() + ".shard17");      // Different width: still a shard.
  touch(base.path() + ".shardx");       // Not numeric: not a shard.
  touch(base.path() + ".shard001junk");  // Trailing junk: not a shard.

  const std::vector<std::string> found =
      shard::existing_shard_paths(base.path());
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0], base.path() + ".shard000");
  EXPECT_EQ(found[1], base.path() + ".shard002");
  EXPECT_EQ(found[2], base.path() + ".shard17");
  for (const std::string& path : found) std::remove(path.c_str());
  std::remove((base.path() + ".shardx").c_str());
  std::remove((base.path() + ".shard001junk").c_str());
}

// --- option validation (UsageError naming the field) ---

TEST(ShardOptionsValidation, EachInvalidFieldNamesItselfInTheError) {
  struct Case {
    const char* field;
    void (*mutate)(SweepOptions&);
  };
  const Case cases[] = {
      {"workers", [](SweepOptions& o) { o.workers = -1; }},
      {"shards", [](SweepOptions& o) { o.shards = -2; }},
      {"max_retries", [](SweepOptions& o) { o.max_retries = -1; }},
      {"backoff_initial_s",
       [](SweepOptions& o) { o.backoff_initial_s = -0.5; }},
      {"backoff_max_s",
       [](SweepOptions& o) {
         o.backoff_initial_s = 1.0;
         o.backoff_max_s = 0.5;
       }},
      {"deadline_s", [](SweepOptions& o) { o.deadline_s = 0.0; }},
      {"heartbeat_timeout_s",
       [](SweepOptions& o) { o.heartbeat_timeout_s = -3.0; }},
      {"poison_kill_threshold",
       [](SweepOptions& o) { o.poison_kill_threshold = 0; }},
  };
  for (const Case& test_case : cases) {
    SweepOptions options;
    test_case.mutate(options);
    try {
      SweepEngine engine(options);
      FAIL() << "expected UsageError for field " << test_case.field;
    } catch (const UsageError& error) {
      EXPECT_NE(std::string(error.what()).find(test_case.field),
                std::string::npos)
          << "error for " << test_case.field << " was: " << error.what();
    }
  }
  // NaN deadlines are bad requests too, not crashes.
  SweepOptions options;
  options.deadline_s = std::nan("");
  EXPECT_THROW(SweepEngine{options}, UsageError);
  // And the defaults validate.
  EXPECT_NO_THROW(SweepOptions{}.validate());
}

// --- the supervisor ---

TEST(ShardSupervisor, ShardedRunMatchesInProcessRunByteForByte) {
  TempPath serial("serial");
  TempPath sharded("sharded");
  const std::vector<JobSpec> jobs = grid(6);

  SweepOptions serial_options = sharded_options(0, serial.path());
  serial_options.workers = 1;
  SweepEngine serial_engine(serial_options);
  const SweepSummary serial_summary = serial_engine.run(jobs, fake_report);

  SweepEngine sharded_engine(sharded_options(3, sharded.path()));
  const SweepSummary sharded_summary = sharded_engine.run(jobs, fake_report);

  EXPECT_EQ(sharded_summary.ok, 6);
  EXPECT_EQ(sharded_summary.failed, 0);
  EXPECT_EQ(sharded_summary.worker_deaths, 0);
  EXPECT_EQ(sharded_summary.describe(), serial_summary.describe());
  EXPECT_EQ(read_file(sharded.path()), read_file(serial.path()));
  // Shard journals are retired after a successful merge.
  EXPECT_TRUE(shard::existing_shard_paths(sharded.path()).empty());
  // Outcomes carry equivalent records in the same order.
  ASSERT_EQ(sharded_summary.outcomes.size(), serial_summary.outcomes.size());
  for (std::size_t i = 0; i < sharded_summary.outcomes.size(); ++i)
    EXPECT_EQ(sharded_summary.outcomes[i].record.to_json(),
              serial_summary.outcomes[i].record.to_json());
}

TEST(ShardSupervisor, RunsWithoutAJournalToo) {
  SweepEngine engine(sharded_options(2));
  const SweepSummary summary = engine.run(grid(5), fake_report);
  EXPECT_EQ(summary.ok, 5);
  EXPECT_EQ(summary.failed, 0);
  ASSERT_TRUE(summary.outcomes[3].report.has_value());
  EXPECT_GT(summary.outcomes[3].report->predicted_kernel_s, 0.0);
}

TEST(ShardSupervisor, WorkerDeathReassignsTheJobToAFreshWorker) {
  TempPath journal("killonce");
  TempPath marker("killonce_marker");
  const std::vector<JobSpec> jobs = grid(4);
  const std::string kill_marker = marker.with("kill");
  const auto fn = [&](const JobSpec& spec) {
    if (spec.size_label == "size2" && first_time(kill_marker))
      ::raise(SIGKILL);  // First execution takes the whole worker down.
    return fake_report(spec);
  };

  SweepEngine engine(sharded_options(2, journal.path()));
  const SweepSummary summary = engine.run(jobs, fn);
  std::remove(kill_marker.c_str());

  EXPECT_EQ(summary.ok, 4);
  EXPECT_EQ(summary.failed, 0);
  EXPECT_EQ(summary.worker_deaths, 1);
  EXPECT_EQ(summary.worker_respawns, 1);
  EXPECT_EQ(summary.quarantined, 0);
  EXPECT_GT(summary.respawn_backoff_s, 0.0);
  // Recovered accounting stays out of describe(): the summary reads the
  // same as an unfaulted run.
  EXPECT_EQ(summary.describe().find("death"), std::string::npos);
}

TEST(ShardSupervisor, PoisonJobIsQuarantinedWhileEveryOtherJobCompletes) {
  TempPath journal("poison");
  const std::vector<JobSpec> jobs = grid(6);
  const auto fn = [](const JobSpec& spec) {
    if (spec.size_label == "size3") ::raise(SIGKILL);  // Always fatal.
    return fake_report(spec);
  };

  SweepEngine engine(sharded_options(3, journal.path()));
  const SweepSummary summary = engine.run(jobs, fn);

  EXPECT_EQ(summary.ok, 5);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.quarantined, 1);
  EXPECT_EQ(summary.worker_deaths, 2);  // poison_kill_threshold = 2.

  const JobOutcome* poison = summary.find(JobSpec{"W", "size3", 1});
  ASSERT_NE(poison, nullptr);
  EXPECT_EQ(poison->status, JobStatus::kFailed);
  ASSERT_TRUE(poison->error.has_value());
  EXPECT_EQ(poison->error->kind, ErrorKind::kWorkerDeath);
  EXPECT_NE(poison->error->message.find("quarantined as poison"),
            std::string::npos);
  EXPECT_NE(poison->error->message.find("SIGKILL"), std::string::npos);
  // The quarantine is journaled as a structured failure.
  ASSERT_TRUE(poison->record.error_kind.has_value());
  EXPECT_EQ(*poison->record.error_kind, ErrorKind::kWorkerDeath);
  const JournalReadResult journaled = ResultJournal::read(journal.path());
  EXPECT_EQ(journaled.records.size(), 6u);
}

TEST(ShardSupervisor, CleanExitMidJobIsStillADeath) {
  const std::vector<JobSpec> jobs = grid(3);
  const auto fn = [](const JobSpec& spec) {
    if (spec.size_label == "size1") ::_exit(7);
    return fake_report(spec);
  };
  SweepEngine engine(sharded_options(2));
  const SweepSummary summary = engine.run(jobs, fn);
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.failed, 1);
  const JobOutcome* failed = summary.find(JobSpec{"W", "size1", 1});
  ASSERT_NE(failed, nullptr);
  ASSERT_TRUE(failed->error.has_value());
  EXPECT_NE(failed->error->message.find("exited with status 7"),
            std::string::npos);
}

TEST(ShardSupervisor, HeartbeatTimeoutKillsAnInfiniteLoopJob) {
  const std::vector<JobSpec> jobs = grid(4);
  const auto fn = [](const JobSpec& spec) {
    if (spec.size_label == "size1") {
      // The faults:: loop kind: pure silence, never returns or throws.
      faults::FaultPlan plan;
      plan.loop_after = 0;
      faults::FaultEngine(plan).transform(1.0);
    }
    return fake_report(spec);
  };
  SweepOptions options = sharded_options(2);
  options.heartbeat_timeout_s = 0.3;   // Fast test: presume stuck quickly.
  options.poison_kill_threshold = 1;   // One strike: no second chance.
  SweepEngine engine(options);
  const SweepSummary summary = engine.run(jobs, fn);
  EXPECT_EQ(summary.ok, 3);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.quarantined, 1);
  const JobOutcome* stuck = summary.find(JobSpec{"W", "size1", 1});
  ASSERT_NE(stuck, nullptr);
  ASSERT_TRUE(stuck->error.has_value());
  EXPECT_EQ(stuck->error->kind, ErrorKind::kWorkerDeath);
  EXPECT_NE(stuck->error->message.find("heartbeat"), std::string::npos);
}

TEST(ShardSupervisor, AbortFaultKindTakesDownTheWorker) {
  const std::vector<JobSpec> jobs = grid(3);
  const auto fn = [](const JobSpec& spec) {
    if (spec.size_label == "size0") {
      faults::FaultPlan plan;
      plan.abort_after = 0;
      faults::FaultEngine(plan).transform(1.0);  // std::abort => SIGABRT.
    }
    return fake_report(spec);
  };
  SweepEngine engine(sharded_options(2));
  const SweepSummary summary = engine.run(jobs, fn);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.worker_deaths, 2);
  const JobOutcome* aborted = summary.find(JobSpec{"W", "size0", 1});
  ASSERT_NE(aborted, nullptr);
  ASSERT_TRUE(aborted->error.has_value());
  EXPECT_NE(aborted->error->message.find("SIGABRT"), std::string::npos);
}

TEST(ShardSupervisor, FailedJobsJournalAndReportExactlyLikeInProcess) {
  TempPath serial("fail_serial");
  TempPath sharded("fail_sharded");
  const std::vector<JobSpec> jobs = grid(4);
  // An ordinary thrown failure must NOT kill the worker: the in-worker
  // engine converts it to a failed record, identical to in-process runs.
  const auto fn = [](const JobSpec& spec) -> core::ProjectionReport {
    if (spec.size_label == "size2")
      throw CalibrationError("scripted permanent failure");
    return fake_report(spec);
  };

  SweepOptions serial_options = sharded_options(0, serial.path());
  serial_options.workers = 1;
  SweepEngine serial_engine(serial_options);
  const SweepSummary serial_summary = serial_engine.run(jobs, fn);
  SweepEngine sharded_engine(sharded_options(2, sharded.path()));
  const SweepSummary sharded_summary = sharded_engine.run(jobs, fn);

  EXPECT_EQ(sharded_summary.failed, 1);
  EXPECT_EQ(sharded_summary.worker_deaths, 0);
  EXPECT_EQ(sharded_summary.describe(), serial_summary.describe());
  EXPECT_EQ(read_file(sharded.path()), read_file(serial.path()));
}

// --- the merge ---

TEST(ShardMerge, LeftoverShardRecordsAreRecoveredMergedAndRetired) {
  TempPath journal("merge");
  const std::vector<JobSpec> jobs = grid(3);

  // A previous supervisor was killed: worker 1 had made job "size1"
  // durable in its shard journal, but the merge never ran.
  const JobRecord durable =
      JobRecord::from_report(jobs[1], fake_report(jobs[1]), 1, 0.0);
  {
    ResultJournal shard_journal;
    shard_journal.open_append(shard::shard_path(journal.path(), 1));
    shard_journal.append(durable.to_json());
  }

  SweepEngine engine(sharded_options(2, journal.path()));
  const SweepSummary summary = engine.run(jobs, fake_report);

  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.resumed, 1);  // Recovered from the shard, not re-run.
  EXPECT_EQ(summary.outcomes[1].status, JobStatus::kResumed);
  EXPECT_TRUE(shard::existing_shard_paths(journal.path()).empty());

  // The merged canonical journal is byte-identical to a clean
  // single-process run of the same grid: recovery is invisible.
  TempPath clean("merge_clean");
  SweepOptions clean_options = sharded_options(0, clean.path());
  clean_options.workers = 1;
  SweepEngine clean_engine(clean_options);
  clean_engine.run(jobs, fake_report);
  EXPECT_EQ(read_file(journal.path()), read_file(clean.path()));
}

TEST(ShardMerge, InteriorShardCorruptionIsLoudInTheSummary) {
  TempPath journal("interior");
  const std::vector<JobSpec> jobs = grid(3);

  // A damaged leftover shard: a corrupt line FOLLOWED by a valid one —
  // impossible as a crash artifact, so it must be called out.
  {
    ResultJournal shard_journal;
    shard_journal.open_append(shard::shard_path(journal.path(), 0));
    shard_journal.append(
        JobRecord::from_report(jobs[0], fake_report(jobs[0]), 1, 0.0)
            .to_json());
    shard_journal.append(
        JobRecord::from_report(jobs[1], fake_report(jobs[1]), 1, 0.0)
            .to_json());
  }
  const std::string shard_file = shard::shard_path(journal.path(), 0);
  std::string contents = read_file(shard_file);
  contents[10] ^= 0x20;  // Flip a bit in the first line.
  {
    std::ofstream out(shard_file, std::ios::trunc | std::ios::binary);
    out << contents;
  }

  SweepEngine engine(sharded_options(2, journal.path()));
  const SweepSummary summary = engine.run(jobs, fake_report);
  EXPECT_EQ(summary.journal_corrupt_interior, 1);
  EXPECT_NE(summary.describe().find("INTERIOR"), std::string::npos);
  // The damaged record's job was simply re-run; nothing was lost.
  EXPECT_EQ(summary.ok + summary.resumed, 3);
  EXPECT_EQ(summary.failed, 0);
}

TEST(ShardMerge, ResumeSkipsCanonicalRecordsWithoutRewritingThem) {
  TempPath journal("resume");
  const std::vector<JobSpec> jobs = grid(4);

  SweepEngine first(sharded_options(2, journal.path()));
  const SweepSummary first_summary = first.run(jobs, fake_report);
  EXPECT_EQ(first_summary.ok, 4);
  const std::string after_first = read_file(journal.path());

  SweepEngine second(sharded_options(2, journal.path()));
  const SweepSummary second_summary = second.run(jobs, fake_report);
  EXPECT_EQ(second_summary.resumed, 4);
  EXPECT_EQ(second_summary.ok, 0);
  // Nothing is re-journaled on a fully-resumed sweep.
  EXPECT_EQ(read_file(journal.path()), after_first);
}

}  // namespace
}  // namespace grophecy::exec
