// Property-based validation of the data-usage analyzer against a concrete
// oracle.
//
// The oracle executes a skeleton element by element: it enumerates every
// loop-index combination of every statement, evaluates the affine
// subscripts, and tracks per array exactly which elements are read before
// being written (must be transferred in) and which are written (must be
// transferred out unless hinted temporary). The BRS analyzer must be
// CONSERVATIVE with respect to this ground truth: its transfer sections
// must contain every element the oracle identifies. Hundreds of randomly
// generated skeletons are checked, plus directed cases where bounding
// unions are forced to over-approximate.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "dataflow/usage_analyzer.h"
#include "skeleton/skeleton.h"
#include "util/rng.h"

namespace grophecy::dataflow {
namespace {

using skeleton::AffineExpr;
using skeleton::AppSkeleton;
using skeleton::ArrayDecl;
using skeleton::ArrayId;
using skeleton::ArrayRef;
using skeleton::ElemType;
using skeleton::KernelSkeleton;
using skeleton::Loop;
using skeleton::RefKind;
using skeleton::Statement;

/// Flattened element coordinates of one array.
using ElementSet = std::set<std::int64_t>;

struct OracleResult {
  std::map<ArrayId, ElementSet> needs_input;  ///< Read before written.
  std::map<ArrayId, ElementSet> written;
};

/// Flattens multi-dim coordinates row-major; returns -1 if out of bounds
/// (the analyzer clamps such accesses away, and real code guards them).
std::int64_t flatten(const std::vector<std::int64_t>& coords,
                     const ArrayDecl& decl) {
  std::int64_t index = 0;
  for (std::size_t d = 0; d < decl.dims.size(); ++d) {
    if (coords[d] < 0 || coords[d] >= decl.dims[d]) return -1;
    index = index * decl.dims[d] + coords[d];
  }
  return index;
}

/// Executes the whole application concretely (affine refs only).
OracleResult run_oracle(const AppSkeleton& app) {
  OracleResult result;
  std::map<ArrayId, ElementSet> written_so_far;

  for (const KernelSkeleton& kernel : app.kernels) {
    for (const Statement& stmt : kernel.body) {
      const std::size_t depth =
          stmt.depth < 0 ? kernel.loops.size()
                         : std::min<std::size_t>(stmt.depth,
                                                 kernel.loops.size());
      // Enumerate every loop-index combination for loops[0..depth).
      std::vector<std::int64_t> values(kernel.loops.size(), 0);
      for (std::size_t d = 0; d < depth; ++d)
        values[d] = kernel.loops[d].lower;

      bool done = depth == 0 ? false : false;
      bool executed_once = false;
      while (true) {
        if (depth == 0 && executed_once) break;
        executed_once = true;
        // Loads first, then stores (in-place updates read the old value).
        for (const ArrayRef& ref : stmt.refs) {
          if (ref.kind != RefKind::kLoad) continue;
          const ArrayDecl& decl = app.array(ref.array);
          std::vector<std::int64_t> coords;
          for (const AffineExpr& expr : ref.subscripts)
            coords.push_back(expr.evaluate(values));
          const std::int64_t idx = flatten(coords, decl);
          if (idx < 0) continue;
          if (!written_so_far[ref.array].count(idx))
            result.needs_input[ref.array].insert(idx);
        }
        for (const ArrayRef& ref : stmt.refs) {
          if (ref.kind != RefKind::kStore) continue;
          const ArrayDecl& decl = app.array(ref.array);
          std::vector<std::int64_t> coords;
          for (const AffineExpr& expr : ref.subscripts)
            coords.push_back(expr.evaluate(values));
          const std::int64_t idx = flatten(coords, decl);
          if (idx < 0) continue;
          written_so_far[ref.array].insert(idx);
          result.written[ref.array].insert(idx);
        }
        // Odometer increment over loops[0..depth).
        if (depth == 0) break;
        std::size_t d = depth;
        while (d-- > 0) {
          values[d] += kernel.loops[d].step;
          if (values[d] < kernel.loops[d].upper) break;
          values[d] = kernel.loops[d].lower;
          if (d == 0) {
            done = true;
            break;
          }
        }
        if (done) break;
      }
    }
  }
  return result;
}

/// True if the flattened element lies inside the (multi-dim) section.
bool section_contains(const brs::Section& section, std::int64_t flat_index,
                      const ArrayDecl& decl) {
  std::vector<std::int64_t> coords(decl.dims.size());
  std::int64_t rest = flat_index;
  for (std::size_t d = decl.dims.size(); d-- > 0;) {
    coords[d] = rest % decl.dims[d];
    rest /= decl.dims[d];
  }
  for (std::size_t d = 0; d < decl.dims.size(); ++d)
    if (!section.dims[d].contains_value(coords[d])) return false;
  return true;
}

/// Checks the analyzer's plan is a superset of the oracle's ground truth.
void expect_conservative(const AppSkeleton& app, std::uint64_t seed_label) {
  const OracleResult oracle = run_oracle(app);
  const TransferPlan plan = UsageAnalyzer().analyze(app);

  auto find_section = [&](const std::vector<Transfer>& list, ArrayId array)
      -> const brs::Section* {
    for (const Transfer& t : list)
      if (t.array == array) return &t.section;
    return nullptr;
  };

  for (const auto& [array, elements] : oracle.needs_input) {
    const brs::Section* section = find_section(plan.host_to_device, array);
    ASSERT_NE(section, nullptr)
        << "seed " << seed_label << ": array " << app.array(array).name
        << " needs input but has no H2D transfer";
    for (std::int64_t element : elements) {
      ASSERT_TRUE(section_contains(*section, element, app.array(array)))
          << "seed " << seed_label << ": element " << element << " of "
          << app.array(array).name << " missing from H2D section "
          << section->to_string();
    }
  }
  for (const auto& [array, elements] : oracle.written) {
    if (app.is_temporary(array)) continue;
    const brs::Section* section = find_section(plan.device_to_host, array);
    ASSERT_NE(section, nullptr)
        << "seed " << seed_label << ": array " << app.array(array).name
        << " is written but has no D2H transfer";
    for (std::int64_t element : elements) {
      ASSERT_TRUE(section_contains(*section, element, app.array(array)))
          << "seed " << seed_label << ": element " << element << " of "
          << app.array(array).name << " missing from D2H section";
    }
  }
}

/// Generates a random, valid, affine-only skeleton with small extents.
AppSkeleton random_skeleton(util::Rng& rng) {
  AppSkeleton app;
  app.name = "fuzz";

  const int num_arrays = static_cast<int>(rng.uniform_int(1, 3));
  for (int a = 0; a < num_arrays; ++a) {
    ArrayDecl decl;
    decl.name = "a" + std::to_string(a);
    decl.type = ElemType::kF32;
    const int rank = static_cast<int>(rng.uniform_int(1, 2));
    for (int d = 0; d < rank; ++d)
      decl.dims.push_back(rng.uniform_int(4, 12));
    app.arrays.push_back(std::move(decl));
    if (rng.bernoulli(0.15))
      app.temporaries.push_back(static_cast<ArrayId>(a));
  }

  const int num_kernels = static_cast<int>(rng.uniform_int(1, 3));
  for (int k = 0; k < num_kernels; ++k) {
    KernelSkeleton kernel;
    kernel.name = "k" + std::to_string(k);
    const int num_loops = static_cast<int>(rng.uniform_int(1, 3));
    for (int l = 0; l < num_loops; ++l) {
      Loop loop;
      loop.name = "v" + std::to_string(l);
      loop.lower = 0;
      loop.upper = rng.uniform_int(2, 6);
      loop.step = rng.bernoulli(0.2) ? 2 : 1;
      loop.parallel = rng.bernoulli(0.6);
      kernel.loops.push_back(std::move(loop));
    }
    const int num_stmts = static_cast<int>(rng.uniform_int(1, 3));
    for (int s = 0; s < num_stmts; ++s) {
      Statement stmt;
      stmt.flops = 1.0;
      stmt.depth = rng.bernoulli(0.3)
                       ? static_cast<int>(rng.uniform_int(0, num_loops))
                       : -1;
      const std::size_t depth =
          stmt.depth < 0 ? kernel.loops.size()
                         : static_cast<std::size_t>(stmt.depth);
      const int num_refs = static_cast<int>(rng.uniform_int(1, 3));
      for (int r = 0; r < num_refs; ++r) {
        ArrayRef ref;
        ref.array = static_cast<ArrayId>(
            rng.uniform_int(0, static_cast<std::int64_t>(app.arrays.size()) -
                                   1));
        ref.kind = rng.bernoulli(0.5) ? RefKind::kLoad : RefKind::kStore;
        const ArrayDecl& decl =
            app.arrays[static_cast<std::size_t>(ref.array)];
        for (std::size_t d = 0; d < decl.dims.size(); ++d) {
          AffineExpr expr;
          expr.constant = rng.uniform_int(-3, 3);
          if (depth > 0 && rng.bernoulli(0.8)) {
            const auto loop = static_cast<skeleton::LoopId>(
                rng.uniform_int(0, static_cast<std::int64_t>(depth) - 1));
            const std::int64_t coeff = rng.uniform_int(-2, 2);
            if (coeff != 0) expr.terms.emplace_back(loop, coeff);
          }
          ref.subscripts.push_back(std::move(expr));
        }
        stmt.refs.push_back(std::move(ref));
      }
      kernel.body.push_back(std::move(stmt));
    }
    app.kernels.push_back(std::move(kernel));
  }
  app.validate();
  return app;
}

class DataflowOracle : public ::testing::TestWithParam<int> {};

TEST_P(DataflowOracle, AnalyzerIsConservativeOnRandomSkeletons) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int trial = 0; trial < 60; ++trial) {
    const AppSkeleton app = random_skeleton(rng);
    expect_conservative(
        app, static_cast<std::uint64_t>(GetParam()) * 1000 + trial);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowOracle,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DataflowOracleDirected, StridedWritesDoNotCoverTheGaps) {
  // Kernel 1 writes even elements; kernel 2 reads all: odd elements are
  // read-before-write and must be in the H2D section.
  AppSkeleton app;
  app.name = "strided";
  app.arrays.push_back({"a", ElemType::kF32, {16}, false});
  app.arrays.push_back({"out", ElemType::kF32, {16}, false});

  KernelSkeleton k1;
  k1.name = "evens";
  k1.loops.push_back({"i", 0, 8, 1, true});
  Statement s1;
  s1.flops = 1.0;
  s1.refs.push_back({0, RefKind::kStore, {AffineExpr::make_var(0, 2)}, {},
                     {}, false});
  k1.body.push_back(std::move(s1));
  app.kernels.push_back(std::move(k1));

  KernelSkeleton k2;
  k2.name = "all";
  k2.loops.push_back({"i", 0, 16, 1, true});
  Statement s2;
  s2.flops = 1.0;
  s2.refs.push_back({0, RefKind::kLoad, {AffineExpr::make_var(0)}, {}, {},
                     false});
  s2.refs.push_back({1, RefKind::kStore, {AffineExpr::make_var(0)}, {}, {},
                     false});
  k2.body.push_back(std::move(s2));
  app.kernels.push_back(std::move(k2));
  app.validate();

  expect_conservative(app, 999);

  // And specifically: the H2D section for `a` must include odd elements.
  const TransferPlan plan = UsageAnalyzer().analyze(app);
  const brs::Section* section = nullptr;
  for (const Transfer& t : plan.host_to_device)
    if (t.array == 0) section = &t.section;
  ASSERT_NE(section, nullptr);
  EXPECT_TRUE(section_contains(*section, 7, app.arrays[0]));
}

TEST(DataflowOracleDirected, ReverseIterationInPlace) {
  // a[i] = a[15 - i]: every element is both read and written; reads of
  // the upper half happen "before" their writes in section terms. The
  // analyzer must transfer the whole array both ways.
  AppSkeleton app;
  app.name = "reverse";
  app.arrays.push_back({"a", ElemType::kF32, {16}, false});
  KernelSkeleton k;
  k.name = "rev";
  k.loops.push_back({"i", 0, 16, 1, true});
  Statement s;
  s.flops = 1.0;
  s.refs.push_back(
      {0, RefKind::kLoad, {AffineExpr::make_var(0, -1, 15)}, {}, {}, false});
  s.refs.push_back({0, RefKind::kStore, {AffineExpr::make_var(0)}, {}, {},
                    false});
  k.body.push_back(std::move(s));
  app.kernels.push_back(std::move(k));
  app.validate();

  expect_conservative(app, 1000);
}

}  // namespace
}  // namespace grophecy::dataflow
