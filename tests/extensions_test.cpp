// Tests for the future-work extensions (paper §VII): allocation-overhead
// modeling and the pinned-vs-pageable memory-mode advisor.
#include <gtest/gtest.h>

#include "core/memory_advisor.h"
#include "hw/registry.h"
#include "pcie/allocation.h"
#include "skeleton/builder.h"
#include "util/contracts.h"
#include "util/units.h"
#include "workloads/hotspot.h"
#include "workloads/stassuij.h"

namespace grophecy {
namespace {

using pcie::AllocKind;

TEST(Allocation, PinningCostsMoreThanMalloc) {
  pcie::SimulatedAllocator allocator(hw::anl_eureka().alloc, 1);
  for (std::uint64_t bytes :
       {std::uint64_t{4096}, std::uint64_t{util::kMiB},
        std::uint64_t{64 * util::kMiB}}) {
    EXPECT_GT(allocator.expected_time(bytes, AllocKind::kPinnedHost),
              allocator.expected_time(bytes, AllocKind::kPageableHost))
        << bytes;
  }
}

TEST(Allocation, ExpectedTimeMonotonicInSize) {
  pcie::SimulatedAllocator allocator(hw::anl_eureka().alloc, 1);
  for (AllocKind kind : {AllocKind::kDevice, AllocKind::kPageableHost,
                         AllocKind::kPinnedHost}) {
    double prev = 0.0;
    for (std::uint64_t bytes = 4096; bytes <= 512 * util::kMiB; bytes *= 8) {
      const double t = allocator.expected_time(bytes, kind);
      EXPECT_GT(t, prev) << alloc_kind_name(kind);
      prev = t;
    }
  }
}

TEST(Allocation, CalibrationPredictsWithinTolerance) {
  pcie::SimulatedAllocator calibration_allocator(hw::anl_eureka().alloc, 2);
  const pcie::AllocationModel model =
      pcie::AllocationCalibrator().calibrate(calibration_allocator);
  pcie::SimulatedAllocator eval(hw::anl_eureka().alloc, 3);
  for (AllocKind kind : {AllocKind::kDevice, AllocKind::kPageableHost,
                         AllocKind::kPinnedHost}) {
    for (std::uint64_t bytes = 64 * util::kKiB; bytes <= 256 * util::kMiB;
         bytes *= 16) {
      const double measured = eval.measure_mean(bytes, kind, 50);
      const double predicted = model.kind(kind).predict_seconds(bytes);
      EXPECT_NEAR(predicted, measured, measured * 0.15)
          << alloc_kind_name(kind) << " " << bytes;
    }
  }
}

TEST(Allocation, OptionsValidated) {
  pcie::AllocCalibrationOptions bad;
  bad.replicates = 0;
  EXPECT_THROW(pcie::AllocationCalibrator{bad}, ContractViolation);
  pcie::LinearAllocModel model;  // uncalibrated
  EXPECT_THROW(model.predict_seconds(1), ContractViolation);
}

TEST(MemoryAdvisor, CalibratesBothModes) {
  core::MemoryModeAdvisor advisor(hw::anl_eureka());
  // Pinned is faster per byte than pageable on this machine.
  EXPECT_GT(advisor.pinned_model().h2d.bandwidth_gbps(),
            advisor.pageable_model().h2d.bandwidth_gbps());
}

TEST(MemoryAdvisor, LargeReusedBuffersPreferPinned) {
  // HotSpot 1024x1024 moves megabytes per array: transfer savings dwarf the
  // pinning cost.
  core::MemoryModeAdvisor advisor(hw::anl_eureka());
  const core::MemoryModeReport report =
      advisor.advise(workloads::hotspot_skeleton(1024, 1));
  ASSERT_FALSE(report.choices.empty());
  EXPECT_EQ(report.uniform_recommendation, hw::HostMemory::kPinned);
  EXPECT_LE(report.mixed_s, report.all_pinned_s);
  EXPECT_LE(report.mixed_s, report.all_pageable_s);
}

TEST(MemoryAdvisor, TinyBuffersPreferPageable) {
  // A single tiny one-shot transfer: pinning 4 KB costs more than the
  // transfer-time saving.
  skeleton::AppBuilder builder("tiny");
  const auto a = builder.array("a", skeleton::ElemType::kF32, {256});
  const auto out = builder.array("out", skeleton::ElemType::kF32, {256});
  skeleton::KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 256);
  k.statement(1.0).load(a, {k.var("i")}).store(out, {k.var("i")});

  core::MemoryModeAdvisor advisor(hw::anl_eureka());
  const core::MemoryModeReport report = advisor.advise(builder.build());
  for (const core::ArrayModeChoice& choice : report.choices)
    EXPECT_EQ(choice.recommended, hw::HostMemory::kPageable)
        << choice.array_name;
}

TEST(MemoryAdvisor, MixedNeverWorseThanUniform) {
  core::MemoryModeAdvisor advisor(hw::anl_eureka());
  const core::MemoryModeReport report =
      advisor.advise(workloads::stassuij_skeleton({}, 1));
  EXPECT_LE(report.mixed_s,
            std::min(report.all_pinned_s, report.all_pageable_s) + 1e-12);
  // Stassuij's CSR vectors are small (pageable), the dense matrices large
  // (pinned) -> the mix should be strictly better than either uniform.
  EXPECT_LT(report.mixed_s, report.all_pinned_s);
}

TEST(MemoryAdvisor, DescribeListsEveryArray) {
  core::MemoryModeAdvisor advisor(hw::anl_eureka());
  const core::MemoryModeReport report =
      advisor.advise(workloads::stassuij_skeleton({}, 1));
  const std::string text = report.describe();
  EXPECT_NE(text.find("a_val"), std::string::npos);
  EXPECT_NE(text.find("B"), std::string::npos);
  EXPECT_NE(text.find("recommendation"), std::string::npos);
}

}  // namespace
}  // namespace grophecy
