// Property tests for the GPU modeling stack over randomly generated
// skeletons: every variant must characterize consistently with the
// footprint analysis, project to finite positive times, and the machine
// must never beat the best-achievable model by more than jitter allows.
#include <gtest/gtest.h>

#include <cmath>

#include "brs/footprint.h"
#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "sim/event_sim.h"
#include "sim/gpu_sim.h"
#include "skeleton/builder.h"
#include "util/rng.h"
#include "util/table.h"

namespace grophecy::gpumodel {
namespace {

/// Random but *regular* skeletons (affine refs, realistic extents):
/// 1-2 kernels, 1-3 loops, mixed access patterns.
skeleton::AppSkeleton random_app(util::Rng& rng) {
  skeleton::AppBuilder builder("prop");
  std::vector<skeleton::ArrayId> arrays_1d, arrays_2d;
  // strfmt instead of "x" + std::to_string(i): the latter trips a GCC 12
  // -Wrestrict false positive on operator+(const char*, std::string&&).
  const int n1 = static_cast<int>(rng.uniform_int(1, 2));
  for (int i = 0; i < n1; ++i) {
    arrays_1d.push_back(builder.array(util::strfmt("v%d", i),
                                      skeleton::ElemType::kF32,
                                      {rng.uniform_int(1024, 1 << 18)}));
  }
  const int n2 = static_cast<int>(rng.uniform_int(1, 2));
  for (int i = 0; i < n2; ++i) {
    const std::int64_t side = rng.uniform_int(64, 512);
    arrays_2d.push_back(builder.array(util::strfmt("m%d", i),
                                      skeleton::ElemType::kF32,
                                      {side, side}));
  }

  const int kernels = static_cast<int>(rng.uniform_int(1, 2));
  for (int kid = 0; kid < kernels; ++kid) {
    skeleton::KernelBuilder& k = builder.kernel(util::strfmt("k%d", kid));
    const bool two_d = rng.bernoulli(0.5);
    const skeleton::ArrayId target =
        two_d ? arrays_2d[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(arrays_2d.size()) - 1))]
              : arrays_1d[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(arrays_1d.size()) - 1))];
    if (two_d) {
      const std::int64_t side = 64;  // stay within every 2D array
      k.parallel_loop("i", side).parallel_loop("j", side);
      if (rng.bernoulli(0.4)) k.loop("r", rng.uniform_int(4, 32));
      k.statement(rng.uniform(1.0, 30.0), rng.bernoulli(0.3) ? 2.0 : 0.0);
      k.load(target, {k.var("i"), k.var("j")});
      if (rng.bernoulli(0.6))
        k.load(target, {k.var("i").shifted(1), k.var("j")});
      if (rng.bernoulli(0.6))
        k.load(target, {k.var("i"), k.var("j").shifted(-1)});
      k.store(target, {k.var("i"), k.var("j")});
    } else {
      k.parallel_loop("i", 1024);
      k.statement(rng.uniform(1.0, 30.0));
      if (rng.bernoulli(0.3)) {
        k.load_indirect(target);
      } else {
        k.load(target, {k.var("i", rng.bernoulli(0.2) ? 2 : 1)});
      }
      k.store(target, {k.var("i")});
    }
  }
  return builder.build();
}

class ModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModelProperty, EveryVariantProjectsSanely) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const hw::GpuSpec gpu = hw::anl_eureka().gpu;
  KernelTimeModel model(gpu);
  Explorer explorer(gpu);

  for (int trial = 0; trial < 20; ++trial) {
    const skeleton::AppSkeleton app = random_app(rng);
    for (const skeleton::KernelSkeleton& kernel : app.kernels) {
      const auto variants = explorer.explore(app, kernel);
      ASSERT_FALSE(variants.empty());
      for (const ProjectedKernel& projected : variants) {
        // Finite, positive, at least the launch overhead.
        ASSERT_TRUE(std::isfinite(projected.time.total_s));
        ASSERT_GE(projected.time.total_s, gpu.kernel_launch_overhead_s);
        ASSERT_GE(projected.time.compute_s, 0.0);
        ASSERT_GE(projected.time.bandwidth_s, 0.0);
        ASSERT_GE(projected.time.latency_s, 0.0);
        ASSERT_GT(projected.characteristics.total_threads, 0);
        ASSERT_GT(projected.characteristics.num_blocks, 0);
        // Projection is a pure function of the characteristics.
        ASSERT_DOUBLE_EQ(
            projected.time.total_s,
            model.project(projected.characteristics).total_s);
      }
    }
  }
}

TEST_P(ModelProperty, UntransformedCharacteristicsMatchFootprint) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 1000);
  const hw::GpuSpec gpu = hw::anl_eureka().gpu;
  for (int trial = 0; trial < 20; ++trial) {
    const skeleton::AppSkeleton app = random_app(rng);
    for (const skeleton::KernelSkeleton& kernel : app.kernels) {
      const brs::KernelFootprint fp = brs::kernel_footprint(app, kernel);
      Variant plain;  // no staging/tiling/fusion: counts must line up
      const KernelCharacteristics kc =
          characterize(app, kernel, plain, gpu);
      const double threads = static_cast<double>(kc.total_threads);
      EXPECT_NEAR(kc.flops_per_thread * threads, fp.flops,
                  fp.flops * 1e-9 + 1e-6);
      EXPECT_NEAR(kc.special_per_thread * threads, fp.special_ops,
                  fp.special_ops * 1e-9 + 1e-6);
      double ref_count = 0.0;
      for (const MemAccess& access : kc.accesses)
        ref_count += access.count_per_thread * threads;
      EXPECT_NEAR(ref_count,
                  static_cast<double>(fp.dynamic_loads + fp.dynamic_stores),
                  1e-6);
    }
  }
}

TEST_P(ModelProperty, MachineNeverBeatsTheModelMaterially) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 2000);
  const hw::GpuSpec gpu = hw::anl_eureka().gpu;
  KernelTimeModel model(gpu);
  sim::GpuSimulator wave(gpu, 5);
  Explorer explorer(gpu);
  for (int trial = 0; trial < 15; ++trial) {
    const skeleton::AppSkeleton app = random_app(rng);
    for (const skeleton::KernelSkeleton& kernel : app.kernels) {
      const ProjectedKernel best = explorer.best(app, kernel);
      const double simulated =
          wave.expected_launch(best.characteristics).total_s;
      // The machine charges everything the model does and more.
      EXPECT_GE(simulated, best.time.total_s * 0.98);
      // ...but not absurdly more for these regular kernels.
      EXPECT_LT(simulated, best.time.total_s * 4.0);
    }
  }
}

TEST_P(ModelProperty, EventSimTracksWaveSimOnRandomKernels) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3000);
  const hw::GpuSpec gpu = hw::anl_eureka().gpu;
  sim::GpuSimulator wave(gpu, 5);
  sim::EventGpuSimulator fluid(gpu, 5);
  Explorer explorer(gpu);
  for (int trial = 0; trial < 10; ++trial) {
    const skeleton::AppSkeleton app = random_app(rng);
    for (const skeleton::KernelSkeleton& kernel : app.kernels) {
      const ProjectedKernel best = explorer.best(app, kernel);
      const double w = wave.expected_launch(best.characteristics).total_s;
      const double f = fluid.expected_launch(best.characteristics).total_s;
      EXPECT_GT(f, w * 0.5);
      EXPECT_LT(f, w * 1.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace grophecy::gpumodel
