// Tests for the workload suite: skeleton structure of all four paper
// benchmarks and numerical validation of the OpenMP reference
// implementations (HotSpot thermal behaviour, SRAD smoothing, CFD
// conservation, Stassuij against a naive dense multiply).
#include <gtest/gtest.h>

#include <complex>
#include <functional>
#include <string>
#include <vector>

#include "workloads/cfd.h"
#include "workloads/cfd_ref.h"
#include "workloads/hotspot.h"
#include "workloads/hotspot_ref.h"
#include "workloads/paper_reference.h"
#include "workloads/srad.h"
#include "workloads/srad_ref.h"
#include "workloads/stassuij.h"
#include "workloads/stassuij_ref.h"
#include "util/error.h"
#include "workloads/workload.h"

namespace grophecy::workloads {
namespace {

TEST(Suite, HasTheFourPaperBenchmarks) {
  const auto all = paper_workloads();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name(), "CFD");
  EXPECT_EQ(all[1]->name(), "HotSpot");
  EXPECT_EQ(all[2]->name(), "SRAD");
  EXPECT_EQ(all[3]->name(), "Stassuij");
}

TEST(Suite, EverySkeletonValidatesAtEverySize) {
  for (const auto& workload : paper_workloads()) {
    for (const DataSize& size : workload->paper_data_sizes()) {
      const skeleton::AppSkeleton app = workload->make_skeleton(size, 3);
      EXPECT_NO_THROW(app.validate()) << workload->name() << " " << size.label;
      EXPECT_EQ(app.iterations, 3);
    }
  }
}

TEST(Suite, KernelCountsMatchThePaper) {
  // §IV-B: CFD has three kernels per iteration, HotSpot one, SRAD two.
  const auto all = paper_workloads();
  auto kernels = [&](std::size_t idx) {
    return all[idx]
        ->make_skeleton(all[idx]->paper_data_sizes().front(), 1)
        .kernels.size();
  };
  EXPECT_EQ(kernels(0), 3u);  // CFD
  EXPECT_EQ(kernels(1), 1u);  // HotSpot
  EXPECT_EQ(kernels(2), 2u);  // SRAD
  EXPECT_EQ(kernels(3), 1u);  // Stassuij
}

TEST(Suite, SradTemporariesAreHinted) {
  const skeleton::AppSkeleton app = srad_skeleton(64, 1);
  EXPECT_EQ(app.temporaries.size(), 5u);  // c, dN, dS, dW, dE
  EXPECT_FALSE(app.is_temporary(app.array_id("image")));
}

TEST(Suite, CfdFluxGathersAreThreadDependent) {
  const skeleton::AppSkeleton app = cfd_skeleton(1024, 1);
  const skeleton::KernelSkeleton& flux = app.kernels[1];
  int gathers = 0;
  for (const skeleton::Statement& stmt : flux.body)
    for (const skeleton::ArrayRef& ref : stmt.refs)
      if (!ref.indirect_dims.empty()) ++gathers;
  EXPECT_EQ(gathers, 5);  // the five conserved variables
}

TEST(Suite, StassuijSparseVectorsAreMarkedSparse) {
  const skeleton::AppSkeleton app = stassuij_skeleton({}, 1);
  EXPECT_TRUE(app.array(app.array_id("a_val")).sparse);
  EXPECT_TRUE(app.array(app.array_id("a_col")).sparse);
  EXPECT_TRUE(app.array(app.array_id("a_rowptr")).sparse);
  EXPECT_FALSE(app.array(app.array_id("B")).sparse);
}

TEST(PaperReference, TablesHaveTenRows) {
  EXPECT_EQ(paper_table1().size(), 10u);
  EXPECT_EQ(paper_table2().size(), 10u);
  EXPECT_DOUBLE_EQ(paper_table2_averages().by_application_both, 9.0);
}

// --- HotSpot reference ---

TEST(HotspotRef, TemperatureStaysBoundedAndReactsToPower) {
  HotspotReference ref(64, /*seed=*/1);
  const double initial_mean = [&] {
    double sum = 0.0;
    for (float v : ref.temperature()) sum += v;
    return sum / static_cast<double>(ref.temperature().size());
  }();
  ref.run(50);
  double sum = 0.0, max_t = 0.0;
  for (float v : ref.temperature()) {
    sum += v;
    max_t = std::max<double>(max_t, v);
  }
  const double mean = sum / static_cast<double>(ref.temperature().size());
  // Powered cells heat the chip; nothing explodes.
  EXPECT_GT(mean, initial_mean);
  EXPECT_LT(max_t, 200.0);
}

TEST(HotspotRef, ZeroPowerGridRelaxesTowardAmbient) {
  HotspotParams params;
  HotspotReference ref(32, /*seed=*/2, params);
  // Use a private instance trick: run many steps; with the tiny default
  // power density injected at few cells, the field must stay near ambient.
  ref.run(200);
  for (float v : ref.temperature()) {
    EXPECT_GT(v, params.amb_temp - 5.0);
    EXPECT_LT(v, params.amb_temp + 60.0);
  }
}

TEST(HotspotRef, DeterministicForSeed) {
  HotspotReference a(32, 7), b(32, 7);
  a.run(10);
  b.run(10);
  for (std::size_t i = 0; i < a.temperature().size(); ++i)
    EXPECT_EQ(a.temperature()[i], b.temperature()[i]);
}

// --- SRAD reference ---

TEST(SradRef, DiffusionReducesSpeckleVariance) {
  SradReference ref(64, /*seed=*/3);
  const double v0 = ref.image_variance();
  ref.run(30);
  EXPECT_LT(ref.image_variance(), v0 * 0.8);
}

TEST(SradRef, ImagePositivityAndCoefficientRange) {
  SradReference ref(64, /*seed=*/4);
  ref.run(10);
  for (float v : ref.image()) EXPECT_GT(v, 0.0f);
  for (float c : ref.coefficients()) {
    EXPECT_GE(c, 0.0f);
    EXPECT_LE(c, 1.0f);
  }
}

TEST(SradRef, MeanRoughlyPreserved) {
  // Diffusion redistributes intensity; the mean should drift only mildly.
  SradReference ref(64, /*seed=*/5);
  const double m0 = ref.image_mean();
  ref.run(20);
  EXPECT_NEAR(ref.image_mean(), m0, m0 * 0.25);
}

// --- CFD reference ---

TEST(CfdRef, DensityStaysPositive) {
  CfdReference ref(256, /*seed=*/6);
  ref.run(20);
  for (float rho : ref.variable(0)) EXPECT_GT(rho, 0.0f);
}

TEST(CfdRef, MassApproximatelyConserved) {
  CfdReference ref(512, /*seed=*/7);
  const double m0 = ref.total_density();
  ref.run(10);
  EXPECT_NEAR(ref.total_density(), m0, std::abs(m0) * 0.01);
}

TEST(CfdRef, NeighborsAreValidAndSymmetricRing) {
  CfdReference ref(64, /*seed=*/8);
  for (std::int64_t i = 0; i < ref.size(); ++i) {
    const auto nbrs = ref.neighbors_of(i);
    ASSERT_EQ(nbrs.size(), static_cast<std::size_t>(kCfdNeighbors));
    for (std::int32_t nb : nbrs) {
      EXPECT_GE(nb, 0);
      EXPECT_LT(nb, ref.size());
      EXPECT_NE(nb, i);
    }
  }
}

TEST(CfdRef, PerturbationsDiffuseAcrossNeighbors) {
  CfdReference ref(128, /*seed=*/9);
  // Variance of density decreases under the exchange scheme.
  auto variance = [&] {
    const auto rho = ref.variable(0);
    double mean = 0.0;
    for (float v : rho) mean += v;
    mean /= static_cast<double>(rho.size());
    double var = 0.0;
    for (float v : rho) var += (v - mean) * (v - mean);
    return var / static_cast<double>(rho.size());
  };
  const double v0 = variance();
  ref.run(20);
  EXPECT_LT(variance(), v0);
}

// --- Stassuij reference ---

TEST(CsrSynthesis, StructureIsValid) {
  const CsrMatrix m = make_synthetic_csr(132, 8, /*seed=*/10);
  EXPECT_EQ(m.rows, 132);
  EXPECT_EQ(m.row_ptr.size(), 133u);
  EXPECT_EQ(m.row_ptr.front(), 0);
  EXPECT_EQ(m.nnz(), m.row_ptr.back());
  for (std::int64_t i = 0; i < m.rows; ++i) {
    EXPECT_EQ(m.row_ptr[i + 1] - m.row_ptr[i], 8);  // exactly 8 per row
    bool has_diagonal = false;
    for (std::int32_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
      EXPECT_GE(m.col_idx[k], 0);
      EXPECT_LT(m.col_idx[k], m.cols);
      if (k > m.row_ptr[i]) {
        EXPECT_GT(m.col_idx[k], m.col_idx[k - 1]);
      }
      if (m.col_idx[k] == i) has_diagonal = true;
    }
    EXPECT_TRUE(has_diagonal);
  }
}

TEST(StassuijRef, MatchesNaiveDenseMultiply) {
  StassuijConfig config;
  config.rows = 24;
  config.dense_cols = 16;
  config.nnz_per_row = 4;
  StassuijReference ref(config, /*seed=*/11);

  // Naive: dense A from CSR, C0 + A*B.
  const CsrMatrix& a = ref.a();
  std::vector<std::complex<double>> expected(ref.c().begin(), ref.c().end());
  for (std::int64_t i = 0; i < config.rows; ++i)
    for (std::int32_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      for (std::int64_t j = 0; j < config.dense_cols; ++j)
        expected[i * config.dense_cols + j] +=
            a.values[k] * ref.b()[a.col_idx[k] * config.dense_cols + j];

  ref.multiply();
  for (std::size_t idx = 0; idx < expected.size(); ++idx) {
    EXPECT_NEAR(ref.c()[idx].real(), expected[idx].real(), 1e-9);
    EXPECT_NEAR(ref.c()[idx].imag(), expected[idx].imag(), 1e-9);
  }
}

TEST(StassuijRef, ResetRestoresAccumulator) {
  StassuijReference ref({.rows = 16, .dense_cols = 8, .nnz_per_row = 3},
                        /*seed=*/12);
  const std::complex<double> before = ref.c()[0];
  ref.multiply();
  ref.reset();
  EXPECT_EQ(ref.c()[0], before);
}

// --- the PaperSuite lookup indexes (find_workload / find_data_size) ---

std::string usage_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const UsageError& e) {
    return e.what();
  }
  return "";
}

TEST(SuiteLookup, SuiteFindMatchesLegacyScan) {
  const PaperSuite& suite = PaperSuite::instance();
  for (const auto& workload : suite.all()) {
    // The indexed lookup and the generic scan resolve to the same object.
    EXPECT_EQ(&find_workload(suite.all(), workload->name()), workload.get());
    EXPECT_EQ(&suite.find(workload->name()), workload.get());
    for (const DataSize& size : workload->paper_data_sizes()) {
      const DataSize found = find_data_size(*workload, size.label);
      EXPECT_EQ(found.label, size.label);
      EXPECT_EQ(found.param, size.param);
    }
  }
}

TEST(SuiteLookup, ErrorMessagesAreByteIdenticalToTheLegacyScan) {
  const PaperSuite& suite = PaperSuite::instance();
  // A caller-built list takes the legacy linear-scan path; the suite list
  // takes the index. Unknown names must produce the same bytes.
  const auto legacy_list = paper_workloads();
  const std::string legacy_name = usage_message(
      [&] { find_workload(legacy_list, "NoSuchApp"); });
  const std::string suite_name = usage_message(
      [&] { find_workload(suite.all(), "NoSuchApp"); });
  ASSERT_FALSE(legacy_name.empty());
  EXPECT_EQ(suite_name, legacy_name);
  EXPECT_EQ(legacy_name,
            "unknown workload 'NoSuchApp' "
            "(valid: CFD, HotSpot, SRAD, Stassuij)");

  // Same for data-size labels: a foreign (non-suite) workload instance
  // scans linearly, a suite instance uses the label index.
  const auto foreign = make_hotspot();
  const std::string legacy_size = usage_message(
      [&] { find_data_size(*foreign, "nonsense"); });
  const std::string suite_size = usage_message(
      [&] { find_data_size(suite.find("HotSpot"), "nonsense"); });
  ASSERT_FALSE(legacy_size.empty());
  EXPECT_EQ(suite_size, legacy_size);
}

TEST(SuiteLookup, ForeignWorkloadsStillResolveThroughTheFallback) {
  const auto own = paper_workloads();  // a list the suite does not own
  EXPECT_EQ(find_workload(own, "SRAD").name(), "SRAD");
  const DataSize size = find_data_size(*own[1], "64 x 64");
  EXPECT_EQ(size.param, 64);
  EXPECT_EQ(PaperSuite::instance().try_find_size(*own[1], "64 x 64", nullptr),
            nullptr);  // pointer identity: not a suite instance
}

}  // namespace
}  // namespace grophecy::workloads
