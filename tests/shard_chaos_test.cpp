// The chaos gate for the process-sharded sweep (ISSUE 7 acceptance
// criterion): a sweep sharded across >= 4 workers, with random SIGKILLs
// and one poison job, must complete with every non-poison job ok, the
// poison job quarantined as a structured failure, and the merged journal
// byte-identical (modulo the poison record) to an unfaulted
// single-process run of the same grid. And when the *supervisor* itself
// is SIGKILLed mid-sweep, a re-run must recover every record the dead
// workers had made durable and re-run only the missing jobs.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "exec/journal.h"
#include "exec/shard/supervisor.h"
#include "exec/sweep.h"

namespace grophecy::exec {
namespace {

namespace fs = std::filesystem;

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("grophecy_shard_chaos_" + name + "_" +
                std::to_string(::getpid())))
                  .string()) {
    cleanup();
  }
  ~TempPath() { cleanup(); }
  const std::string& path() const { return path_; }

 private:
  void cleanup() {
    std::remove(path_.c_str());
    for (const std::string& shard : shard::existing_shard_paths(path_))
      std::remove(shard.c_str());
  }
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

core::ProjectionReport fake_report(const JobSpec& spec) {
  core::ProjectionReport report;
  report.app_name = spec.workload + " " + spec.size_label;
  report.machine_name = "fake";
  report.iterations = spec.iterations;
  report.predicted_kernel_s = 0.010 + 0.001 * spec.iterations;
  report.measured_kernel_s = 0.011;
  report.predicted_transfer_s = 0.020;
  report.measured_transfer_s = 0.019;
  report.measured_cpu_s = 0.300;
  return report;
}

bool first_time(const std::string& marker) {
  if (::access(marker.c_str(), F_OK) == 0) return false;
  std::FILE* file = std::fopen(marker.c_str(), "w");
  if (file) std::fclose(file);
  return true;
}

/// Drops every line whose payload mentions `fingerprint`.
std::string strip_lines_mentioning(const std::string& text,
                                   const std::string& needle) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line))
    if (line.find(needle) == std::string::npos) out += line + "\n";
  return out;
}

TEST(ShardChaos, RandomKillsPlusPoisonStillConverge) {
  TempPath chaos("converge");
  TempPath reference("converge_ref");
  TempPath markers("converge_markers");

  // 12 jobs; three of them SIGKILL their worker exactly once (scattered
  // across the grid so several shards get hit) and one is poison —
  // SIGKILL every time, forever.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 12; ++i)
    jobs.push_back({"W", "size" + std::to_string(i), 1});
  const JobSpec poison = jobs[5];
  const auto chaotic = [&](const JobSpec& spec) {
    if (spec.size_label == poison.size_label) ::raise(SIGKILL);
    if (spec.size_label == "size1" || spec.size_label == "size6" ||
        spec.size_label == "size10") {
      if (first_time(markers.path() + "." + spec.fingerprint()))
        ::raise(SIGKILL);
    }
    return fake_report(spec);
  };

  SweepOptions options;
  options.shards = 4;  // The acceptance gate requires >= 4.
  options.journal_path = chaos.path();
  options.record_wall_time = false;
  options.heartbeat_timeout_s = 20.0;
  SweepEngine engine(options);
  const SweepSummary summary = engine.run(jobs, chaotic);
  for (const JobSpec& spec : jobs)
    std::remove((markers.path() + "." + spec.fingerprint()).c_str());

  // Every non-poison job completed; the poison job is a structured
  // quarantine, not a crash and not a silent drop.
  EXPECT_EQ(summary.ok, 11);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.quarantined, 1);
  EXPECT_EQ(summary.worker_deaths, 5);  // 3 kill-once + 2 poison strikes.
  EXPECT_GE(summary.worker_respawns, 3);
  const JobOutcome* outcome = summary.find(poison);
  ASSERT_NE(outcome, nullptr);
  ASSERT_TRUE(outcome->error.has_value());
  EXPECT_EQ(outcome->error->kind, ErrorKind::kWorkerDeath);
  EXPECT_NE(outcome->error->message.find("quarantined as poison"),
            std::string::npos);

  // The unfaulted single-process reference run of the same grid.
  SweepOptions reference_options;
  reference_options.workers = 1;
  reference_options.journal_path = reference.path();
  reference_options.record_wall_time = false;
  SweepEngine reference_engine(reference_options);
  const SweepSummary reference_summary =
      reference_engine.run(jobs, fake_report);
  EXPECT_EQ(reference_summary.ok, 12);

  // Byte-identical modulo the poison record: strip the poison
  // fingerprint's line from both journals, the rest must match exactly.
  const std::string fp = poison.fingerprint();
  EXPECT_EQ(strip_lines_mentioning(read_file(chaos.path()), fp),
            strip_lines_mentioning(read_file(reference.path()), fp));
  EXPECT_TRUE(shard::existing_shard_paths(chaos.path()).empty());

  // Same for the human-readable summaries, modulo the poison job: strip
  // its per-job line (keyed by JobSpec::key) and the "sweep:" header
  // whose ok/failed/attempt tallies legitimately differ by that one job.
  EXPECT_EQ(strip_lines_mentioning(
                strip_lines_mentioning(summary.describe(), poison.key()),
                "sweep:"),
            strip_lines_mentioning(
                strip_lines_mentioning(reference_summary.describe(),
                                       poison.key()),
                "sweep:"));
}

TEST(ShardChaos, ResumeAfterSupervisorKillRerunsOnlyMissingJobs) {
  TempPath journal("resume");
  TempPath markers("resume_markers");

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i)
    jobs.push_back({"W", "size" + std::to_string(i), 1});

  // Phase 1: a child process runs the sharded sweep with deliberately
  // slow jobs; the parent SIGKILLs it (supervisor, workers, everything —
  // the child is its own process group leader) once at least two records
  // are durable in the shard journals.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::setpgid(0, 0);
    SweepOptions options;
    options.shards = 4;
    options.journal_path = journal.path();
    options.record_wall_time = false;
    SweepEngine engine(options);
    engine.run(jobs, [](const JobSpec& spec) {
      ::usleep(50 * 1000);  // Slow enough for the parent to strike first.
      return fake_report(spec);
    });
    ::_exit(0);
  }

  const auto durable_records = [&]() {
    std::size_t count = 0;
    for (const std::string& shard : shard::existing_shard_paths(journal.path()))
      count += ResultJournal::read(shard).records.size();
    return count;
  };
  std::size_t durable_before_kill = 0;
  for (int tries = 0; tries < 2000; ++tries) {  // 10 s ceiling.
    durable_before_kill = durable_records();
    if (durable_before_kill >= 2) break;
    ::usleep(5 * 1000);
  }
  ::kill(-child, SIGKILL);  // The whole process group, supervisor included.
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  ::usleep(200 * 1000);  // Let any straggler worker finish its append.
  durable_before_kill = durable_records();
  ASSERT_GE(durable_before_kill, 2u) << "supervisor died before any work";

  // Phase 2: re-run the same sweep in this process. The job function now
  // tattles: every *execution* appends a byte to the job's marker file,
  // so "re-ran only the missing jobs" is directly observable.
  SweepOptions options;
  options.shards = 4;
  options.journal_path = journal.path();
  options.record_wall_time = false;
  SweepEngine engine(options);
  const SweepSummary summary = engine.run(jobs, [&](const JobSpec& spec) {
    std::FILE* file =
        std::fopen((markers.path() + "." + spec.fingerprint()).c_str(), "a");
    if (file) {
      std::fputc('x', file);
      std::fclose(file);
    }
    return fake_report(spec);
  });

  EXPECT_EQ(summary.failed, 0);
  EXPECT_EQ(summary.ok + summary.resumed, 8);
  // Every record that was durable when the supervisor died was recovered
  // from the shards (or the canonical journal), not re-executed.
  EXPECT_GE(static_cast<std::size_t>(summary.resumed), durable_before_kill);
  EXPECT_EQ(static_cast<std::size_t>(summary.ok),
            8 - static_cast<std::size_t>(summary.resumed));
  // And no job ran twice in the recovery sweep.
  for (const JobSpec& spec : jobs) {
    const std::string marker = markers.path() + "." + spec.fingerprint();
    if (::access(marker.c_str(), F_OK) == 0) {
      EXPECT_EQ(fs::file_size(marker), 1u) << spec.key() << " ran twice";
      std::remove(marker.c_str());
    }
  }
  EXPECT_TRUE(shard::existing_shard_paths(journal.path()).empty());

  // Third run: everything resumes, nothing executes.
  SweepEngine third(options);
  const SweepSummary final_summary = third.run(jobs, fake_report);
  EXPECT_EQ(final_summary.resumed, 8);
  EXPECT_EQ(final_summary.ok, 0);
}

}  // namespace
}  // namespace grophecy::exec
