// Tests for BRS extraction from skeletons (subscript ranges, clamping,
// indirection widening), SectionSet coverage, and kernel footprints.
#include <gtest/gtest.h>

#include "brs/extract.h"
#include "brs/footprint.h"
#include "brs/section_set.h"
#include "skeleton/builder.h"

namespace grophecy::brs {
namespace {

using skeleton::AffineExpr;
using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ArrayId;
using skeleton::ElemType;
using skeleton::KernelBuilder;

TEST(Extract, StencilNeighborClampsToArrayBounds) {
  AppBuilder builder("s");
  const ArrayId a = builder.array("a", ElemType::kF32, {16, 16});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 16).parallel_loop("j", 16);
  k.statement(1.0).load(a, {k.var("i").shifted(-1), k.var("j")});
  const AppSkeleton app = builder.build();

  const Section s = access_section(
      app, app.kernels[0], app.kernels[0].body[0].refs[0]);
  EXPECT_EQ(s.dims[0].lower, 0);   // clamped from -1
  EXPECT_EQ(s.dims[0].upper, 14);  // i-1 max
  EXPECT_EQ(s.dims[1].lower, 0);
  EXPECT_EQ(s.dims[1].upper, 15);
  EXPECT_TRUE(s.exact);
}

TEST(Extract, StridedSubscriptYieldsStridedSection) {
  AppBuilder builder("s");
  const ArrayId a = builder.array("a", ElemType::kF32, {64});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 16);
  k.statement(1.0).load(a, {k.var("i", 4, 1)});  // a[4i + 1]
  const AppSkeleton app = builder.build();

  const Section s = access_section(
      app, app.kernels[0], app.kernels[0].body[0].refs[0]);
  EXPECT_EQ(s.dims[0].lower, 1);
  EXPECT_EQ(s.dims[0].upper, 61);
  EXPECT_EQ(s.dims[0].stride, 4);
  EXPECT_EQ(s.element_count(), 16);
  EXPECT_TRUE(s.exact);
}

TEST(Extract, LinearizedTwoLoopSubscriptIsConservative) {
  AppBuilder builder("s");
  const ArrayId a = builder.array("a", ElemType::kF32, {256});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 16).parallel_loop("j", 16);
  // a[16*i + j]: dense coverage, but two varying loops in one dim.
  AffineExpr e = AffineExpr::make_var(k.loop_id("i"), 16);
  e.terms.emplace_back(k.loop_id("j"), 1);
  k.statement(1.0).load(a, {e});
  const AppSkeleton app = builder.build();

  const Section s = access_section(
      app, app.kernels[0], app.kernels[0].body[0].refs[0]);
  EXPECT_EQ(s.dims[0].lower, 0);
  EXPECT_EQ(s.dims[0].upper, 255);
  EXPECT_FALSE(s.exact);  // enclosing approximation, gcd stride 1
  EXPECT_EQ(s.dims[0].stride, 1);
}

TEST(Extract, FullyIndirectAndSparseGetWholeArray) {
  AppBuilder builder("s");
  const ArrayId dense = builder.array("d", ElemType::kF32, {128});
  const ArrayId sparse = builder.array("sp", ElemType::kF64, {99}, true);
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0).load_indirect(dense);
  k.statement(1.0).load(sparse, {AffineExpr::make_constant(0)});
  const AppSkeleton app = builder.build();

  const Section s0 = access_section(
      app, app.kernels[0], app.kernels[0].body[0].refs[0]);
  EXPECT_TRUE(s0.whole_array);
  EXPECT_FALSE(s0.exact);
  EXPECT_EQ(s0.element_count(), 128);

  const Section s1 = access_section(
      app, app.kernels[0], app.kernels[0].body[1].refs[0]);
  EXPECT_TRUE(s1.whole_array);
  EXPECT_EQ(s1.element_count(), 99);
}

TEST(Extract, GatherWidensOnlyIndirectDims) {
  AppBuilder builder("s");
  const ArrayId b = builder.array("B", ElemType::kComplexF64, {32, 64});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 32).parallel_loop("j", 64).loop("kk", 4);
  k.statement(1.0);
  k.load_gather(b, {AffineExpr::make_constant(0), k.var("j")},
                /*indirect_dims=*/{0}, /*dep_loops=*/{"i", "kk"});
  const AppSkeleton app = builder.build();

  const Section s = access_section(
      app, app.kernels[0], app.kernels[0].body[0].refs[0]);
  EXPECT_EQ(s.dims[0].lower, 0);
  EXPECT_EQ(s.dims[0].upper, 31);  // full extent (hidden row index)
  EXPECT_EQ(s.dims[1].lower, 0);
  EXPECT_EQ(s.dims[1].upper, 63);  // affine j range
  EXPECT_FALSE(s.exact);
}

TEST(Extract, KernelAccessesPreserveProgramOrder) {
  AppBuilder builder("s");
  const ArrayId a = builder.array("a", ElemType::kF32, {8});
  const ArrayId b = builder.array("b", ElemType::kF32, {8});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0).load(a, {k.var("i")}).store(b, {k.var("i")});
  const AppSkeleton app = builder.build();

  const auto accesses = kernel_accesses(app, app.kernels[0]);
  ASSERT_EQ(accesses.size(), 2u);
  EXPECT_EQ(accesses[0].kind, skeleton::RefKind::kLoad);
  EXPECT_EQ(accesses[1].kind, skeleton::RefKind::kStore);
  EXPECT_EQ(accesses[0].section.array, a);
  EXPECT_EQ(accesses[1].section.array, b);
}

TEST(SectionSet, CoversSingleMemberAndExactUnion) {
  skeleton::ArrayDecl decl{"a", ElemType::kF32, {100}, false};
  auto section = [&](std::int64_t lo, std::int64_t hi) {
    Section s = Section::whole(0, decl);
    s.whole_array = false;
    s.dims[0] = DimSection::range(lo, hi);
    return s;
  };

  SectionSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.covers(section(0, 0)));

  set.add(section(0, 49));
  set.add(section(50, 99));  // merges exactly into [0,99]
  EXPECT_EQ(set.sections().size(), 1u);
  EXPECT_TRUE(set.covers(section(10, 80)));
  EXPECT_EQ(set.bounding_union().element_count(), 100);
}

TEST(SectionSet, DisjointPiecesDoNotFalselyCoverTheGap) {
  skeleton::ArrayDecl decl{"a", ElemType::kF32, {100}, false};
  auto section = [&](std::int64_t lo, std::int64_t hi) {
    Section s = Section::whole(0, decl);
    s.whole_array = false;
    s.dims[0] = DimSection::range(lo, hi);
    return s;
  };

  SectionSet set;
  set.add(section(0, 9));
  set.add(section(90, 99));
  EXPECT_EQ(set.sections().size(), 2u);
  EXPECT_TRUE(set.covers(section(0, 5)));
  EXPECT_TRUE(set.covers(section(92, 99)));
  EXPECT_FALSE(set.covers(section(40, 50)));  // the gap
  // The bounding union exists but is inexact.
  EXPECT_FALSE(set.bounding_union().exact);
}

TEST(Footprint, CountsUniqueAndDynamicTraffic) {
  AppBuilder builder("f");
  const ArrayId a = builder.array("a", ElemType::kF32, {64});
  const ArrayId b = builder.array("b", ElemType::kF32, {64});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 64);
  // Two loads of a (same section), one store of b, 3 flops, 1 special.
  k.statement(3.0, 1.0)
      .load(a, {k.var("i")})
      .load(a, {k.var("i")})
      .store(b, {k.var("i")});
  const AppSkeleton app = builder.build();

  const KernelFootprint fp = kernel_footprint(app, app.kernels[0]);
  EXPECT_EQ(fp.unique_bytes_read, 256u);     // 64 floats, not 128
  EXPECT_EQ(fp.unique_bytes_written, 256u);
  EXPECT_EQ(fp.dynamic_loads, 128u);
  EXPECT_EQ(fp.dynamic_stores, 64u);
  EXPECT_EQ(fp.dynamic_load_bytes, 512u);
  EXPECT_EQ(fp.dynamic_indirect_loads, 0u);
  EXPECT_DOUBLE_EQ(fp.flops, 192.0);
  EXPECT_DOUBLE_EQ(fp.special_ops, 64.0);
}

TEST(Footprint, TracksIndirectLoads) {
  AppBuilder builder("f");
  const ArrayId a = builder.array("a", ElemType::kF32, {64});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 32);
  k.statement(1.0).load_indirect(a);
  const AppSkeleton app = builder.build();
  const KernelFootprint fp = kernel_footprint(app, app.kernels[0]);
  EXPECT_EQ(fp.dynamic_indirect_loads, 32u);
  EXPECT_EQ(fp.unique_bytes_read, 256u);  // whole array, conservatively
}

}  // namespace
}  // namespace grophecy::brs
