// Tests for the .gmach machine-description format: parsing, base seeding,
// overrides, error reporting, serialization round trips, and end-to-end
// use (calibrating and projecting against a user-defined machine).
#include <gtest/gtest.h>

#include <fstream>

#include "core/grophecy.h"
#include "hw/machine_file.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "skeleton/builder.h"

namespace grophecy::hw {
namespace {

TEST(MachineFile, DefaultsToThePaperTestbed) {
  const MachineSpec machine = parse_machine("name just_renamed\n");
  EXPECT_EQ(machine.name, "just_renamed");
  EXPECT_EQ(machine.gpu.name, anl_eureka().gpu.name);
  EXPECT_DOUBLE_EQ(machine.pcie.pinned_h2d.asymptotic_gbps,
                   anl_eureka().pcie.pinned_h2d.asymptotic_gbps);
}

TEST(MachineFile, BaseAndOverrides) {
  const MachineSpec machine = parse_machine(R"(
# my workstation
base pcie3_kepler
name my_workstation
cpu.threads 24
gpu.num_sms 46
gpu.mem_bandwidth_gbps 448
pcie.pinned_h2d.asymptotic_gbps 12.3
alloc.pinned_base_s 25e-6
)");
  EXPECT_EQ(machine.name, "my_workstation");
  EXPECT_EQ(machine.cpu.threads, 24);
  EXPECT_EQ(machine.gpu.num_sms, 46);
  EXPECT_DOUBLE_EQ(machine.gpu.mem_bandwidth_gbps, 448.0);
  EXPECT_DOUBLE_EQ(machine.pcie.pinned_h2d.asymptotic_gbps, 12.3);
  EXPECT_DOUBLE_EQ(machine.alloc.pinned_base_s, 25e-6);
  // Unlisted fields come from the base.
  EXPECT_EQ(machine.gpu.max_threads_per_sm,
            pcie3_kepler().gpu.max_threads_per_sm);
}

TEST(MachineFile, NamesMayContainSpaces) {
  const MachineSpec machine =
      parse_machine("cpu.name AMD EPYC 7763 64-Core\n");
  EXPECT_EQ(machine.cpu.name, "AMD EPYC 7763 64-Core");
}

TEST(MachineFile, ErrorsCarryLineNumbers) {
  try {
    parse_machine("name x\ngpu.frobs 3\n");
    FAIL() << "expected MachineParseError";
  } catch (const MachineParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("unknown field"),
              std::string::npos);
  }
  EXPECT_THROW(parse_machine("gpu.num_sms not_a_number\n"),
               MachineParseError);
  EXPECT_THROW(parse_machine("name x\nbase anl_eureka\n"),
               MachineParseError);  // base must come first
  EXPECT_THROW(parse_machine("base no_such_machine\n"), MachineParseError);
  EXPECT_THROW(parse_machine(""), MachineParseError);
  EXPECT_THROW(parse_machine_file("/no/such/file.gmach"),
               MachineParseError);
}

TEST(MachineFile, ErrorsAreTypedParseErrors) {
  // MachineParseError slots into the framework taxonomy: catchable as
  // grophecy::ParseError and as grophecy::Error with kind kParse.
  try {
    parse_machine("gpu.frobs 3\n");
    FAIL() << "expected an error";
  } catch (const grophecy::Error& e) {
    EXPECT_EQ(e.kind(), grophecy::ErrorKind::kParse);
    EXPECT_FALSE(e.retryable());
  }
  try {
    parse_machine("gpu.num_sms nope\n");
    FAIL() << "expected an error";
  } catch (const grophecy::ParseError& e) {
    EXPECT_TRUE(e.file().empty());  // in-memory document, no file
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(e.message().find("expected number"), std::string::npos);
  }
}

TEST(MachineFile, OutOfRangeValuesAreParseErrors) {
  EXPECT_THROW(parse_machine("cpu.clock_ghz 1e999\n"), MachineParseError);
  EXPECT_THROW(parse_machine("cpu.clock_ghz 3..2\n"), MachineParseError);
}

TEST(MachineFile, FileErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "bad_machine.gmach";
  {
    std::ofstream out(path);
    out << "name ok_so_far\ngpu.frobs 3\n";
  }
  try {
    parse_machine_file(path);
    FAIL() << "expected MachineParseError";
  } catch (const MachineParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  // Unreadable files carry the path too, with no line number.
  try {
    parse_machine_file("/no/such/file.gmach");
    FAIL() << "expected MachineParseError";
  } catch (const MachineParseError& e) {
    EXPECT_EQ(e.file(), "/no/such/file.gmach");
    EXPECT_EQ(e.line(), 0);
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(MachineFile, SerializeRoundTripsEveryRegisteredMachine) {
  for (const MachineSpec& machine : all_machines()) {
    const std::string text = serialize_machine(machine);
    const MachineSpec reparsed = parse_machine(text);
    // Textual fixed point implies field-for-field equality.
    EXPECT_EQ(serialize_machine(reparsed), text) << machine.name;
    EXPECT_EQ(reparsed.name, machine.name);
    EXPECT_DOUBLE_EQ(reparsed.gpu.mem_bandwidth_gbps,
                     machine.gpu.mem_bandwidth_gbps);
  }
}

TEST(MachineFile, FieldInventoryCoversEverySubsystem) {
  const auto names = machine_field_names();
  EXPECT_GT(names.size(), 55u);
  int cpu = 0, gpu = 0, pcie = 0, alloc = 0;
  for (const std::string& name : names) {
    if (name.rfind("cpu.", 0) == 0) ++cpu;
    if (name.rfind("gpu.", 0) == 0) ++gpu;
    if (name.rfind("pcie.", 0) == 0) ++pcie;
    if (name.rfind("alloc.", 0) == 0) ++alloc;
  }
  EXPECT_GE(cpu, 10);
  EXPECT_GE(gpu, 20);
  EXPECT_GE(pcie, 25);
  EXPECT_GE(alloc, 7);
}

TEST(MachineFile, UserMachineDrivesTheFullPipeline) {
  // A faster bus defined purely in text: calibration must pick it up and
  // shrink projected transfers accordingly.
  const MachineSpec fast = parse_machine(R"(
name fast_bus
pcie.pinned_h2d.asymptotic_gbps 25.0
pcie.pinned_d2h.asymptotic_gbps 24.0
)");
  core::Grophecy stock_engine{anl_eureka()};
  core::Grophecy fast_engine{fast};
  EXPECT_NEAR(fast_engine.bus_model().h2d.bandwidth_gbps(), 25.0, 1.0);

  skeleton::AppBuilder builder("copy");
  const auto a = builder.array("a", skeleton::ElemType::kF32, {1 << 22});
  const auto b = builder.array("b", skeleton::ElemType::kF32, {1 << 22});
  skeleton::KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 1 << 22);
  k.statement(1.0).load(a, {k.var("i")}).store(b, {k.var("i")});
  const skeleton::AppSkeleton app = builder.build();

  const double stock = stock_engine.project(app).predicted_transfer_s;
  const double quick = fast_engine.project(app).predicted_transfer_s;
  EXPECT_NEAR(stock / quick, 10.0, 2.0);
}

}  // namespace
}  // namespace grophecy::hw
