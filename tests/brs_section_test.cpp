// Unit + property tests for the Bounded Regular Section algebra.
//
// The property suite checks INTERSECT/UNION/contains against brute-force
// element enumeration over randomly generated small sections, so the CRT
// intersection and exactness tracking are verified exhaustively rather
// than by example.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "brs/section.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace grophecy::brs {
namespace {

using skeleton::ArrayDecl;
using skeleton::ElemType;

std::set<std::int64_t> enumerate(const DimSection& s) {
  std::set<std::int64_t> out;
  if (s.is_empty()) return out;
  for (std::int64_t v = s.lower; v <= s.upper; v += s.stride) out.insert(v);
  return out;
}

TEST(DimSection, PointAndRangeBasics) {
  const DimSection p = DimSection::point(5);
  EXPECT_EQ(p.count(), 1);
  EXPECT_TRUE(p.contains_value(5));
  EXPECT_FALSE(p.contains_value(4));

  const DimSection r = DimSection::range(0, 10, 2);
  EXPECT_EQ(r.count(), 6);
  EXPECT_TRUE(r.contains_value(8));
  EXPECT_FALSE(r.contains_value(7));
  EXPECT_FALSE(r.contains_value(12));
}

TEST(DimSection, RangeNormalizesUpperToMember) {
  const DimSection r = DimSection::range(0, 9, 2);  // {0,2,4,6,8}
  EXPECT_EQ(r.upper, 8);
  EXPECT_EQ(r.count(), 5);
}

TEST(DimSection, EmptyBehaves) {
  const DimSection e = DimSection::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.count(), 0);
  EXPECT_FALSE(e.contains_value(0));
}

TEST(DimSection, IntersectDisjointStridePhases) {
  // Evens vs odds never meet.
  const DimSection evens = DimSection::range(0, 100, 2);
  const DimSection odds = DimSection::range(1, 101, 2);
  EXPECT_TRUE(intersect(evens, odds).is_empty());
}

TEST(DimSection, IntersectCrtCase) {
  // {0,3,6,...} and {0,5,10,...} intersect at multiples of 15.
  const DimSection threes = DimSection::range(0, 100, 3);
  const DimSection fives = DimSection::range(0, 100, 5);
  const DimSection both = intersect(threes, fives);
  EXPECT_EQ(both.lower, 0);
  EXPECT_EQ(both.stride, 15);
  EXPECT_EQ(both.count(), 7);  // 0,15,...,90
}

TEST(DimSection, UnionMergesAdjacentSameStride) {
  const DimSection a = DimSection::range(0, 4);
  const DimSection b = DimSection::range(5, 9);
  EXPECT_TRUE(union_is_exact(a, b));
  const DimSection u = unite(a, b);
  EXPECT_EQ(u, DimSection::range(0, 9));
}

TEST(DimSection, UnionDetectsInexactGap) {
  const DimSection a = DimSection::range(0, 4);
  const DimSection b = DimSection::range(10, 14);
  EXPECT_FALSE(union_is_exact(a, b));
}

TEST(DimSection, ContainsRequiresPhaseAndStride) {
  const DimSection outer = DimSection::range(0, 100, 2);
  EXPECT_TRUE(contains(outer, DimSection::range(10, 20, 2)));
  EXPECT_TRUE(contains(outer, DimSection::range(0, 100, 4)));
  EXPECT_FALSE(contains(outer, DimSection::range(1, 21, 2)));   // phase
  EXPECT_FALSE(contains(outer, DimSection::range(10, 21, 3)));  // stride
  EXPECT_TRUE(contains(outer, DimSection::point(42)));
  EXPECT_FALSE(contains(outer, DimSection::point(43)));
}

/// Property suite over random sections, brute-force checked.
class SectionAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(SectionAlgebraProperty, IntersectIsExactSetIntersection) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const DimSection a = DimSection::range(rng.uniform_int(-20, 20),
                                           rng.uniform_int(-20, 60),
                                           rng.uniform_int(1, 7));
    const DimSection b = DimSection::range(rng.uniform_int(-20, 20),
                                           rng.uniform_int(-20, 60),
                                           rng.uniform_int(1, 7));
    const DimSection isect = intersect(a, b);

    std::set<std::int64_t> expected;
    for (std::int64_t v : enumerate(a))
      if (enumerate(b).count(v)) expected.insert(v);
    EXPECT_EQ(enumerate(isect), expected)
        << "a=[" << a.lower << ':' << a.upper << ':' << a.stride << "] b=["
        << b.lower << ':' << b.upper << ':' << b.stride << ']';
  }
}

TEST_P(SectionAlgebraProperty, UnionEnclosesAndExactnessIsHonest) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int trial = 0; trial < 200; ++trial) {
    const DimSection a = DimSection::range(rng.uniform_int(-20, 20),
                                           rng.uniform_int(-20, 60),
                                           rng.uniform_int(1, 7));
    const DimSection b = DimSection::range(rng.uniform_int(-20, 20),
                                           rng.uniform_int(-20, 60),
                                           rng.uniform_int(1, 7));
    const DimSection u = unite(a, b);

    const auto set_a = enumerate(a);
    const auto set_b = enumerate(b);
    const auto set_u = enumerate(u);
    // The union must enclose both operands.
    for (std::int64_t v : set_a) EXPECT_TRUE(set_u.count(v));
    for (std::int64_t v : set_b) EXPECT_TRUE(set_u.count(v));
    // Exactness must match the set sizes exactly.
    std::set<std::int64_t> exact_union = set_a;
    exact_union.insert(set_b.begin(), set_b.end());
    EXPECT_EQ(union_is_exact(a, b), set_u == exact_union);
  }
}

TEST_P(SectionAlgebraProperty, ContainsNeverLies) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  for (int trial = 0; trial < 200; ++trial) {
    const DimSection outer = DimSection::range(rng.uniform_int(-10, 10),
                                               rng.uniform_int(-10, 50),
                                               rng.uniform_int(1, 6));
    const DimSection inner = DimSection::range(rng.uniform_int(-10, 10),
                                               rng.uniform_int(-10, 50),
                                               rng.uniform_int(1, 6));
    if (!contains(outer, inner)) continue;
    // Claimed containment must hold for every element.
    const auto outer_set = enumerate(outer);
    for (std::int64_t v : enumerate(inner)) EXPECT_TRUE(outer_set.count(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SectionAlgebraProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Section, WholeArrayCoversEverything) {
  ArrayDecl decl{"a", ElemType::kF32, {8, 16}, false};
  const Section whole = Section::whole(0, decl);
  EXPECT_TRUE(whole.whole_array);
  EXPECT_EQ(whole.element_count(), 128);
  EXPECT_EQ(whole.bytes(decl), 512u);

  Section part = whole;
  part.whole_array = false;
  part.dims[0] = DimSection::range(2, 5);
  part.dims[1] = DimSection::range(0, 7);
  EXPECT_TRUE(contains(whole, part));
  EXPECT_FALSE(contains(part, whole));
}

TEST(Section, IntersectReturnsNulloptWhenDisjoint) {
  ArrayDecl decl{"a", ElemType::kF32, {100}, false};
  Section left = Section::whole(0, decl);
  left.whole_array = false;
  left.dims[0] = DimSection::range(0, 10);
  Section right = left;
  right.dims[0] = DimSection::range(50, 60);
  EXPECT_FALSE(intersect(left, right).has_value());
  EXPECT_FALSE(may_overlap(left, right));
  right.dims[0] = DimSection::range(5, 60);
  EXPECT_TRUE(may_overlap(left, right));
}

TEST(Section, UniteTracksExactnessAcrossDims) {
  ArrayDecl decl{"a", ElemType::kF32, {10, 10}, false};
  Section a = Section::whole(0, decl);
  a.whole_array = false;
  a.dims[0] = DimSection::range(0, 4);
  a.dims[1] = DimSection::range(0, 9);
  Section b = a;
  b.dims[0] = DimSection::range(5, 9);
  // Differ in one dim, exact 1D union -> exact box union.
  EXPECT_TRUE(unite(a, b).exact);

  // Differ in two dims -> bounding box is an over-approximation.
  Section c = a;
  c.dims[0] = DimSection::range(5, 9);
  c.dims[1] = DimSection::range(0, 4);
  EXPECT_FALSE(unite(a, c).exact);
}

TEST(Section, InexactOuterCannotProveContainment) {
  ArrayDecl decl{"a", ElemType::kF32, {100}, false};
  Section outer = Section::whole(0, decl);
  outer.whole_array = false;
  outer.exact = false;  // over-approximation
  Section inner = outer;
  inner.exact = true;
  inner.dims[0] = DimSection::range(0, 5);
  EXPECT_FALSE(contains(outer, inner));
}

TEST(Section, MismatchedArraysRejected) {
  ArrayDecl decl{"a", ElemType::kF32, {10}, false};
  Section a = Section::whole(0, decl);
  Section b = Section::whole(1, decl);
  EXPECT_THROW(unite(a, b), ContractViolation);
  EXPECT_FALSE(may_overlap(a, b));
}

}  // namespace
}  // namespace grophecy::brs
