// Tests for the crash-safe result journal and its building blocks: CRC-32
// checksums, the flat-JSON codec, the checksummed line format, torn-write
// tolerance (the acceptance scenario: killing a sweep mid-append loses at
// most the in-flight record), and JobRecord round-tripping.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/report.h"
#include "exec/journal.h"
#include "exec/sweep.h"
#include "util/checksum.h"
#include "util/jsonl.h"

namespace grophecy::exec {
namespace {

namespace fs = std::filesystem;

/// A unique temp file path, removed when the fixture dies.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("grophecy_journal_test_" + name +
                std::to_string(::getpid()) + ".jsonl"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- CRC-32 ---

TEST(Crc32, MatchesTheStandardCheckValue) {
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32_hex("123456789"), "cbf43926");
}

TEST(Crc32, EmptyAndSensitivity) {
  EXPECT_EQ(util::crc32(""), 0u);
  EXPECT_NE(util::crc32("abc"), util::crc32("abd"));
  EXPECT_NE(util::crc32("abc"), util::crc32("acb"));
}

// --- flat JSON ---

TEST(FlatJson, RoundTripsEveryScalarType) {
  util::FlatJson object;
  object.emplace_back("name", std::string("CFD \"97K\"\n\ttab\\slash"));
  object.emplace_back("value", 3.14159265358979);
  object.emplace_back("negative", -1e-9);
  object.emplace_back("flag", true);
  object.emplace_back("off", false);

  const std::string text = util::write_flat_json(object);
  const auto parsed = util::parse_flat_json(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*util::json_string(*parsed, "name"), "CFD \"97K\"\n\ttab\\slash");
  EXPECT_EQ(*util::json_number(*parsed, "value"), 3.14159265358979);
  EXPECT_EQ(*util::json_number(*parsed, "negative"), -1e-9);
  EXPECT_EQ(*util::json_bool(*parsed, "flag"), true);
  EXPECT_EQ(*util::json_bool(*parsed, "off"), false);
}

TEST(FlatJson, RejectsMalformedInputWithoutThrowing) {
  EXPECT_FALSE(util::parse_flat_json("").has_value());
  EXPECT_FALSE(util::parse_flat_json("{").has_value());
  EXPECT_FALSE(util::parse_flat_json("{\"a\":1").has_value());
  EXPECT_FALSE(util::parse_flat_json("{\"a\":}").has_value());
  EXPECT_FALSE(util::parse_flat_json("{\"a\":nan}").has_value());
  EXPECT_FALSE(util::parse_flat_json("{\"a\":[1,2]}").has_value());  // nested
  EXPECT_FALSE(util::parse_flat_json("{\"a\":{\"b\":1}}").has_value());
  EXPECT_FALSE(util::parse_flat_json("{\"a\":1} trailing").has_value());
  EXPECT_TRUE(util::parse_flat_json("{}").has_value());
  EXPECT_TRUE(util::parse_flat_json(" {\"a\": 1 } ").has_value());
}

// --- the journal itself ---

TEST(ResultJournal, MissingFileIsAnEmptyJournal) {
  const JournalReadResult result = ResultJournal::read("/nonexistent/nope");
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.corrupt_lines, 0);
}

TEST(ResultJournal, AppendThenReadRoundTrips) {
  TempFile file("roundtrip");
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"a\":1}");
    journal.append("{\"b\":\"two\"}");
  }
  const JournalReadResult result = ResultJournal::read(file.path());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0], "{\"a\":1}");
  EXPECT_EQ(result.records[1], "{\"b\":\"two\"}");
  EXPECT_EQ(result.corrupt_lines, 0);
}

TEST(ResultJournal, ReopenAppendsAfterExistingRecords) {
  TempFile file("reopen");
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"run\":1}");
  }
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"run\":2}");
  }
  const JournalReadResult result = ResultJournal::read(file.path());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[1], "{\"run\":2}");
}

TEST(ResultJournal, TornFinalLineLosesOnlyTheInFlightRecord) {
  TempFile file("torn");
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"job\":1}");
    journal.append("{\"job\":2}");
    journal.append("{\"job\":3}");
  }
  // Simulate a crash mid-append: chop the file mid-way through the last
  // record (no trailing newline, checksum incomplete).
  const auto size = fs::file_size(file.path());
  fs::resize_file(file.path(), size - 7);

  const JournalReadResult result = ResultJournal::read(file.path());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0], "{\"job\":1}");
  EXPECT_EQ(result.records[1], "{\"job\":2}");
  EXPECT_EQ(result.corrupt_lines, 1);
}

TEST(ResultJournal, BitFlipInAnyRecordIsDetected) {
  TempFile file("bitflip");
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"job\":1}");
    journal.append("{\"job\":2}");
  }
  std::string contents;
  {
    std::ifstream in(file.path());
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip one payload character of the first record.
  const auto at = contents.find("\"job\":1");
  ASSERT_NE(at, std::string::npos);
  contents[at + 6] = '7';
  {
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents;
  }
  const JournalReadResult result = ResultJournal::read(file.path());
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0], "{\"job\":2}");
  EXPECT_EQ(result.corrupt_lines, 1);
}

// --- tail vs interior corruption classification ---
// A torn *final* line is the expected crash artifact of the append-only
// writer; an invalid line *followed by further valid lines* can only mean
// the file was damaged after it was written. The read result reports the
// two separately so callers can stay calm about the former and loud about
// the latter.

TEST(ResultJournal, TornFinalLineIsTailCorruptionNotInterior) {
  TempFile file("tail_class");
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"job\":1}");
    journal.append("{\"job\":2}");
  }
  fs::resize_file(file.path(), fs::file_size(file.path()) - 5);
  const JournalReadResult result = ResultJournal::read(file.path());
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.corrupt_lines, 1);
  EXPECT_EQ(result.corrupt_tail, 1);
  EXPECT_EQ(result.corrupt_interior, 0);
}

TEST(ResultJournal, DamagedMiddleLineIsInteriorCorruption) {
  TempFile file("interior_class");
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"job\":1}");
    journal.append("{\"job\":2}");
    journal.append("{\"job\":3}");
  }
  std::string contents;
  {
    std::ifstream in(file.path());
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto at = contents.find("\"job\":2");
  ASSERT_NE(at, std::string::npos);
  contents[at + 6] = '9';
  {
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents;
  }
  const JournalReadResult result = ResultJournal::read(file.path());
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.corrupt_lines, 1);
  EXPECT_EQ(result.corrupt_tail, 0);
  EXPECT_EQ(result.corrupt_interior, 1);
}

TEST(ResultJournal, InteriorDamagePlusTornTailCountsBoth) {
  TempFile file("both_class");
  {
    ResultJournal journal;
    journal.open_append(file.path());
    journal.append("{\"job\":1}");
    journal.append("{\"job\":2}");
    journal.append("{\"job\":3}");
  }
  std::string contents;
  {
    std::ifstream in(file.path());
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto at = contents.find("\"job\":1");
  ASSERT_NE(at, std::string::npos);
  contents[at + 6] = '8';
  contents.resize(contents.size() - 5);  // And tear the final line.
  {
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents;
  }
  const JournalReadResult result = ResultJournal::read(file.path());
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0], "{\"job\":2}");
  EXPECT_EQ(result.corrupt_lines, 2);
  EXPECT_EQ(result.corrupt_tail, 1);
  EXPECT_EQ(result.corrupt_interior, 1);
}

// --- real process death (not simulated truncation) ---
// The torn-tail contract stated with actual processes: fork a child that
// appends records, kill it with SIGKILL (or have it _exit mid-line), and
// verify the parent reads a valid prefix with at most a torn tail. No
// gtest assertions run in the children — a child that misbehaves shows up
// as a wrong journal in the parent.

TEST(JournalProcessDeath, SigkillMidAppendLoopLeavesAValidPrefix) {
  TempFile file("sigkill");
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(ready[0]);
    ResultJournal journal;
    journal.open_append(file.path());
    for (int i = 0;; ++i) {
      journal.append("{\"job\":" + std::to_string(i) + "}");
      if (i == 3) {
        // Tell the parent at least four records are durable; keep
        // appending until the SIGKILL lands mid-loop.
        const char byte = 'g';
        (void)!::write(ready[1], &byte, 1);
      }
    }
  }
  ::close(ready[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  const JournalReadResult result = ResultJournal::read(file.path());
  ASSERT_GE(result.records.size(), 4u);
  // Every surviving record is exactly what was appended, in order: the
  // kill cost at most the one in-flight line.
  for (std::size_t i = 0; i < result.records.size(); ++i)
    EXPECT_EQ(result.records[i], "{\"job\":" + std::to_string(i) + "}");
  EXPECT_LE(result.corrupt_tail, 1);
  EXPECT_EQ(result.corrupt_interior, 0);
}

TEST(JournalProcessDeath, ExitMidLineLeavesOnlyATornTail) {
  TempFile file("midline");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    {
      ResultJournal journal;
      journal.open_append(file.path());
      journal.append("{\"job\":0}");
      journal.append("{\"job\":1}");
    }
    // Now die half-way through a raw third line: checksum prefix written,
    // record and newline never make it.
    const int fd = ::open(file.path().c_str(), O_WRONLY | O_APPEND);
    if (fd >= 0) (void)!::write(fd, "{\"crc\":\"dead", 12);
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  const JournalReadResult result = ResultJournal::read(file.path());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0], "{\"job\":0}");
  EXPECT_EQ(result.records[1], "{\"job\":1}");
  EXPECT_EQ(result.corrupt_lines, 1);
  EXPECT_EQ(result.corrupt_tail, 1);
  EXPECT_EQ(result.corrupt_interior, 0);
}

// --- JobSpec fingerprints ---

TEST(JobSpec, FingerprintIsDeterministicAndDiscriminates) {
  const JobSpec a{"CFD", "97K", 1};
  EXPECT_EQ(a.fingerprint(), (JobSpec{"CFD", "97K", 1}).fingerprint());
  EXPECT_EQ(a.fingerprint().size(), 16u);
  EXPECT_NE(a.fingerprint(), (JobSpec{"CFD", "97K", 2}).fingerprint());
  EXPECT_NE(a.fingerprint(), (JobSpec{"CFD", "193K", 1}).fingerprint());
  EXPECT_NE(a.fingerprint(), (JobSpec{"SRAD", "97K", 1}).fingerprint());
  // The separator keeps concatenation ambiguities apart.
  EXPECT_NE((JobSpec{"ab", "c", 1}).fingerprint(),
            (JobSpec{"a", "bc", 1}).fingerprint());
}

// --- JobRecord ---

core::ProjectionReport sample_report() {
  core::ProjectionReport report;
  report.app_name = "CFD 97K";
  report.machine_name = "anl_eureka";
  report.iterations = 4;
  report.predicted_kernel_s = 0.0123;
  report.measured_kernel_s = 0.0119;
  report.predicted_transfer_s = 0.0456;
  report.measured_transfer_s = 0.0441;
  report.measured_cpu_s = 0.321;
  report.calibration.used_fallback = false;
  return report;
}

TEST(JobRecord, JsonRoundTripPreservesEverything) {
  const JobSpec spec{"CFD", "97K", 4};
  const JobRecord record =
      JobRecord::from_report(spec, sample_report(), 2, 0.75);
  const auto parsed = JobRecord::from_json(record.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->fingerprint, spec.fingerprint());
  EXPECT_EQ(parsed->workload, "CFD");
  EXPECT_EQ(parsed->size_label, "97K");
  EXPECT_EQ(parsed->iterations, 4);
  EXPECT_EQ(parsed->status, RecordStatus::kOk);
  EXPECT_EQ(parsed->attempts, 2);
  EXPECT_EQ(parsed->elapsed_s, 0.75);
  EXPECT_EQ(parsed->machine, "anl_eureka");
  EXPECT_EQ(parsed->predicted_kernel_s, 0.0123);
  EXPECT_EQ(parsed->measured_cpu_s, 0.321);
  EXPECT_FALSE(parsed->calibration_fallback);
}

TEST(JobRecord, FailedRecordRoundTripsTheError) {
  JobRecord record;
  record.fingerprint = JobSpec{"CFD", "97K", 1}.fingerprint();
  record.workload = "CFD";
  record.size_label = "97K";
  record.iterations = 1;
  record.status = RecordStatus::kFailed;
  record.attempts = 4;
  record.elapsed_s = 1.5;
  record.error_kind = ErrorKind::kCalibration;
  record.error_message = "probe budget exhausted: \"broken link\"";
  const auto parsed = JobRecord::from_json(record.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, RecordStatus::kFailed);
  EXPECT_EQ(parsed->error_kind, ErrorKind::kCalibration);
  EXPECT_EQ(parsed->error_message, "probe budget exhausted: \"broken link\"");
}

TEST(JobRecord, RejectsMalformedPayloads) {
  EXPECT_FALSE(JobRecord::from_json("not json").has_value());
  EXPECT_FALSE(JobRecord::from_json("{}").has_value());
  EXPECT_FALSE(
      JobRecord::from_json("{\"fp\":\"x\",\"status\":\"weird\"}").has_value());
}

TEST(JobRecord, ReconstructedReportMatchesEveryDerivedMetric) {
  const core::ProjectionReport original = sample_report();
  const JobSpec spec{"CFD", "97K", 4};
  const JobRecord record = JobRecord::from_report(spec, original, 1, 0.1);
  const core::ProjectionReport rebuilt = record.to_report();

  EXPECT_EQ(rebuilt.app_name, original.app_name);
  EXPECT_EQ(rebuilt.iterations, original.iterations);
  EXPECT_DOUBLE_EQ(rebuilt.measured_speedup(), original.measured_speedup());
  EXPECT_DOUBLE_EQ(rebuilt.predicted_speedup_both(),
                   original.predicted_speedup_both());
  EXPECT_DOUBLE_EQ(rebuilt.predicted_speedup_kernel_only(),
                   original.predicted_speedup_kernel_only());
  EXPECT_DOUBLE_EQ(rebuilt.speedup_error_both_pct(),
                   original.speedup_error_both_pct());
  EXPECT_DOUBLE_EQ(rebuilt.speedup_error_limit_pct(),
                   original.speedup_error_limit_pct());
  EXPECT_DOUBLE_EQ(rebuilt.measured_speedup_limit(),
                   original.measured_speedup_limit());
}

}  // namespace
}  // namespace grophecy::exec
