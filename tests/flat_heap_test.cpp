// util::FlatDaryHeap — property tests against a std::priority_queue
// oracle, plus the buffer-reuse contracts the cohort engine's
// allocation-free steady state leans on.
#include "util/flat_dary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace {

using grophecy::util::FlatDaryHeap;
using grophecy::util::Rng;

// Min-oriented oracle over (key, value) pairs. Ties on key are allowed to
// surface in any order, so the oracle compares keys only.
using OraclePair = std::pair<double, std::int32_t>;
struct KeyGreater {
  bool operator()(const OraclePair& a, const OraclePair& b) const {
    return a.first > b.first;
  }
};
using Oracle =
    std::priority_queue<OraclePair, std::vector<OraclePair>, KeyGreater>;

template <int Arity>
void random_ops_match_oracle(std::uint64_t seed) {
  FlatDaryHeap<Arity> heap;
  Oracle oracle;
  Rng rng(seed);
  std::int32_t next_value = 0;

  for (int op = 0; op < 20000; ++op) {
    const bool push =
        oracle.empty() || rng.uniform() < 0.55;  // drift toward growth
    if (push) {
      // Coarse keys force plenty of exact ties.
      const double key = static_cast<double>(rng.uniform_int(-50, 50));
      heap.push(key, next_value);
      oracle.push({key, next_value});
      ++next_value;
    } else {
      ASSERT_EQ(heap.top_key(), oracle.top().first);
      heap.pop();
      oracle.pop();
    }
    ASSERT_EQ(heap.size(), oracle.size());
    ASSERT_EQ(heap.empty(), oracle.empty());
    if (!heap.empty()) ASSERT_EQ(heap.top_key(), oracle.top().first);
  }
  // Drain: every remaining key comes out in sorted order.
  while (!oracle.empty()) {
    ASSERT_EQ(heap.top_key(), oracle.top().first);
    heap.pop();
    oracle.pop();
  }
  ASSERT_TRUE(heap.empty());
}

TEST(FlatDaryHeap, RandomOpsMatchPriorityQueueArity2) {
  random_ops_match_oracle<2>(101);
}

TEST(FlatDaryHeap, RandomOpsMatchPriorityQueueArity4) {
  random_ops_match_oracle<4>(202);
}

TEST(FlatDaryHeap, RandomOpsMatchPriorityQueueArity8) {
  random_ops_match_oracle<8>(303);
}

TEST(FlatDaryHeap, PayloadsTravelWithTheirKeys) {
  // Distinct keys so the (key -> value) association is fully determined.
  FlatDaryHeap<4> heap;
  Rng rng(7);
  std::vector<double> keys;
  for (std::int32_t i = 0; i < 500; ++i) {
    double key;
    do {
      key = rng.uniform();
    } while (std::find(keys.begin(), keys.end(), key) != keys.end());
    keys.push_back(key);
    heap.push(key, i);
  }
  while (!heap.empty()) {
    const double key = heap.top_key();
    const std::int32_t value = heap.top_value();
    ASSERT_EQ(key, keys[static_cast<std::size_t>(value)]);
    heap.pop();
  }
}

TEST(FlatDaryHeap, SortsAdversarialPatterns) {
  // Ascending, descending, and all-equal pushes — the classic sift edge
  // cases (last-entry hole filling, full-depth percolation).
  for (const int pattern : {0, 1, 2}) {
    FlatDaryHeap<4> heap;
    std::vector<double> expect;
    for (int i = 0; i < 257; ++i) {
      const double key = pattern == 0   ? static_cast<double>(i)
                         : pattern == 1 ? static_cast<double>(-i)
                                        : 42.0;
      heap.push(key, i);
      expect.push_back(key);
    }
    std::sort(expect.begin(), expect.end());
    for (const double key : expect) {
      ASSERT_EQ(heap.top_key(), key);
      heap.pop();
    }
    ASSERT_TRUE(heap.empty());
  }
}

TEST(FlatDaryHeap, ClearKeepsBuffersAndReusesThemCorrectly) {
  FlatDaryHeap<4> heap;
  heap.reserve(1000);
  Rng rng(11);
  // Several fill/clear rounds: after a clear the heap must behave like a
  // fresh one (no stale entries bleeding through the kept buffers).
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(heap.empty());
    Oracle oracle;
    for (int i = 0; i < 1000; ++i) {
      const double key = rng.uniform();
      heap.push(key, i);
      oracle.push({key, i});
    }
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(heap.top_key(), oracle.top().first);
      heap.pop();
      oracle.pop();
    }
    heap.clear();
    ASSERT_EQ(heap.size(), 0u);
  }
}

}  // namespace
