// The surrogate fast-tier suite: feature extraction must be a pure
// function of the cached artifacts, the closed-form ridge fit must
// recover the grid it trained on and interpolate between its points, the
// confidence gate must refuse what the model has not seen, and the
// self-distillation loop (fallback -> observe -> background refit ->
// serve) must converge without ever blocking the serving path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/grophecy.h"
#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "surrogate/engine.h"
#include "surrogate/features.h"
#include "surrogate/model.h"
#include "util/error.h"
#include "util/stats.h"

namespace grophecy::surrogate {
namespace {

using exec::JobSpec;

const hw::MachineSpec& machine() {
  static const hw::MachineSpec spec = hw::anl_eureka();
  return spec;
}

exec::SweepEngine::JobFn exact_job_fn() {
  return exec::SweepRequest::on(machine()).job_fn();
}

TrainingSample sample_of(const JobSpec& spec,
                         const core::ProjectionReport& report) {
  TrainingSample sample;
  sample.fingerprint = spec.fingerprint();
  sample.features = extract_features(spec.workload, spec.size_label,
                                     spec.iterations, machine());
  sample.targets = targets_of(report);
  return sample;
}

/// The paper-grid training pool used by the model tests: three workloads
/// at a representative size across the iteration sweep.
std::vector<TrainingSample> grid_pool(const std::vector<int>& iters) {
  const auto job_fn = exact_job_fn();
  std::vector<TrainingSample> pool;
  for (const char* workload : {"CFD", "HotSpot", "SRAD"}) {
    const char* size = workload == std::string("CFD")
                           ? "97K"
                           : workload == std::string("HotSpot")
                                 ? "1024 x 1024"
                                 : "2048 x 2048";
    for (const int n : iters) {
      const JobSpec spec{workload, size, n, ""};
      pool.push_back(sample_of(spec, job_fn(spec)));
    }
  }
  return pool;
}

// --- features ---

TEST(SurrogateFeatures, ExtractionIsDeterministic) {
  const FeatureVector a = extract_features("CFD", "97K", 8, machine());
  const FeatureVector b = extract_features("CFD", "97K", 8, machine());
  EXPECT_EQ(a.values, b.values);  // bit-identical, not approximately
  for (const double v : a.values) EXPECT_TRUE(std::isfinite(v));
}

TEST(SurrogateFeatures, DistinctQueriesGetDistinctVectors) {
  const FeatureVector base = extract_features("CFD", "97K", 8, machine());
  EXPECT_NE(base.values, extract_features("CFD", "97K", 16, machine()).values);
  EXPECT_NE(base.values,
            extract_features("HotSpot", "1024 x 1024", 8, machine()).values);
  EXPECT_NE(base.values,
            extract_features("CFD", "97K", 8, hw::pcie3_kepler()).values);
}

TEST(SurrogateFeatures, NamesAlignWithTheVectorWidth) {
  const auto& names = feature_names();
  ASSERT_EQ(static_cast<int>(names.size()), kFeatureCount);
  for (const std::string& name : names) EXPECT_FALSE(name.empty());
}

TEST(SurrogateFeatures, RejectsInvalidIterationsAndUnknownNames) {
  EXPECT_THROW(extract_features("CFD", "97K", 0, machine()), UsageError);
  EXPECT_THROW(extract_features("NoSuchWorkload", "97K", 1, machine()),
               UsageError);
  EXPECT_THROW(extract_features("CFD", "no-such-size", 1, machine()),
               UsageError);
}

// --- model ---

TEST(SurrogateModel, RefusesDegenerateFits) {
  EXPECT_THROW(SurrogateModel::fit({}, 1e-4), UsageError);
  const auto pool = grid_pool({1, 2});
  EXPECT_THROW(SurrogateModel::fit({pool.front()}, 1e-4), UsageError);
  EXPECT_THROW(SurrogateModel::fit(pool, 0.0), UsageError);
}

TEST(SurrogateModel, RecoversItsTrainingGrid) {
  const auto pool = grid_pool({1, 2, 4, 8, 16, 32, 64, 128});
  const SurrogateModel model = SurrogateModel::fit(pool, 1e-4);
  EXPECT_EQ(model.train_count(), static_cast<int>(pool.size()));
  // In-sample: the ridge must reproduce what it was shown.
  EXPECT_LT(model.rel_error_p95(), 0.05);
  for (const TrainingSample& sample : pool) {
    const Prediction prediction = model.predict(sample.features);
    EXPECT_EQ(prediction.nn_distance, 0.0);  // its own training point
    EXPECT_LT(prediction.rel_error_bound, 0.10);
  }
}

TEST(SurrogateModel, InterpolatesHeldOutIterationCounts) {
  const auto job_fn = exact_job_fn();
  const SurrogateModel model =
      SurrogateModel::fit(grid_pool({1, 2, 4, 8, 16, 32, 64, 128}), 1e-4);
  std::vector<double> errors;
  for (const int n : {3, 6, 12, 24, 48, 96}) {
    const JobSpec spec{"CFD", "97K", n, ""};
    const TrainingSample truth = sample_of(spec, job_fn(spec));
    const Prediction prediction = model.predict(truth.features);
    for (int t = 0; t < kTargetCount; ++t) {
      const double want = truth.targets.values[static_cast<std::size_t>(t)];
      const double got =
          prediction.targets.values[static_cast<std::size_t>(t)];
      errors.push_back(std::abs(got - want) / std::max(want, 1e-12));
    }
  }
  EXPECT_LE(util::percentile(errors, 95.0), 0.10);
}

TEST(SurrogateModel, NoveltyWidensTheUncertaintyBound) {
  const SurrogateModel model =
      SurrogateModel::fit(grid_pool({1, 2, 4, 8}), 1e-4);
  // A point far outside the training manifold: every feature perturbed.
  FeatureVector alien = extract_features("CFD", "97K", 8, machine());
  for (double& v : alien.values) v += 50.0;
  const Prediction prediction = model.predict(alien);
  EXPECT_EQ(prediction.bucket, SurrogateModel::kBuckets - 1);
  EXPECT_TRUE(std::isinf(prediction.rel_error_bound));
  // Bucket edges are monotone, so the bound can gate on distance.
  for (int b = 1; b < SurrogateModel::kBuckets; ++b)
    EXPECT_GE(model.bucket_edge(b), model.bucket_edge(b - 1));
}

// --- engine: gating, self-distillation, non-blocking refits ---

core::SurrogateOptions engine_options() {
  core::SurrogateOptions options;
  options.enabled = true;
  options.min_train_points = 8;
  options.refit_interval = 8;
  options.max_rel_error = 0.10;
  return options;
}

TEST(SurrogateEngine, ColdEngineGatesEverythingToExact) {
  SurrogateEngine engine(engine_options(), machine());
  EXPECT_FALSE(engine.try_predict(JobSpec{"CFD", "97K", 4, ""}).has_value());
  const SurrogateEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.fallbacks, 1u);
}

TEST(SurrogateEngine, SelfDistillationConvergesOnRepeatTraffic) {
  const auto job_fn = exact_job_fn();
  SurrogateEngine engine(engine_options(), machine());

  std::vector<JobSpec> traffic;
  for (const int n : {1, 2, 4, 8, 16, 32, 64, 128})
    traffic.push_back(JobSpec{"CFD", "97K", n, ""});

  // Phase 1: everything is novel -> fallback, exact result observed.
  for (const JobSpec& spec : traffic) {
    EXPECT_FALSE(engine.try_predict(spec).has_value());
    engine.observe(spec, job_fn(spec));
  }
  engine.wait_for_refit();
  EXPECT_GE(engine.stats().refits, 1u);
  EXPECT_EQ(engine.stats().pool_size, traffic.size());

  // Phase 2: the same traffic is now served by the surrogate, in bound.
  for (const JobSpec& spec : traffic) {
    const std::optional<Prediction> hit = engine.try_predict(spec);
    ASSERT_TRUE(hit.has_value()) << spec.key();
    EXPECT_LE(hit->rel_error_bound, engine.options().max_rel_error);
  }
  EXPECT_EQ(engine.stats().served, traffic.size());
}

TEST(SurrogateEngine, ObservationsAreDedupedByFingerprint) {
  const auto job_fn = exact_job_fn();
  SurrogateEngine engine(engine_options(), machine());
  const JobSpec spec{"CFD", "97K", 4, ""};
  const core::ProjectionReport report = job_fn(spec);
  for (int i = 0; i < 5; ++i) engine.observe(spec, report);
  EXPECT_EQ(engine.stats().pool_size, 1u);
}

TEST(SurrogateEngine, UnknownMachineFallsThroughInsteadOfThrowing) {
  SurrogateEngine engine(engine_options(), machine());
  EXPECT_FALSE(
      engine.try_predict(JobSpec{"CFD", "97K", 4, "no_such_machine"})
          .has_value());
  EXPECT_EQ(engine.stats().fallbacks, 1u);
}

TEST(SurrogateEngine, FitNowRequiresAMinimallyFilledPool) {
  SurrogateEngine engine(engine_options(), machine());
  EXPECT_THROW(engine.fit_now(), UsageError);
}

TEST(SurrogateEngine, RefitNeverBlocksServingAndStaysSingleFlight) {
  const auto job_fn = exact_job_fn();

  // Hold the first background refit open and prove the serve path stays
  // responsive while it is in flight.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> refit_starts{0};

  SurrogateEngine engine(engine_options(), machine());
  engine.set_fit_hook([&] {
    ++refit_starts;
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });

  std::vector<JobSpec> traffic;
  for (const int n : {1, 2, 4, 8, 16, 32, 64, 128})
    traffic.push_back(JobSpec{"CFD", "97K", n, ""});
  // The 8th observation crosses min_train_points and schedules the refit,
  // which immediately parks on the hook.
  for (const JobSpec& spec : traffic) engine.observe(spec, job_fn(spec));
  while (refit_starts.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Serving and observing proceed while the refit is parked...
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(engine.try_predict(traffic.front()).has_value());
  engine.observe(JobSpec{"SRAD", "2048 x 2048", 4, ""},
                 job_fn(JobSpec{"SRAD", "2048 x 2048", 4, ""}));
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  EXPECT_LT(elapsed_s, 1.0);  // never waited out the parked refit
  // ...and no second refit was spawned behind the parked one.
  EXPECT_EQ(refit_starts.load(), 1);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  engine.wait_for_refit();
  EXPECT_GE(engine.stats().refits, 1u);
  // With the flight released, the model serves the warm traffic.
  EXPECT_TRUE(engine.try_predict(traffic.front()).has_value());
}

}  // namespace
}  // namespace grophecy::surrogate
