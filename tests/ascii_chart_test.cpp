// Tests for the ASCII chart renderer used by the figure benches.
#include <gtest/gtest.h>

#include "util/ascii_chart.h"
#include "util/contracts.h"

namespace grophecy::util {
namespace {

TEST(AsciiChart, RendersMarkersAxesAndLegend) {
  AsciiChart chart(40, 10);
  chart.set_x_label("x");
  chart.set_y_label("y");
  chart.add_series("rising", 'o', {0, 1, 2, 3}, {0, 1, 2, 3});
  const std::string out = chart.to_string();
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("o = rising"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
  EXPECT_NE(out.find("x"), std::string::npos);
  // Min and max tick labels present.
  EXPECT_NE(out.find("0"), std::string::npos);
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(AsciiChart, RisingSeriesOccupiesCorners) {
  AsciiChart chart(20, 5);
  chart.add_series("s", 'o', {0, 10}, {0, 10});
  const std::string out = chart.to_string();
  // First plot row (max y) has the marker at the far right; last plot row
  // (min y) at the far left.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t end = out.find('\n', pos);
    lines.push_back(out.substr(pos, end - pos));
    pos = end + 1;
  }
  EXPECT_EQ(lines[0].back(), 'o');
  EXPECT_EQ(lines[4][lines[4].find('|') + 1], 'o');
}

TEST(AsciiChart, LogScalePlacesDecadesEvenly) {
  AsciiChart chart(21, 5);
  chart.set_x_log(true);
  chart.add_series("s", 'o', {1, 10, 100}, {1, 1, 1});
  const std::string out = chart.to_string();
  // All three points land on one row; the middle one in the middle column.
  const std::size_t bottom = out.find('o');
  ASSERT_NE(bottom, std::string::npos);
  std::size_t line_start = out.rfind('\n', bottom);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  const std::string line = out.substr(line_start, out.find('\n', bottom) -
                                                      line_start);
  const std::size_t bar = line.find('|');
  const std::size_t first = line.find('o');
  const std::size_t second = line.find('o', first + 1);
  const std::size_t third = line.find('o', second + 1);
  ASSERT_NE(third, std::string::npos);
  EXPECT_EQ(first - bar - 1, 0u);
  EXPECT_EQ(second - bar - 1, 10u);
  EXPECT_EQ(third - bar - 1, 20u);
}

TEST(AsciiChart, LaterSeriesOverdrawEarlier) {
  AsciiChart chart(10, 4);
  chart.add_series("under", 'u', {5}, {5});
  chart.add_series("over", 'v', {5}, {5});
  const std::string out = chart.to_string();
  EXPECT_EQ(out.find('u'), out.find("u = under"));  // only in the legend
  EXPECT_LT(out.find('v'), out.find("v = over"));   // plotted
}

TEST(AsciiChart, ContractsRejectBadInput) {
  AsciiChart chart(20, 5);
  EXPECT_THROW(chart.add_series("s", 'o', {}, {}), ContractViolation);
  EXPECT_THROW(chart.add_series("s", 'o', {1, 2}, {1}), ContractViolation);
  EXPECT_THROW(chart.to_string(), ContractViolation);  // no series
  chart.set_x_log(true);
  chart.add_series("s", 'o', {0.0}, {1.0});  // log of zero
  EXPECT_THROW(chart.to_string(), ContractViolation);
  EXPECT_THROW(AsciiChart(1, 1), ContractViolation);
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart(20, 5);
  chart.add_series("flat", 'o', {1, 2, 3}, {7, 7, 7});
  EXPECT_NO_THROW(chart.to_string());
}

}  // namespace
}  // namespace grophecy::util
