// Tests for the GPU timing simulator: determinism, jitter statistics, wave
// quantization, and the structural relationship to the analytical model
// (the simulator charges for everything the model does, plus realism).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "sim/gpu_sim.h"
#include "skeleton/builder.h"
#include "util/error.h"
#include "util/stats.h"

namespace grophecy::sim {
namespace {

using gpumodel::KernelCharacteristics;
using gpumodel::Variant;
using skeleton::AffineExpr;
using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ArrayId;
using skeleton::ElemType;
using skeleton::KernelBuilder;

hw::GpuSpec g80() { return hw::anl_eureka().gpu; }

AppSkeleton streaming_app(std::int64_t n) {
  AppBuilder app("stream");
  const ArrayId x = app.array("x", ElemType::kF32, {n});
  const ArrayId y = app.array("y", ElemType::kF32, {n});
  KernelBuilder& k = app.kernel("copy");
  k.parallel_loop("i", n);
  k.statement(1.0).load(x, {k.var("i")}).store(y, {k.var("i")});
  return app.build();
}

AppSkeleton gather_app(std::int64_t n) {
  AppBuilder app("gather");
  const ArrayId x = app.array("x", ElemType::kF32, {n});
  const ArrayId y = app.array("y", ElemType::kF32, {n});
  KernelBuilder& k = app.kernel("gather");
  k.parallel_loop("i", n);
  k.statement(1.0);
  k.load_gather(x, {AffineExpr::make_constant(0)}, {0}, {"i"});
  k.store(y, {k.var("i")});
  return app.build();
}

KernelCharacteristics characterize_first(const AppSkeleton& app,
                                         int block = 256) {
  Variant variant;
  variant.block_size = block;
  return gpumodel::characterize(app, app.kernels[0], variant, g80());
}

TEST(GpuSimulator, ExpectedLaunchIsDeterministic) {
  GpuSimulator sim(g80(), 1);
  const AppSkeleton app = streaming_app(1 << 20);
  const KernelCharacteristics kc = characterize_first(app);
  EXPECT_DOUBLE_EQ(sim.expected_launch(kc).total_s,
                   sim.expected_launch(kc).total_s);
}

TEST(GpuSimulator, JitterAveragesToExpected) {
  GpuSimulator sim(g80(), 7);
  const AppSkeleton app = streaming_app(1 << 20);
  const KernelCharacteristics kc = characterize_first(app);
  const double expected = sim.expected_launch(kc).total_s;
  EXPECT_NEAR(sim.measure_launch_seconds(kc, 2000), expected,
              expected * 0.01);
}

TEST(GpuSimulator, SameSeedSameRuns) {
  GpuSimulator a(g80(), 42), b(g80(), 42);
  const AppSkeleton app = streaming_app(1 << 18);
  const KernelCharacteristics kc = characterize_first(app);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.run_launch_seconds(kc), b.run_launch_seconds(kc));
}

TEST(GpuSimulator, SimulatedTimeExceedsModelProjection) {
  // The machine charges for realism the best-achievable model omits, so
  // simulated time must be at least the projected time for any kernel.
  GpuSimulator sim(g80(), 1);
  gpumodel::KernelTimeModel model(g80());
  for (const AppSkeleton& app :
       {streaming_app(1 << 20), gather_app(1 << 18)}) {
    const KernelCharacteristics kc = characterize_first(app);
    EXPECT_GE(sim.expected_launch(kc).total_s,
              model.project(kc).total_s * 0.999)
        << app.name;
  }
}

TEST(GpuSimulator, GatherGapExceedsStreamingGap) {
  // The model-vs-machine gap must be structurally larger for irregular
  // kernels (the paper's CFD behaviour, Fig. 6).
  GpuSimulator sim(g80(), 1);
  gpumodel::KernelTimeModel model(g80());
  auto gap = [&](const AppSkeleton& app) {
    const KernelCharacteristics kc = characterize_first(app);
    return sim.expected_launch(kc).total_s / model.project(kc).total_s;
  };
  EXPECT_GT(gap(gather_app(1 << 18)), gap(streaming_app(1 << 20)) * 1.1);
}

TEST(GpuSimulator, WaveQuantizationPenalizesPartialWaves) {
  // One extra block beyond a full wave costs a whole extra wave.
  const hw::GpuSpec gpu = g80();
  GpuSimulator sim(gpu, 1);
  // Derive the chip's wave capacity from the actual occupancy of this
  // kernel (register pressure caps blocks per SM).
  const KernelCharacteristics probe =
      characterize_first(streaming_app(1 << 20));
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu, 256, probe.regs_per_thread, probe.smem_per_block_bytes);
  const std::int64_t wave_threads =
      static_cast<std::int64_t>(occ.blocks_per_sm) * gpu.num_sms * 256;
  const KernelCharacteristics exactly_one =
      characterize_first(streaming_app(wave_threads));
  const KernelCharacteristics one_more =
      characterize_first(streaming_app(wave_threads + 256));
  const SimBreakdown full = sim.expected_launch(exactly_one);
  const SimBreakdown spill = sim.expected_launch(one_more);
  EXPECT_EQ(full.waves, 1);
  EXPECT_EQ(spill.waves, 2);
  // Compare kernel bodies (launch overhead dwarfs a single wave).
  EXPECT_GT(spill.total_s - spill.launch_s,
            (full.total_s - full.launch_s) * 1.3);
}

TEST(GpuSimulator, SyncsCostTime) {
  GpuSimulator sim(g80(), 1);
  const AppSkeleton app = streaming_app(1 << 18);
  KernelCharacteristics kc = characterize_first(app);
  const double before = sim.expected_launch(kc).total_s;
  kc.syncs_per_thread = 8;
  EXPECT_GT(sim.expected_launch(kc).total_s, before);
}

TEST(GpuSimulator, LaunchOverheadFloorsTinyKernels) {
  GpuSimulator sim(g80(), 1);
  const AppSkeleton app = streaming_app(64);
  const KernelCharacteristics kc = characterize_first(app, 64);
  const SimBreakdown out = sim.expected_launch(kc);
  EXPECT_GE(out.total_s, g80().kernel_launch_overhead_s);
  EXPECT_LT(out.total_s, g80().kernel_launch_overhead_s * 2.0);
}

/// KernelTimer whose runs replay a scripted sample sequence, for testing
/// measure_launch_seconds' averaging in isolation.
class ScriptedTimer final : public KernelTimer {
 public:
  explicit ScriptedTimer(std::vector<double> samples)
      : samples_(std::move(samples)) {}

  double run_launch_seconds(const KernelCharacteristics&) override {
    return samples_.at(next_++);
  }

 private:
  std::vector<double> samples_;
  std::size_t next_ = 0;
};

TEST(KernelTimer, MeasureAveragesWithRunningMean) {
  ScriptedTimer timer({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(timer.measure_launch_seconds(KernelCharacteristics{}, 4),
                   2.5);
}

TEST(KernelTimer, HugeSamplesDoNotOverflowTheMean) {
  // A plain sum of these samples overflows to infinity before dividing;
  // the running mean never leaves the representable range.
  ScriptedTimer timer({1e308, 1e308, 1e308});
  const double mean =
      timer.measure_launch_seconds(KernelCharacteristics{}, 3);
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_DOUBLE_EQ(mean, 1e308);
}

TEST(KernelTimer, NonFiniteSampleThrowsMeasurementError) {
  ScriptedTimer inf_timer(
      {1.0, std::numeric_limits<double>::infinity(), 1.0});
  EXPECT_THROW(inf_timer.measure_launch_seconds(KernelCharacteristics{}, 3),
               MeasurementError);
  ScriptedTimer nan_timer(
      {std::numeric_limits<double>::quiet_NaN()});
  EXPECT_THROW(nan_timer.measure_launch_seconds(KernelCharacteristics{}, 1),
               MeasurementError);
}

}  // namespace
}  // namespace grophecy::sim
