// The determinism contract of the parallel sweep engine (exec/sweep.h):
// for any worker count, a sweep's measured values, summary, and journal
// bytes are identical — scheduling must never be observable in results.
//
//   * fake-job sweeps: summary counters, outcome order, record payloads,
//     and journal bytes equal across workers in {1, 2, 8};
//   * real-pipeline sweeps through exec::SweepRequest: every job's
//     ProjectionReport equals the serial run bit-for-bit (per-job seeds
//     make results a pure function of the spec);
//   * per-job seeding: stream_seed is a pure decorrelated function of
//     (base seed, spec identity);
//   * the chaos scenario under 8 workers: FaultInjector-scripted hangs
//     and transients across a journaled sweep, resumed to the fault-free
//     answer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "dataflow/usage_cache.h"
#include "exec/journal.h"
#include "exec/sweep_request.h"
#include "faults/fault_injector.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "util/error.h"
#include "util/units.h"
#include "workloads/skeleton_cache.h"

namespace grophecy::exec {
namespace {

namespace fs = std::filesystem;

class TempJournal {
 public:
  explicit TempJournal(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("grophecy_determinism_" + name + std::to_string(::getpid()) +
                ".jsonl"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  std::string bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

 private:
  std::string path_;
};

/// Deterministic fake projection: a pure function of the spec.
core::ProjectionReport fake_report(const JobSpec& spec) {
  core::ProjectionReport report;
  report.app_name = spec.workload + " " + spec.size_label;
  report.machine_name = "fake";
  report.iterations = spec.iterations;
  report.predicted_kernel_s = 0.010 + 0.001 * spec.iterations;
  report.measured_kernel_s =
      0.011 + 1e-6 * static_cast<double>(spec.size_label.size());
  report.predicted_transfer_s = 0.020;
  report.measured_transfer_s = 0.019;
  report.measured_cpu_s = 0.300;
  return report;
}

std::vector<JobSpec> grid(int sizes, int iteration_counts) {
  std::vector<JobSpec> jobs;
  for (int s = 0; s < sizes; ++s)
    for (int i = 0; i < iteration_counts; ++i)
      jobs.push_back({"W", "size" + std::to_string(s), 1 << i});
  return jobs;
}

// --- per-job seed derivation ---

TEST(StreamSeed, IsAPureDecorrelatedFunctionOfBaseAndIdentity) {
  const JobSpec a{"CFD", "97K", 1};
  EXPECT_EQ(a.stream_seed(42), a.stream_seed(42));  // pure
  EXPECT_NE(a.stream_seed(42), a.stream_seed(43));  // base matters
  // Distinct specs get distinct streams under one base.
  std::set<std::uint64_t> seeds;
  for (const JobSpec& spec : grid(4, 4)) seeds.insert(spec.stream_seed(42));
  EXPECT_EQ(seeds.size(), 16u);
  // Identity, not address or order: an equal spec agrees.
  EXPECT_EQ((JobSpec{"CFD", "97K", 1}).stream_seed(42), a.stream_seed(42));
}

// --- scheduling-independence with fake jobs ---

/// Runs one fake-job sweep at the given worker count, with the journal at
/// `path`, and returns the summary.
SweepSummary run_fake_sweep(int workers, const std::string& journal_path) {
  SweepOptions options;
  options.workers = workers;
  options.journal_path = journal_path;
  options.resume = false;
  // Zero journaled wall-clock: elapsed time is the one result field that
  // legitimately differs run to run.
  options.record_wall_time = false;
  SweepEngine engine(options);
  return engine.run(grid(4, 3), [](const JobSpec& spec) {
    // Stagger completion so out-of-order worker finishes actually happen:
    // later submissions sleep less, finishing first under concurrency.
    const int index = spec.iterations;
    std::this_thread::sleep_for(std::chrono::microseconds(500 / index));
    return fake_report(spec);
  });
}

TEST(SweepDeterminism, SummaryAndJournalBytesEqualAcrossWorkerCounts) {
  TempJournal serial_journal("serial");
  const SweepSummary serial = run_fake_sweep(1, serial_journal.path());
  const std::string serial_bytes = serial_journal.bytes();
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial.ok, 12);

  for (int workers : {2, 8}) {
    TempJournal journal("w" + std::to_string(workers));
    const SweepSummary parallel = run_fake_sweep(workers, journal.path());

    EXPECT_EQ(parallel.ok, serial.ok) << workers;
    EXPECT_EQ(parallel.failed, serial.failed) << workers;
    EXPECT_EQ(parallel.attempts, serial.attempts) << workers;
    EXPECT_EQ(parallel.describe(), serial.describe()) << workers;

    // Outcomes in submission order with identical records.
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(parallel.outcomes[i].spec.key(), serial.outcomes[i].spec.key());
      EXPECT_EQ(parallel.outcomes[i].record.to_json(),
                serial.outcomes[i].record.to_json());
    }

    // The strongest form: the journal files are byte-identical.
    EXPECT_EQ(journal.bytes(), serial_bytes) << workers << " workers";
  }
}

TEST(SweepDeterminism, FailuresLandDeterministicallyAcrossWorkerCounts) {
  auto run = [&](int workers) {
    SweepOptions options;
    options.workers = workers;
    options.max_retries = 0;
    SweepEngine engine(options);
    return engine.run(grid(4, 3), [](const JobSpec& spec) {
      if (spec.size_label == "size2")  // every size2 job fails permanently
        throw CalibrationError("poisoned: " + spec.key());
      return fake_report(spec);
    });
  };
  const SweepSummary serial = run(1);
  EXPECT_EQ(serial.failed, 3);
  for (int workers : {2, 8}) {
    const SweepSummary parallel = run(workers);
    EXPECT_EQ(parallel.describe(), serial.describe()) << workers;
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(parallel.outcomes[i].status, serial.outcomes[i].status);
      if (serial.outcomes[i].error) {
        ASSERT_TRUE(parallel.outcomes[i].error.has_value());
        EXPECT_EQ(parallel.outcomes[i].error->kind,
                  serial.outcomes[i].error->kind);
        EXPECT_EQ(parallel.outcomes[i].error->message,
                  serial.outcomes[i].error->message);
      }
    }
  }
}

TEST(SweepDeterminism, WorkerPoolActuallyRunsJobsConcurrently) {
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  SweepOptions options;
  options.workers = 4;
  SweepEngine engine(options);
  EXPECT_EQ(engine.effective_workers(), 4);
  engine.run(grid(4, 2), [&](const JobSpec& spec) {
    const int now = in_flight.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    in_flight.fetch_sub(1);
    return fake_report(spec);
  });
  // 8 jobs, 4 workers, 10ms each: genuine overlap must occur.
  EXPECT_GE(peak.load(), 2);
}

// --- scheduling-independence through the real pipeline ---

TEST(SweepDeterminism, RealPipelineResultsEqualSerialBitForBit) {
  auto run = [](int workers) {
    SweepOptions options;
    options.workers = workers;
    SweepEngine engine(options);
    return SweepRequest::on(hw::anl_eureka())
        .workloads({"HotSpot"})
        .sizes(all_sizes)
        .iterations({1, 8})
        .run(engine);
  };
  const SweepSummary serial = run(1);
  ASSERT_GT(serial.ok, 0);
  EXPECT_EQ(serial.failed, 0);

  for (int workers : {2, 8}) {
    const SweepSummary parallel = run(workers);
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      const core::ProjectionReport& a = *serial.outcomes[i].report;
      const core::ProjectionReport& b = *parallel.outcomes[i].report;
      // Bitwise equality of every journaled scalar: the projection is a
      // pure function of the spec, so scheduling cannot perturb it.
      EXPECT_EQ(a.predicted_kernel_s, b.predicted_kernel_s) << i;
      EXPECT_EQ(a.measured_kernel_s, b.measured_kernel_s) << i;
      EXPECT_EQ(a.predicted_transfer_s, b.predicted_transfer_s) << i;
      EXPECT_EQ(a.measured_transfer_s, b.measured_transfer_s) << i;
      EXPECT_EQ(a.measured_cpu_s, b.measured_cpu_s) << i;
    }
  }
}

// The shared-artifact caches must be invisible in results: a sweep whose
// artifacts are all built fresh (cache-cold) and a sweep served entirely
// from the process-wide caches (cache-warm) produce byte-identical
// journals, for any worker count. Content-addressed keys make a cached
// artifact bit-identical to a rebuilt one; this pins it end to end.
TEST(SweepDeterminism, JournalBytesEqualCacheColdAndCacheWarmAcrossWorkers) {
  auto run = [](int workers, bool cold, const std::string& name) {
    if (cold) {
      workloads::skeleton_cache().clear();
      dataflow::usage_cache().clear();
    }
    TempJournal journal(name);
    SweepOptions options;
    options.workers = workers;
    options.journal_path = journal.path();
    options.record_wall_time = false;
    SweepEngine engine(options);
    const SweepSummary summary = SweepRequest::on(hw::anl_eureka())
                                     .workloads({"HotSpot"})
                                     .sizes({"64 x 64", "512 x 512"})
                                     .iterations({1, 8})
                                     .run(engine);
    EXPECT_EQ(summary.failed, 0);
    return journal.bytes();
  };

  const std::string cold_serial = run(1, true, "cold_w1");
  ASSERT_FALSE(cold_serial.empty());
  // Warm runs (caches populated by the run above) and cold parallel runs
  // all journal the same bytes.
  EXPECT_EQ(run(1, false, "warm_w1"), cold_serial);
  for (int workers : {2, 8}) {
    const std::string tag = std::to_string(workers);
    EXPECT_EQ(run(workers, true, "cold_w" + tag), cold_serial) << workers;
    EXPECT_EQ(run(workers, false, "warm_w" + tag), cold_serial) << workers;
  }
}

TEST(SweepDeterminism, RequestJobsExpandDeterministically) {
  const SweepRequest request = SweepRequest::on(hw::anl_eureka())
                                   .workloads({"SRAD", "HotSpot"})
                                   .sizes(all_sizes)
                                   .iterations({1, 4});
  const std::vector<JobSpec> first = request.jobs();
  const std::vector<JobSpec> second = request.jobs();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i].key(), second[i].key());
  // Declaration order: workload-major, then size, then iterations.
  EXPECT_EQ(first.front().workload, "SRAD");
  EXPECT_EQ(first.back().workload, "HotSpot");
  EXPECT_EQ(first[0].iterations, 1);
  EXPECT_EQ(first[1].iterations, 4);
}

TEST(SweepRequestValidation, UnknownNamesThrowUsageError) {
  EXPECT_THROW(
      SweepRequest::on(hw::anl_eureka()).workloads({"NoSuchApp"}).jobs(),
      UsageError);
  EXPECT_THROW(SweepRequest::on(hw::anl_eureka())
                   .workloads({"CFD"})
                   .sizes({"nonsense"})
                   .jobs(),
               UsageError);
  EXPECT_THROW(SweepRequest::on(hw::anl_eureka()).jobs(), UsageError);
  EXPECT_THROW(SweepRequest::on(hw::anl_eureka())
                   .workloads({"CFD"})
                   .iterations({})
                   .jobs(),
               UsageError);
}

// --- the chaos sweep under 8 workers ---

// FaultInjector-scripted hangs and transients across a journaled 8-worker
// sweep: healthy jobs journal their results, hung jobs time out, and a
// second (fault-free, 8-worker) run resumes to exactly the fault-free
// serial answer.
TEST(SweepDeterminism, ChaosSweepUnder8WorkersResumesToFaultFreeAnswer) {
  const std::vector<JobSpec> jobs = grid(4, 3);

  // Fault-free serial reference.
  SweepOptions reference_options;
  reference_options.workers = 1;
  SweepEngine reference_engine(reference_options);
  const SweepSummary reference = reference_engine.run(
      jobs, [](const JobSpec& spec) { return fake_report(spec); });
  ASSERT_EQ(reference.ok, static_cast<int>(jobs.size()));

  TempJournal journal("chaos8");
  SweepOptions options;
  options.workers = 8;
  options.journal_path = journal.path();
  options.max_retries = 1;
  options.deadline_s = 0.05;

  // The real injection stack scripts the faults. Probabilistic plan +
  // per-job injector stream keyed off the spec keeps the chaos itself
  // deterministic per job while exercising hangs and transients together.
  const hw::MachineSpec machine = hw::anl_eureka();

  {  // Run 1: jobs for "size1" hang past the deadline; "size2" jobs throw
     // a transient on their first attempt, then succeed on retry.
    std::atomic<int> hung{0};
    std::mutex transient_mutex;
    std::set<std::string> transient_thrown;
    SweepEngine engine(options);
    const SweepSummary chaotic = engine.run(jobs, [&](const JobSpec& spec) {
      if (spec.size_label == "size2") {
        std::lock_guard<std::mutex> lock(transient_mutex);
        if (transient_thrown.insert(spec.key()).second)
          throw MeasurementError("scripted transient: " + spec.key());
      }
      if (spec.size_label == "size1") {
        faults::FaultPlan plan;
        plan.hang_probability = 1.0;
        plan.hang_factor = 1e4;
        pcie::SimulatedBus bus(machine.pcie, spec.stream_seed(7));
        faults::FaultInjector injector(bus, plan);
        const double simulated_s = injector.time_transfer(
            util::kMiB, hw::Direction::kHostToDevice, hw::HostMemory::kPinned);
        hung.fetch_add(1);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(simulated_s, 0.2)));
      }
      return fake_report(spec);
    });
    EXPECT_EQ(hung.load(), 6);  // 3 size1 jobs x (1 attempt + 1 retry)
    EXPECT_EQ(chaotic.failed, 3);
    EXPECT_EQ(chaotic.ok, static_cast<int>(jobs.size()) - 3);
    EXPECT_EQ(chaotic.retried, 6);  // 3 hung (retried then failed) + 3 transient
    for (const JobOutcome& outcome : chaotic.outcomes) {
      if (outcome.spec.size_label != "size1") continue;
      ASSERT_TRUE(outcome.error.has_value()) << outcome.spec.key();
      EXPECT_EQ(outcome.error->kind, ErrorKind::kTimeout);
    }
  }

  {  // Run 2: faults cleared; only the timed-out jobs re-execute, and the
     // final table equals the fault-free reference everywhere.
    std::atomic<int> executed{0};
    SweepEngine engine(options);
    const SweepSummary resumed = engine.run(jobs, [&](const JobSpec& spec) {
      executed.fetch_add(1);
      EXPECT_EQ(spec.size_label, "size1");
      return fake_report(spec);
    });
    EXPECT_EQ(executed.load(), 3);
    EXPECT_EQ(resumed.resumed, static_cast<int>(jobs.size()) - 3);
    EXPECT_EQ(resumed.ok, 3);
    EXPECT_EQ(resumed.failed, 0);
    ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size());
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      ASSERT_TRUE(resumed.outcomes[i].report.has_value());
      EXPECT_DOUBLE_EQ(resumed.outcomes[i].report->measured_speedup(),
                       reference.outcomes[i].report->measured_speedup());
      EXPECT_DOUBLE_EQ(resumed.outcomes[i].report->predicted_speedup_both(),
                       reference.outcomes[i].report->predicted_speedup_both());
    }
  }
}

}  // namespace
}  // namespace grophecy::exec
