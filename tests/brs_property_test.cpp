// Randomized property tests pinning BOTH SectionSet implementations —
// the sorted-window rewrite (brs/section_set.h) and the pinned
// pre-rewrite ReferenceSectionSet — against a brute-force rasterized
// oracle on small arrays:
//
//   * soundness of covers: an answer of true implies the probe's raster
//     is a subset of the union's raster (never the reverse direction —
//     the contract allows conservative false);
//   * add() exactness: the set's rasterized union equals the union of
//     the added sections' rasters (merging never gains or loses
//     elements);
//   * subtract_from: every piece stays inside the query's raster, the
//     pieces jointly cover every query element outside the union (the
//     safe direction), and an empty result only occurs for genuinely
//     covered queries;
//   * bounding_union: encloses the union's raster, with identical
//     per-dimension boxes across the two implementations.
//
// Everything is seeded through util::Rng, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "brs/reference_section_set.h"
#include "brs/section.h"
#include "brs/section_set.h"
#include "skeleton/skeleton.h"
#include "util/rng.h"

namespace grophecy::brs {
namespace {

using Coord = std::vector<std::int64_t>;
using Raster = std::set<Coord>;

/// Every element coordinate the section describes, brute-forced.
Raster rasterize(const Section& section, const skeleton::ArrayDecl& decl) {
  Raster out;
  const std::size_t rank = decl.dims.size();
  std::vector<std::vector<std::int64_t>> per_dim(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    if (section.whole_array) {
      for (std::int64_t v = 0; v < decl.dims[d]; ++v)
        per_dim[d].push_back(v);
    } else {
      const DimSection& dim = section.dims[d];
      for (std::int64_t v = dim.lower; v <= dim.upper; v += dim.stride)
        per_dim[d].push_back(v);
    }
    if (per_dim[d].empty()) return out;  // empty in one dim => empty
  }
  Coord coord(rank, 0);
  std::vector<std::size_t> idx(rank, 0);
  while (true) {
    for (std::size_t d = 0; d < rank; ++d) coord[d] = per_dim[d][idx[d]];
    out.insert(coord);
    std::size_t d = rank;
    while (d > 0) {
      --d;
      if (++idx[d] < per_dim[d].size()) break;
      idx[d] = 0;
      if (d == 0) return out;
    }
  }
}

Raster rasterize_all(const std::vector<Section>& sections,
                     const skeleton::ArrayDecl& decl) {
  Raster out;
  for (const Section& s : sections) {
    const Raster r = rasterize(s, decl);
    out.insert(r.begin(), r.end());
  }
  return out;
}

bool subset_of(const Raster& inner, const Raster& outer) {
  for (const Coord& c : inner)
    if (outer.find(c) == outer.end()) return false;
  return true;
}

/// A random in-bounds section over `decl` (never empty).
Section random_section(const skeleton::ArrayDecl& decl, util::Rng& rng) {
  Section s = Section::whole(0, decl);
  s.whole_array = false;
  for (std::size_t d = 0; d < decl.dims.size(); ++d) {
    const std::int64_t extent = decl.dims[d];
    const std::int64_t lo = rng.uniform_int(0, extent - 1);
    const std::int64_t hi = rng.uniform_int(lo, extent - 1);
    const std::int64_t stride = rng.uniform_int(1, 3);
    s.dims[d] = DimSection::range(lo, hi, stride);
  }
  return s;
}

/// Checks every property of one (members, probes) trial against `Set`.
template <typename Set>
void check_trial(const skeleton::ArrayDecl& decl,
                 const std::vector<Section>& members,
                 const std::vector<Section>& probes, std::uint64_t seed) {
  Set set;
  for (const Section& member : members) set.add(member);
  const Raster truth = rasterize_all(members, decl);

  // add() exactness: merging preserved the element set exactly.
  EXPECT_EQ(rasterize_all(set.sections(), decl), truth) << "seed " << seed;

  // bounding_union encloses the truth.
  if (!set.empty()) {
    const Raster bound = rasterize(set.bounding_union(), decl);
    EXPECT_TRUE(subset_of(truth, bound)) << "seed " << seed;
  }

  for (std::size_t p = 0; p < probes.size(); ++p) {
    const Section& probe = probes[p];
    const Raster probe_raster = rasterize(probe, decl);

    // covers soundness: true is a proof.
    if (set.covers(probe)) {
      EXPECT_TRUE(subset_of(probe_raster, truth))
          << "seed " << seed << " probe " << p;
    }

    const std::vector<Section> pieces = set.subtract_from(probe);
    const Raster piece_raster = rasterize_all(pieces, decl);
    // Every piece stays inside the query.
    EXPECT_TRUE(subset_of(piece_raster, probe_raster))
        << "seed " << seed << " probe " << p;
    // The pieces cover everything the set does not (the safe direction:
    // anything possibly uncovered must still be transferred).
    for (const Coord& c : probe_raster) {
      if (truth.find(c) == truth.end()) {
        EXPECT_TRUE(piece_raster.find(c) != piece_raster.end())
            << "seed " << seed << " probe " << p;
      }
    }
    // An empty result proves coverage.
    if (pieces.empty()) {
      EXPECT_TRUE(subset_of(probe_raster, truth))
          << "seed " << seed << " probe " << p;
    }
  }
}

/// Runs `trials` random trials over `decl` against both implementations
/// and pins their bounding boxes to each other.
void run_property_trials(const skeleton::ArrayDecl& decl, int trials,
                         std::uint64_t seed_base) {
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(trial);
    util::Rng rng(seed);
    const int member_count = static_cast<int>(rng.uniform_int(1, 6));
    const int probe_count = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<Section> members, probes;
    for (int i = 0; i < member_count; ++i)
      members.push_back(random_section(decl, rng));
    for (int i = 0; i < probe_count; ++i)
      probes.push_back(random_section(decl, rng));
    // Half the probes are shrunken members, so genuinely covered queries
    // are common (pure random probes are almost never covered).
    for (std::size_t i = 0; i + 1 < probes.size(); i += 2) {
      Section shrunk = members[i % members.size()];
      probes[i] = shrunk;
    }

    check_trial<SectionSet>(decl, members, probes, seed);
    check_trial<ReferenceSectionSet>(decl, members, probes, seed);

    // The two implementations agree on the bounding box (strides may
    // legitimately differ with merge order; boxes cannot — both sets
    // represent exactly the same element union).
    SectionSet fast;
    ReferenceSectionSet reference;
    for (const Section& member : members) {
      fast.add(member);
      reference.add(member);
    }
    const Section fast_bound = fast.bounding_union();
    const Section ref_bound = reference.bounding_union();
    ASSERT_EQ(fast_bound.dims.size(), ref_bound.dims.size());
    for (std::size_t d = 0; d < fast_bound.dims.size(); ++d) {
      EXPECT_EQ(fast_bound.dims[d].lower, ref_bound.dims[d].lower)
          << "seed " << seed;
      EXPECT_EQ(fast_bound.dims[d].upper, ref_bound.dims[d].upper)
          << "seed " << seed;
    }
  }
}

TEST(BrsProperty, Randomized1DAgainstRasterOracle) {
  const skeleton::ArrayDecl decl{"a", skeleton::ElemType::kF32, {24}, false};
  run_property_trials(decl, 300, 1000);
}

TEST(BrsProperty, Randomized2DAgainstRasterOracle) {
  const skeleton::ArrayDecl decl{"a", skeleton::ElemType::kF32, {12, 10},
                                 false};
  run_property_trials(decl, 150, 2000);
}

TEST(BrsProperty, WholeArraySectionsCoverAndSubtractToEmpty) {
  const skeleton::ArrayDecl decl{"a", skeleton::ElemType::kF32, {16}, false};
  const Section whole = Section::whole(0, decl);
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Section probe = random_section(decl, rng);
    SectionSet fast;
    ReferenceSectionSet reference;
    fast.add(whole);
    reference.add(whole);
    EXPECT_TRUE(fast.covers(probe));
    EXPECT_TRUE(reference.covers(probe));
    EXPECT_TRUE(fast.subtract_from(probe).empty());
    EXPECT_TRUE(reference.subtract_from(probe).empty());
  }
}

}  // namespace
}  // namespace grophecy::brs
