// Tests for the runtime skeleton capture: affine inference (shifts,
// strides, linearizations), gather detection with loop-dependence
// recovery, guarded-halo robustness, statement depths — and an
// end-to-end check that capturing the *actual* HotSpot reference loops
// reconstructs a skeleton whose transfer plan matches the hand-written
// one.
#include <gtest/gtest.h>

#include "capture/recorder.h"
#include "dataflow/usage_analyzer.h"
#include "skeleton/serialize.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "workloads/hotspot.h"
#include "workloads/srad.h"

namespace grophecy::capture {
namespace {

using skeleton::AffineExpr;
using skeleton::AppSkeleton;
using skeleton::ElemType;
using skeleton::RefKind;

TEST(Capture, RecoversStencilShiftsExactly) {
  const std::int64_t n = 24;
  Recorder rec("stencil");
  const ArrayHandle in = rec.array("in", ElemType::kF32, {n, n});
  const ArrayHandle out = rec.array("out", ElemType::kF32, {n, n});
  rec.begin_kernel("step");
  rec.declare_loop("i", 0, n, true);
  rec.declare_loop("j", 0, n, true);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      rec.iteration({i, j});
      rec.load(in, {i, j}, "center");
      if (i > 0) rec.load(in, {i - 1, j}, "north");     // guarded halo
      if (j < n - 1) rec.load(in, {i, j + 1}, "east");  // guarded halo
      rec.flops(4);
      rec.store(out, {i, j});
    }
  }
  rec.end_kernel();

  const AppSkeleton app = rec.infer();
  ASSERT_EQ(app.kernels.size(), 1u);
  const skeleton::KernelSkeleton& kernel = app.kernels[0];
  ASSERT_EQ(kernel.body.size(), 1u);
  ASSERT_EQ(kernel.body[0].refs.size(), 4u);  // 3 load sites + 1 store

  // Find in[i-1][j]: constant -1 in dim 0, coefficient 1 on loop 0.
  bool found_shift = false;
  for (const skeleton::ArrayRef& ref : kernel.body[0].refs) {
    if (ref.kind == RefKind::kLoad && ref.subscripts[0].constant == -1) {
      EXPECT_EQ(ref.subscripts[0].coefficient(0), 1);
      EXPECT_EQ(ref.subscripts[1].coefficient(1), 1);
      EXPECT_TRUE(ref.indirect_dims.empty());
      found_shift = true;
    }
  }
  EXPECT_TRUE(found_shift);
  EXPECT_DOUBLE_EQ(kernel.body[0].flops, 4.0);
}

TEST(Capture, RecoversStridesAndLinearizations) {
  const std::int64_t n = 16;
  Recorder rec("strided");
  const ArrayHandle a = rec.array("a", ElemType::kF32, {4 * n});
  const ArrayHandle b = rec.array("b", ElemType::kF32, {n * n});
  rec.begin_kernel("k");
  rec.declare_loop("i", 0, n, true);
  rec.declare_loop("j", 0, n, false);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      rec.iteration({i, j});
      rec.load(a, {4 * i + 2});      // strided
      rec.load(b, {n * i + j});      // linearized
      rec.flops(1);
    }
  }
  rec.end_kernel();

  const AppSkeleton app = rec.infer();
  const auto& refs = app.kernels[0].body[0].refs;
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].subscripts[0].coefficient(0), 4);
  EXPECT_EQ(refs[0].subscripts[0].constant, 2);
  EXPECT_EQ(refs[1].subscripts[0].coefficient(0), n);
  EXPECT_EQ(refs[1].subscripts[0].coefficient(1), 1);
}

TEST(Capture, DetectsGatherAndItsLoopDependences) {
  const std::int64_t n = 64;
  util::Rng rng(5);
  std::vector<std::int64_t> index_table;
  for (std::int64_t i = 0; i < n; ++i)
    index_table.push_back(rng.uniform_int(0, n - 1));

  Recorder rec("gather");
  const ArrayHandle x = rec.array("x", ElemType::kF32, {n});
  const ArrayHandle y = rec.array("y", ElemType::kF32, {n});
  rec.begin_kernel("k");
  rec.declare_loop("i", 0, n, true);
  rec.declare_loop("r", 0, 4, false);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t r = 0; r < 4; ++r) {
      rec.iteration({i, r});
      rec.load(x, {index_table[(i * 7 + r) % n]});  // depends on i and r
      rec.flops(1);
      rec.store(y, {i});
    }
  }
  rec.end_kernel();

  const AppSkeleton app = rec.infer();
  const auto& refs = app.kernels[0].body[0].refs;
  const skeleton::ArrayRef* gather = nullptr;
  for (const auto& ref : refs)
    if (!ref.indirect_dims.empty()) gather = &ref;
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->indirect_dims, std::vector<int>{0});
  // Both loops move the hidden index.
  EXPECT_EQ(gather->indirect_deps.size(), 2u);
}

TEST(Capture, UniformGatherDependsOnlyOnTheOuterLoop) {
  const std::int64_t rows = 16, cols = 32;
  util::Rng rng(9);
  std::vector<std::int64_t> row_of;
  for (std::int64_t i = 0; i < rows; ++i)
    row_of.push_back(rng.uniform_int(0, rows - 1));

  Recorder rec("csr_like");
  const ArrayHandle b = rec.array("B", ElemType::kF32, {rows, cols});
  const ArrayHandle c = rec.array("C", ElemType::kF32, {rows, cols});
  rec.begin_kernel("k");
  rec.declare_loop("i", 0, rows, true);
  rec.declare_loop("j", 0, cols, true);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      rec.iteration({i, j});
      rec.load(b, {row_of[i], j});  // hidden row depends on i only
      rec.flops(2);
      rec.store(c, {i, j});
    }
  }
  rec.end_kernel();

  const AppSkeleton app = rec.infer();
  const skeleton::ArrayRef* gather = nullptr;
  for (const auto& ref : app.kernels[0].body[0].refs)
    if (!ref.indirect_dims.empty()) gather = &ref;
  ASSERT_NE(gather, nullptr);
  // Dimension 0 hidden, dimension 1 affine in j; deps = {i} only.
  EXPECT_EQ(gather->indirect_dims, std::vector<int>{0});
  EXPECT_EQ(gather->subscripts[1].coefficient(1), 1);
  ASSERT_EQ(gather->indirect_deps.size(), 1u);
  EXPECT_EQ(gather->indirect_deps[0], 0);
}

TEST(Capture, OuterDepthStatements) {
  const std::int64_t n = 16, k = 8;
  Recorder rec("depth");
  const ArrayHandle acc = rec.array("acc", ElemType::kF32, {n});
  const ArrayHandle data = rec.array("data", ElemType::kF32, {n, k});
  rec.begin_kernel("reduce");
  rec.declare_loop("i", 0, n, true);
  rec.declare_loop("r", 0, k, false);
  for (std::int64_t i = 0; i < n; ++i) {
    rec.iteration({i});
    rec.store(acc, {i});
    for (std::int64_t r = 0; r < k; ++r) {
      rec.iteration({i, r});
      rec.load(data, {i, r});
      rec.flops(2);
    }
  }
  rec.end_kernel();

  const AppSkeleton app = rec.infer();
  ASSERT_EQ(app.kernels[0].body.size(), 2u);
  const auto& outer = app.kernels[0].body[0];
  const auto& inner = app.kernels[0].body[1];
  EXPECT_EQ(outer.depth, 1);
  EXPECT_EQ(inner.depth, -1);
  EXPECT_EQ(outer.refs[0].kind, RefKind::kStore);
  EXPECT_DOUBLE_EQ(inner.flops, 2.0);
  EXPECT_EQ(app.kernels[0].statement_iterations(outer), n);
}

TEST(Capture, CapturedHotspotMatchesHandWrittenPlan) {
  // Instrument the real HotSpot update loop on a small grid and compare
  // the inferred skeleton's transfer plan with the hand-written one.
  const std::int64_t n = 32;
  Recorder rec("hotspot");
  const ArrayHandle t_in = rec.array("temp_in", ElemType::kF32, {n, n});
  const ArrayHandle power = rec.array("power", ElemType::kF32, {n, n});
  const ArrayHandle t_out = rec.array("temp_out", ElemType::kF32, {n, n});
  rec.begin_kernel("hotspot_step");
  rec.declare_loop("i", 0, n, true);
  rec.declare_loop("j", 0, n, true);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      rec.iteration({i, j});
      rec.load(t_in, {i, j}, "c");
      if (i > 0) rec.load(t_in, {i - 1, j}, "n");
      if (i < n - 1) rec.load(t_in, {i + 1, j}, "s");
      if (j > 0) rec.load(t_in, {i, j - 1}, "w");
      if (j < n - 1) rec.load(t_in, {i, j + 1}, "e");
      rec.load(power, {i, j});
      rec.flops(12);
      rec.special(3);
      rec.store(t_out, {i, j});
    }
  }
  rec.end_kernel();

  const AppSkeleton captured = rec.infer();
  const AppSkeleton handwritten = workloads::hotspot_skeleton(n, 1);

  dataflow::UsageAnalyzer analyzer;
  const auto plan_captured = analyzer.analyze(captured);
  const auto plan_handwritten = analyzer.analyze(handwritten);
  EXPECT_EQ(plan_captured.input_bytes(), plan_handwritten.input_bytes());
  EXPECT_EQ(plan_captured.output_bytes(), plan_handwritten.output_bytes());
  EXPECT_EQ(plan_captured.transfer_count(),
            plan_handwritten.transfer_count());

  // And the captured skeleton serializes cleanly.
  EXPECT_NO_THROW(skeleton::serialize_skeleton(captured));
}

TEST(Capture, CapturedSradMatchesHandWrittenPlan) {
  // Instrument both SRAD kernels (the real reference's structure: five
  // temporaries, image in and out) and compare transfer plans with the
  // hand-written skeleton.
  const std::int64_t n = 24;
  Recorder rec("srad");
  const ArrayHandle image = rec.array("image", ElemType::kF32, {n, n});
  const ArrayHandle coef = rec.array("c", ElemType::kF32, {n, n});
  const ArrayHandle d_n = rec.array("dN", ElemType::kF32, {n, n});
  const ArrayHandle d_s = rec.array("dS", ElemType::kF32, {n, n});
  const ArrayHandle d_w = rec.array("dW", ElemType::kF32, {n, n});
  const ArrayHandle d_e = rec.array("dE", ElemType::kF32, {n, n});
  for (ArrayHandle t : {coef, d_n, d_s, d_w, d_e}) rec.temporary(t);

  rec.begin_kernel("srad_prep");
  rec.declare_loop("i", 0, n, true);
  rec.declare_loop("j", 0, n, true);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      rec.iteration({i, j});
      rec.load(image, {i, j}, "c");
      if (i > 0) rec.load(image, {i - 1, j}, "n");
      if (i < n - 1) rec.load(image, {i + 1, j}, "s");
      if (j > 0) rec.load(image, {i, j - 1}, "w");
      if (j < n - 1) rec.load(image, {i, j + 1}, "e");
      rec.flops(28);
      rec.special(2);
      rec.store(d_n, {i, j});
      rec.store(d_s, {i, j});
      rec.store(d_w, {i, j});
      rec.store(d_e, {i, j});
      rec.store(coef, {i, j});
    }
  }
  rec.end_kernel();

  rec.begin_kernel("srad_update");
  rec.declare_loop("i", 0, n, true);
  rec.declare_loop("j", 0, n, true);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      rec.iteration({i, j});
      rec.load(coef, {i, j}, "cc");
      if (i < n - 1) rec.load(coef, {i + 1, j}, "cs");
      if (j < n - 1) rec.load(coef, {i, j + 1}, "ce");
      rec.load(d_n, {i, j});
      rec.load(d_s, {i, j});
      rec.load(d_w, {i, j});
      rec.load(d_e, {i, j});
      rec.load(image, {i, j}, "jc");
      rec.flops(14);
      rec.store(image, {i, j}, "jout");
    }
  }
  rec.end_kernel();

  const AppSkeleton captured = rec.infer();
  const AppSkeleton handwritten = workloads::srad_skeleton(n, 1);

  dataflow::UsageAnalyzer analyzer;
  const auto plan_captured = analyzer.analyze(captured);
  const auto plan_handwritten = analyzer.analyze(handwritten);
  // Only the image crosses the bus, both ways, in both versions.
  EXPECT_EQ(plan_captured.input_bytes(), plan_handwritten.input_bytes());
  EXPECT_EQ(plan_captured.output_bytes(), plan_handwritten.output_bytes());
  EXPECT_EQ(plan_captured.transfer_count(), 2u);
}

TEST(Capture, ContractsGuardMisuse) {
  Recorder rec("bad");
  const ArrayHandle a = rec.array("a", ElemType::kF32, {8});
  EXPECT_THROW(rec.load(a, {0}), ContractViolation);  // outside a kernel
  rec.begin_kernel("k");
  rec.declare_loop("i", 0, 8, true);
  rec.iteration({0});
  EXPECT_THROW(rec.load(a, {0, 0}), ContractViolation);  // arity
  EXPECT_THROW(rec.iteration({0, 1}), ContractViolation);  // too deep
  EXPECT_THROW(rec.begin_kernel("k2"), ContractViolation);  // nested
  rec.load(a, {0});
  rec.end_kernel();
  EXPECT_NO_THROW(rec.infer());
}

}  // namespace
}  // namespace grophecy::capture
