// Tests for Bounded Regular Section subtraction — unit cases plus a
// brute-force property suite (the result must cover exactly every element
// of a that is outside b when removal is provable, and never lose one).
#include <gtest/gtest.h>

#include <set>

#include "brs/section.h"
#include "brs/section_set.h"
#include "util/rng.h"

namespace grophecy::brs {
namespace {

using skeleton::ArrayDecl;
using skeleton::ElemType;

std::set<std::int64_t> enumerate(const DimSection& s) {
  std::set<std::int64_t> out;
  if (s.is_empty()) return out;
  for (std::int64_t v = s.lower; v <= s.upper; v += s.stride) out.insert(v);
  return out;
}

TEST(DimSubtract, DisjointLeavesUntouched) {
  const auto result = subtract(DimSection::range(0, 9),
                               DimSection::range(20, 30));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], DimSection::range(0, 9));
}

TEST(DimSubtract, FullCoverRemovesEverything) {
  EXPECT_TRUE(subtract(DimSection::range(3, 7),
                       DimSection::range(0, 10)).empty());
}

TEST(DimSubtract, MiddleCutLeavesBothSides) {
  const auto result = subtract(DimSection::range(0, 99),
                               DimSection::range(40, 59));
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], DimSection::range(0, 39));
  EXPECT_EQ(result[1], DimSection::range(60, 99));
}

TEST(DimSubtract, PhaseMismatchRemovesNothing) {
  // Odd elements are not covered by the evens, so nothing may be removed.
  const auto result = subtract(DimSection::range(1, 99, 2),
                               DimSection::range(0, 100, 2));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], DimSection::range(1, 99, 2));
}

TEST(DimSubtract, CompatibleStridesCut) {
  // a = {0,4,8,...,96}, b = evens: all members covered.
  EXPECT_TRUE(subtract(DimSection::range(0, 96, 4),
                       DimSection::range(0, 100, 2)).empty());
}

class DimSubtractProperty : public ::testing::TestWithParam<int> {};

TEST_P(DimSubtractProperty, NeverLosesAnOutsideElement) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 400; ++trial) {
    const DimSection a = DimSection::range(rng.uniform_int(-10, 10),
                                           rng.uniform_int(-10, 50),
                                           rng.uniform_int(1, 6));
    const DimSection b = DimSection::range(rng.uniform_int(-10, 10),
                                           rng.uniform_int(-10, 50),
                                           rng.uniform_int(1, 6));
    const auto pieces = subtract(a, b);

    std::set<std::int64_t> kept;
    for (const DimSection& piece : pieces) {
      for (std::int64_t v : enumerate(piece)) {
        kept.insert(v);
        // Every kept element must come from a.
        EXPECT_TRUE(a.contains_value(v));
      }
    }
    // Every element of a \ b must be kept (conservativeness).
    const auto b_set = enumerate(b);
    for (std::int64_t v : enumerate(a)) {
      if (!b_set.count(v)) {
        EXPECT_TRUE(kept.count(v)) << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimSubtractProperty,
                         ::testing::Values(1, 2, 3));

ArrayDecl grid_decl() { return {"a", ElemType::kF32, {20, 20}, false}; }

Section box(std::int64_t r0, std::int64_t r1, std::int64_t c0,
            std::int64_t c1) {
  Section s = Section::whole(0, grid_decl());
  s.whole_array = false;
  s.dims[0] = DimSection::range(r0, r1);
  s.dims[1] = DimSection::range(c0, c1);
  return s;
}

TEST(SectionSubtract, CornerOverlapCarvesAnL) {
  const auto pieces = subtract(box(0, 9, 0, 9), box(5, 15, 5, 15));
  // Rows [0,4] full width + rows [5,9] columns [0,4].
  std::int64_t kept = 0;
  for (const Section& piece : pieces) kept += piece.element_count();
  EXPECT_EQ(kept, 100 - 25);
}

TEST(SectionSubtract, InexactSubtrahendRemovesNothing) {
  Section approx = box(0, 19, 0, 19);
  approx.exact = false;
  const auto pieces = subtract(box(0, 9, 0, 9), approx);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].element_count(), 100);
}

TEST(SectionSubtract, ContainedVanishes) {
  EXPECT_TRUE(subtract(box(5, 9, 5, 9), box(0, 19, 0, 19)).empty());
}

TEST(SectionSet, SubtractFromAccumulatesAcrossMembers) {
  SectionSet set;
  set.add(box(0, 9, 0, 19));    // top half
  set.add(box(10, 19, 0, 9));   // bottom-left quarter
  const auto remaining = set.subtract_from(box(0, 19, 0, 19));
  std::int64_t kept = 0;
  for (const Section& piece : remaining) kept += piece.element_count();
  EXPECT_EQ(kept, 100);  // bottom-right quarter
  for (const Section& piece : remaining) {
    EXPECT_GE(piece.dims[0].lower, 10);
    EXPECT_GE(piece.dims[1].lower, 10);
  }
}

TEST(SectionSet, SubtractFromEmptySetReturnsInput) {
  SectionSet set;
  const auto remaining = set.subtract_from(box(0, 5, 0, 5));
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].element_count(), 36);
}

}  // namespace
}  // namespace grophecy::brs
