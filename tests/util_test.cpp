// Unit tests for the utility layer: RNG determinism and distribution
// sanity, statistics (the paper's error-magnitude definition), units,
// tables, CSV quoting, and contract checking.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/contracts.h"
#include "util/csv.h"
#include "util/indexed_heap.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace grophecy::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i)
    counts[static_cast<std::size_t>(rng.uniform_int(0, 5))]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMomentsAreRight) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMedianIsParameter) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.lognormal(5.0, 0.3));
  EXPECT_NEAR(median(samples), 5.0, 0.1);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, LognormalZeroSigmaIsDeterministic) {
  Rng rng(17);
  EXPECT_DOUBLE_EQ(rng.lognormal(3.5, 0.0), 3.5);
}

TEST(Rng, FillNormalIsBitwiseTheSequentialStream) {
  // One bulk fill must equal the same number of sequential normal()
  // draws exactly — the cohort engine batches its jitter draws and
  // promises a bitwise-unchanged stream.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{64}, std::size_t{1001}}) {
    Rng sequential(42);
    Rng bulk(42);
    std::vector<double> expect(n);
    for (double& v : expect) v = sequential.normal();
    std::vector<double> got(n);
    bulk.fill_normal(got.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(expect[i], got[i]) << "n=" << n << " i=" << i;
    // The generators stay in lockstep afterwards (including the
    // Box-Muller pair cache: odd n leaves one value cached).
    for (int i = 0; i < 8; ++i)
      ASSERT_EQ(sequential.normal(), bulk.normal());
    ASSERT_EQ(sequential.next_u64(), bulk.next_u64());
  }
}

TEST(Rng, FillNormalSplitsAreBitwiseInvariant) {
  // Any split of one stream into fills and single draws produces the
  // same sequence: a fill may start by consuming a cached normal and end
  // by leaving one behind.
  constexpr std::size_t kTotal = 256;
  Rng sequential(99);
  std::vector<double> expect(kTotal);
  for (double& v : expect) v = sequential.normal();

  const std::vector<std::vector<std::size_t>> splits = {
      {kTotal},
      {1, kTotal - 1},          // fill starts on a cached value
      {3, 5, kTotal - 8},       // odd chunks: every boundary hits the cache
      {128, 128},
      {7, 1, 1, 9, kTotal - 18},
  };
  for (const auto& split : splits) {
    Rng rng(99);
    std::vector<double> got;
    got.reserve(kTotal);
    for (const std::size_t chunk : split) {
      std::vector<double> buf(chunk);
      rng.fill_normal(buf.data(), chunk);
      got.insert(got.end(), buf.begin(), buf.end());
    }
    ASSERT_EQ(got.size(), kTotal);
    for (std::size_t i = 0; i < kTotal; ++i)
      ASSERT_EQ(expect[i], got[i]) << "i=" << i;
  }

  // Mixing single draws between fills also keeps the stream intact.
  Rng mixed(99);
  std::vector<double> got;
  std::vector<double> buf(100);
  mixed.fill_normal(buf.data(), 3);
  got.insert(got.end(), buf.begin(), buf.begin() + 3);
  got.push_back(mixed.normal());
  mixed.fill_normal(buf.data(), 100);
  got.insert(got.end(), buf.begin(), buf.begin() + 100);
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(expect[i], got[i]) << "i=" << i;
}

TEST(Rng, FillLognormalIsBitwiseTheSequentialStream) {
  constexpr std::size_t kTotal = 333;  // odd: exercises the cache tail
  Rng sequential(7);
  std::vector<double> expect(kTotal);
  for (double& v : expect) v = sequential.lognormal(2.5, 0.4);
  Rng bulk(7);
  std::vector<double> got(kTotal);
  bulk.fill_lognormal(2.5, 0.4, got.data(), kTotal);
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_EQ(expect[i], got[i]) << "i=" << i;
  ASSERT_EQ(sequential.lognormal(2.5, 0.4), bulk.lognormal(2.5, 0.4));
}

TEST(Rng, FillZeroLengthLeavesTheStreamUntouched) {
  Rng a(5);
  Rng b(5);
  a.fill_normal(nullptr, 0);
  a.fill_lognormal(1.0, 0.1, nullptr, 0);
  ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.2, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(23);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ContractsRejectBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.lognormal(-1.0, 0.1), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Stats, MeanMedianBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
}

TEST(Stats, StddevMatchesHandComputation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 10.0, 100.0};
  EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
  const std::vector<double> bad{1.0, -2.0};
  EXPECT_THROW(geometric_mean(bad), ContractViolation);
}

TEST(Stats, ErrorMagnitudeIsPaperDefinition) {
  // |predicted - measured| / measured * 100 (paper §V-A).
  EXPECT_DOUBLE_EQ(error_magnitude_percent(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(error_magnitude_percent(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_difference(90.0, 100.0), -10.0);
  EXPECT_THROW(error_magnitude_percent(1.0, 0.0), ContractViolation);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(29);
  std::vector<double> v;
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    v.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), mean(v), 1e-9);
  EXPECT_NEAR(stats.stddev(), stddev(v), 1e-9);
  EXPECT_DOUBLE_EQ(stats.min(), min_value(v));
  EXPECT_DOUBLE_EQ(stats.max(), max_value(v));
}

TEST(Stats, LeastSquaresRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, MadMatchesHandComputation) {
  // median = 3, absolute deviations {2, 1, 0, 1, 6} => MAD = 1.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 9.0};
  EXPECT_DOUBLE_EQ(mad(v), 1.0);
  const std::vector<double> constant{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(mad(constant), 0.0);
}

TEST(Stats, MadFilterDropsOnlyTheOutliers) {
  // A tight cluster plus one wild point: modified z-score of 100 is huge.
  const std::vector<double> v{10.0, 10.2, 9.8, 10.1, 9.9, 100.0};
  const std::vector<double> kept = mad_filter(v, 3.5);
  ASSERT_EQ(kept.size(), 5u);
  for (double x : kept) EXPECT_LT(x, 11.0);
  // Degenerate spread (MAD == 0) must not divide by zero or drop anything.
  const std::vector<double> constant{5.0, 5.0, 5.0, 7.0};
  EXPECT_EQ(mad_filter(constant, 3.5).size(), constant.size());
}

TEST(Stats, TrimmedMeanDiscardsTheTails) {
  const std::vector<double> v{0.0, 10.0, 10.0, 10.0, 1000.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0.2), 10.0);  // trims one from each end
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0.0), mean(v));
}

TEST(Stats, TheilSenShrugsOffOutliersLeastSquaresCannot) {
  std::vector<double> x, y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  y[5] = 500.0;  // one corrupted observation
  y[20] = -100.0;
  const LinearFit robust = theil_sen(x, y);
  EXPECT_NEAR(robust.slope, 2.0, 1e-9);
  EXPECT_NEAR(robust.intercept, 3.0, 1e-9);
  const LinearFit naive = least_squares(x, y);
  EXPECT_GT(std::abs(naive.slope - 2.0), 0.1);
}

TEST(Units, ByteFormatting) {
  EXPECT_EQ(format_bytes(1), "1B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2KB");
  EXPECT_EQ(format_bytes(512 * kMiB), "512MB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.00GB");
}

TEST(Units, TimeFormatting) {
  EXPECT_EQ(format_time(12e-6), "12.00 us");
  EXPECT_EQ(format_time(3.5e-3), "3.50 ms");
  EXPECT_EQ(format_time(2.0), "2.00 s");
}

TEST(Units, Bandwidth) {
  EXPECT_DOUBLE_EQ(bandwidth_gbps(2.5e9, 1.0), 2.5);
  EXPECT_THROW(bandwidth_gbps(1.0, 0.0), ContractViolation);
}

TEST(Table, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| alpha | "), std::string::npos);
  EXPECT_NE(out.find("|    22 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), ContractViolation);
}

TEST(Table, Strfmt) {
  EXPECT_EQ(strfmt("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(strfmt("%d/%d", 3, 4), "3/4");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream oss;
  CsvWriter writer(oss);
  writer.write_row({"a", "b,c"});
  EXPECT_EQ(oss.str(), "a,\"b,c\"\n");
}

TEST(Contracts, ViolationMessageNamesLocation) {
  try {
    GROPHECY_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(IndexedMinHeap, StartsAtInfinityAndTracksUpdates) {
  IndexedMinHeap heap;
  heap.reset(4);
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_TRUE(std::isinf(heap.top_key()));

  heap.update(2, 5.0);
  EXPECT_EQ(heap.top(), 2u);
  heap.update(0, 1.0);
  EXPECT_EQ(heap.top(), 0u);
  EXPECT_DOUBLE_EQ(heap.top_key(), 1.0);
  heap.update(0, 9.0);  // increase-key resifts down
  EXPECT_EQ(heap.top(), 2u);
  heap.update(2, std::numeric_limits<double>::infinity());
  EXPECT_EQ(heap.top(), 0u);
  EXPECT_DOUBLE_EQ(heap.key(0), 9.0);
  EXPECT_DOUBLE_EQ(heap.key(3),
                   std::numeric_limits<double>::infinity());
}

TEST(IndexedMinHeap, RandomizedUpdatesMatchLinearScan) {
  constexpr std::size_t kSlots = 17;
  IndexedMinHeap heap;
  heap.reset(kSlots);
  std::vector<double> mirror(kSlots,
                             std::numeric_limits<double>::infinity());
  Rng rng(77);
  for (int step = 0; step < 2000; ++step) {
    const auto slot = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kSlots) - 1));
    const double key = rng.bernoulli(0.1)
                           ? std::numeric_limits<double>::infinity()
                           : rng.uniform(0.0, 1000.0);
    heap.update(slot, key);
    mirror[slot] = key;
    const double expected_min =
        *std::min_element(mirror.begin(), mirror.end());
    EXPECT_EQ(heap.top_key(), expected_min) << "step " << step;
  }
}

TEST(IndexedMinHeap, ResetReinitializesEverySlot) {
  IndexedMinHeap heap;
  heap.reset(3);
  heap.update(1, 2.0);
  heap.reset(2);
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_TRUE(std::isinf(heap.key(0)));
  EXPECT_TRUE(std::isinf(heap.key(1)));
}

}  // namespace
}  // namespace grophecy::util
