// Tests for the data-usage analyzer (paper §III-B): read-before-write
// detection, inter-kernel reuse, temporary hints, the conservative sparse
// rule, iteration independence — and the paper-tied checks that the four
// workloads' transfer volumes match Table I.
#include <gtest/gtest.h>

#include "dataflow/usage_analyzer.h"
#include "skeleton/builder.h"
#include "util/units.h"
#include "workloads/workload.h"

namespace grophecy::dataflow {
namespace {

using skeleton::AffineExpr;
using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ArrayId;
using skeleton::ElemType;
using skeleton::KernelBuilder;

const Transfer* find_transfer(const std::vector<Transfer>& list,
                              const std::string& name) {
  for (const Transfer& t : list)
    if (t.array_name == name) return &t;
  return nullptr;
}

TEST(UsageAnalyzer, InputOutputClassification) {
  AppBuilder builder("io");
  const ArrayId in = builder.array("in", ElemType::kF32, {128});
  const ArrayId out = builder.array("out", ElemType::kF32, {128});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 128);
  k.statement(1.0).load(in, {k.var("i")}).store(out, {k.var("i")});
  const AppSkeleton app = builder.build();

  const TransferPlan plan = UsageAnalyzer().analyze(app);
  ASSERT_EQ(plan.host_to_device.size(), 1u);
  ASSERT_EQ(plan.device_to_host.size(), 1u);
  EXPECT_EQ(plan.host_to_device[0].array, in);
  EXPECT_EQ(plan.device_to_host[0].array, out);
  EXPECT_EQ(plan.input_bytes(), 512u);
  EXPECT_EQ(plan.output_bytes(), 512u);
  EXPECT_EQ(plan.transfer_count(), 2u);
}

TEST(UsageAnalyzer, ProducerConsumerArrayNeverCrossesTheBus) {
  // Kernel 1 writes mid; kernel 2 reads mid: the data stays on the GPU.
  AppBuilder builder("chain");
  const ArrayId in = builder.array("in", ElemType::kF32, {64});
  const ArrayId mid = builder.array("mid", ElemType::kF32, {64});
  const ArrayId out = builder.array("out", ElemType::kF32, {64});
  KernelBuilder& k1 = builder.kernel("produce");
  k1.parallel_loop("i", 64);
  k1.statement(1.0).load(in, {k1.var("i")}).store(mid, {k1.var("i")});
  KernelBuilder& k2 = builder.kernel("consume");
  k2.parallel_loop("i", 64);
  k2.statement(1.0).load(mid, {k2.var("i")}).store(out, {k2.var("i")});
  const AppSkeleton app = builder.build();

  const TransferPlan plan = UsageAnalyzer().analyze(app);
  EXPECT_EQ(find_transfer(plan.host_to_device, "mid"), nullptr);
  // mid is written and not hinted temporary -> still copied back.
  EXPECT_NE(find_transfer(plan.device_to_host, "mid"), nullptr);
  EXPECT_NE(find_transfer(plan.host_to_device, "in"), nullptr);
}

TEST(UsageAnalyzer, PartialWriteShrinksTheTransferToTheUncoveredHalf) {
  // Kernel 1 writes the first half; kernel 2 reads everything: only the
  // unwritten second half must be transferred in (section subtraction —
  // the paper's "read but not previously written" taken per piece).
  AppBuilder builder("partial");
  const ArrayId a = builder.array("a", ElemType::kF32, {100});
  const ArrayId out = builder.array("out", ElemType::kF32, {100});
  KernelBuilder& k1 = builder.kernel("half");
  k1.parallel_loop("i", 50);
  k1.statement(1.0).store(a, {k1.var("i")});
  KernelBuilder& k2 = builder.kernel("all");
  k2.parallel_loop("i", 100);
  k2.statement(1.0).load(a, {k2.var("i")}).store(out, {k2.var("i")});
  const AppSkeleton app = builder.build();

  const TransferPlan plan = UsageAnalyzer().analyze(app);
  const Transfer* t = find_transfer(plan.host_to_device, "a");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->bytes, 200u);  // elements [50, 99] only
  EXPECT_EQ(t->section.dims[0].lower, 50);
  EXPECT_EQ(t->section.dims[0].upper, 99);
}

TEST(UsageAnalyzer, CoveredReadNeedsNoInput) {
  // Kernel 1 writes all of a; kernel 2 reads a subrange: covered.
  AppBuilder builder("covered");
  const ArrayId a = builder.array("a", ElemType::kF32, {100});
  KernelBuilder& k1 = builder.kernel("fill");
  k1.parallel_loop("i", 100);
  k1.statement(1.0).store(a, {k1.var("i")});
  KernelBuilder& k2 = builder.kernel("read");
  k2.parallel_loop("i", 40);
  k2.statement(1.0).load(a, {k2.var("i", 1, 10)});
  const AppSkeleton app = builder.build();

  const TransferPlan plan = UsageAnalyzer().analyze(app);
  EXPECT_EQ(find_transfer(plan.host_to_device, "a"), nullptr);
}

TEST(UsageAnalyzer, InPlaceUpdateIsBothInputAndOutput) {
  AppBuilder builder("inplace");
  const ArrayId a = builder.array("a", ElemType::kF32, {64});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 64);
  k.statement(1.0).load(a, {k.var("i")}).store(a, {k.var("i")});
  const AppSkeleton app = builder.build();

  const TransferPlan plan = UsageAnalyzer().analyze(app);
  EXPECT_NE(find_transfer(plan.host_to_device, "a"), nullptr);
  EXPECT_NE(find_transfer(plan.device_to_host, "a"), nullptr);
}

TEST(UsageAnalyzer, TemporaryHintSkipsCopyBack) {
  AppBuilder builder("tmp");
  const ArrayId in = builder.array("in", ElemType::kF32, {64});
  const ArrayId scratch = builder.array("scratch", ElemType::kF32, {64});
  builder.temporary(scratch);
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 64);
  k.statement(1.0).load(in, {k.var("i")}).store(scratch, {k.var("i")});
  const AppSkeleton app = builder.build();

  const TransferPlan plan = UsageAnalyzer().analyze(app);
  EXPECT_EQ(find_transfer(plan.device_to_host, "scratch"), nullptr);
  EXPECT_TRUE(plan.device_to_host.empty());
}

TEST(UsageAnalyzer, SparseArraysUseConservativeWholeArrayRule) {
  AppBuilder builder("sparse");
  const ArrayId vals =
      builder.array("vals", ElemType::kF64, {1000}, /*sparse=*/true);
  const ArrayId out = builder.array("out", ElemType::kF32, {8});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0)
      .load(vals, {AffineExpr::make_constant(0)})
      .store(out, {k.var("i")});
  const AppSkeleton app = builder.build();

  const TransferPlan plan = UsageAnalyzer().analyze(app);
  const Transfer* t = find_transfer(plan.host_to_device, "vals");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->bytes, 8000u);  // every element, though only [0] is named
}

TEST(UsageAnalyzer, PlanIsIndependentOfIterationCount) {
  // Paper §IV-B: input moves once before the first iteration, output once
  // after the last, so the plan must not scale with iterations.
  for (const auto& workload : workloads::paper_workloads()) {
    const auto sizes = workload->paper_data_sizes();
    const AppSkeleton once = workload->make_skeleton(sizes.front(), 1);
    const AppSkeleton many = workload->make_skeleton(sizes.front(), 64);
    const TransferPlan plan_once = UsageAnalyzer().analyze(once);
    const TransferPlan plan_many = UsageAnalyzer().analyze(many);
    EXPECT_EQ(plan_once.input_bytes(), plan_many.input_bytes())
        << workload->name();
    EXPECT_EQ(plan_once.output_bytes(), plan_many.output_bytes())
        << workload->name();
  }
}

TEST(UsageAnalyzer, ClassifySummarizesRoles) {
  AppBuilder builder("roles");
  const ArrayId in = builder.array("in", ElemType::kF32, {8});
  const ArrayId tmp = builder.array("tmp", ElemType::kF32, {8});
  builder.temporary(tmp);
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0).load(in, {k.var("i")}).store(tmp, {k.var("i")});
  const AppSkeleton app = builder.build();

  const auto usages = UsageAnalyzer().classify(app);
  ASSERT_EQ(usages.size(), 2u);
  EXPECT_TRUE(usages[0].read_before_write);
  EXPECT_FALSE(usages[0].written);
  EXPECT_TRUE(usages[1].written);
  EXPECT_TRUE(usages[1].temporary);
}

// --- paper-tied transfer volumes (Table I, decimal MB, ±7%) ---

struct TableOneVolume {
  const char* workload;
  std::size_t size_index;
  double input_mb;
  double output_mb;
};

class TransferVolumes : public ::testing::TestWithParam<TableOneVolume> {};

TEST_P(TransferVolumes, MatchTableOne) {
  const TableOneVolume expected = GetParam();
  const auto all = workloads::paper_workloads();
  const workloads::Workload* workload = nullptr;
  for (const auto& w : all)
    if (w->name() == expected.workload) workload = w.get();
  ASSERT_NE(workload, nullptr);

  const auto sizes = workload->paper_data_sizes();
  const AppSkeleton app =
      workload->make_skeleton(sizes[expected.size_index], 1);
  const TransferPlan plan = UsageAnalyzer().analyze(app);

  const double in_mb = util::bytes_to_mb(
      static_cast<double>(plan.input_bytes()));
  const double out_mb = util::bytes_to_mb(
      static_cast<double>(plan.output_bytes()));
  EXPECT_NEAR(in_mb, expected.input_mb, expected.input_mb * 0.07);
  EXPECT_NEAR(out_mb, expected.output_mb, expected.output_mb * 0.07);
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, TransferVolumes,
    ::testing::Values(TableOneVolume{"CFD", 0, 6.3, 1.9},
                      TableOneVolume{"CFD", 1, 12.6, 3.7},
                      TableOneVolume{"CFD", 2, 15.1, 4.4},
                      TableOneVolume{"HotSpot", 1, 2.0, 1.0},
                      TableOneVolume{"HotSpot", 2, 8.0, 4.0},
                      TableOneVolume{"SRAD", 0, 4.2, 4.2},
                      TableOneVolume{"SRAD", 1, 16.8, 16.8},
                      TableOneVolume{"SRAD", 2, 67.1, 67.1},
                      TableOneVolume{"Stassuij", 0, 8.7, 4.3}),
    [](const ::testing::TestParamInfo<TableOneVolume>& param_info) {
      return std::string(param_info.param.workload) + "_" +
             std::to_string(param_info.param.size_index);
    });

}  // namespace
}  // namespace grophecy::dataflow
