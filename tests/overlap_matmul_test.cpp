// Tests for the overlap (streamed offload) analyzer and the Figure-1
// matmul workload (skeleton, reference numerics, and the seq-tiling
// transformation the explorer applies to it).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/overlap.h"
#include "dataflow/usage_analyzer.h"
#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "sim/gpu_sim.h"
#include "skeleton/builder.h"
#include "util/contracts.h"
#include "workloads/matmul.h"

namespace grophecy {
namespace {

skeleton::AppSkeleton streaming_app(std::int64_t n) {
  skeleton::AppBuilder builder("stream");
  const auto a = builder.array("a", skeleton::ElemType::kF32, {n});
  const auto b = builder.array("b", skeleton::ElemType::kF32, {n});
  skeleton::KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", n);
  k.statement(1.0).load(a, {k.var("i")}).store(b, {k.var("i")});
  return builder.build();
}

class OverlapTest : public ::testing::Test {
 protected:
  core::Grophecy engine_{hw::anl_eureka()};
};

TEST_F(OverlapTest, OneChunkEqualsSerial) {
  const core::ProjectionReport report =
      engine_.project(streaming_app(1 << 22));
  core::OverlapAnalyzer analyzer(engine_.bus_model());
  const core::OverlapProjection one = analyzer.at_chunks(report, 1);
  EXPECT_NEAR(one.overlapped_s, one.serial_s, one.serial_s * 0.01);
  EXPECT_FALSE(one.profitable());
}

TEST_F(OverlapTest, PipeliningHelpsTransferDominatedKernels) {
  const core::ProjectionReport report =
      engine_.project(streaming_app(1 << 24));
  core::OverlapAnalyzer analyzer(engine_.bus_model());
  const core::OverlapProjection best = analyzer.best(report);
  EXPECT_TRUE(best.profitable());
  EXPECT_GT(best.chunks, 1);
  EXPECT_GT(best.speedup(), 1.2);
  // But it cannot beat the slowest stage: total >= max(h2d, kernel, d2h).
  const double h2d = engine_.bus_model().predict_seconds(
      report.plan.input_bytes(), hw::Direction::kHostToDevice);
  EXPECT_GT(best.overlapped_s, h2d * 0.49);  // two input arrays split it
}

TEST_F(OverlapTest, ExcessiveChunkingPaysAlpha) {
  const core::ProjectionReport report =
      engine_.project(streaming_app(1 << 18));
  core::OverlapAnalyzer analyzer(engine_.bus_model(), /*max_chunks=*/4096);
  const core::OverlapProjection best = analyzer.best(report);
  const core::OverlapProjection extreme = analyzer.at_chunks(report, 4096);
  EXPECT_GT(extreme.overlapped_s, best.overlapped_s);
}

TEST_F(OverlapTest, MinChunksForMemoryCoversOversizedApps) {
  const core::ProjectionReport report =
      engine_.project(streaming_app(1 << 24));  // 128 MB footprint
  core::OverlapAnalyzer analyzer(engine_.bus_model());
  // Fits easily: one chunk.
  EXPECT_EQ(analyzer.min_chunks_for_memory(report, 1ULL << 30), 1);
  // 128 MB footprint, 64 MB device: double buffering needs 256/64 = 4.
  EXPECT_EQ(analyzer.min_chunks_for_memory(report, 64ULL << 20), 4);
  // Tiny device: many chunks, rounded up.
  EXPECT_EQ(analyzer.min_chunks_for_memory(report, 100ULL << 20),
            static_cast<int>((2ULL * report.device_footprint_bytes +
                              (100ULL << 20) - 1) /
                             (100ULL << 20)));
  EXPECT_THROW(analyzer.min_chunks_for_memory(report, 0),
               ContractViolation);
}

TEST_F(OverlapTest, RequiresMeaningfulReport) {
  core::OverlapAnalyzer analyzer(engine_.bus_model());
  core::ProjectionReport empty;
  EXPECT_THROW(analyzer.at_chunks(empty, 2), ContractViolation);
  EXPECT_THROW(core::OverlapAnalyzer(engine_.bus_model(), 0),
               ContractViolation);
}

TEST(Matmul, SkeletonShapeAndTransferPlan) {
  const skeleton::AppSkeleton app = workloads::matmul_skeleton(256);
  app.validate();
  EXPECT_EQ(app.kernels.size(), 1u);
  EXPECT_EQ(app.kernels[0].parallel_iterations(), 256 * 256);
  EXPECT_DOUBLE_EQ(app.kernels[0].total_flops(),
                   2.0 * 256.0 * 256.0 * 256.0);

  dataflow::UsageAnalyzer analyzer;
  const dataflow::TransferPlan plan = analyzer.analyze(app);
  EXPECT_EQ(plan.input_bytes(), 2u * 256 * 256 * 4);   // A and B
  EXPECT_EQ(plan.output_bytes(), 1u * 256 * 256 * 4);  // C
}

TEST(Matmul, ExplorerPicksSequentialTiling) {
  const skeleton::AppSkeleton app = workloads::matmul_skeleton(512);
  EXPECT_TRUE(gpumodel::has_reduction_staging_candidates(app,
                                                         app.kernels[0]));
  gpumodel::Explorer explorer(hw::anl_eureka().gpu);
  const gpumodel::ProjectedKernel best =
      explorer.best(app, app.kernels[0]);
  EXPECT_GT(best.variant.seq_tile, 0);

  // Tiling must beat the untiled best by a wide margin (Figure 1's point).
  gpumodel::ExplorerOptions untiled_options;
  untiled_options.seq_tile_factors.clear();
  gpumodel::Explorer untiled(hw::anl_eureka().gpu, untiled_options);
  EXPECT_GT(untiled.best(app, app.kernels[0]).time.total_s,
            best.time.total_s * 2.0);
}

TEST(Matmul, TilingReducesMemoryInstructions) {
  const skeleton::AppSkeleton app = workloads::matmul_skeleton(512);
  gpumodel::Variant untiled;
  gpumodel::Variant tiled;
  tiled.seq_tile = 16;
  const auto kc_untiled = gpumodel::characterize(
      app, app.kernels[0], untiled, hw::anl_eureka().gpu);
  const auto kc_tiled = gpumodel::characterize(
      app, app.kernels[0], tiled, hw::anl_eureka().gpu);
  EXPECT_LT(kc_tiled.mem_insts_per_thread(),
            kc_untiled.mem_insts_per_thread() / 8.0);
  EXPECT_GT(kc_tiled.smem_per_block_bytes, 0u);
  EXPECT_GT(kc_tiled.syncs_per_thread, 0);
}

TEST(Matmul, StencilsAreNotTilingCandidates) {
  // No reduction loop -> the explorer must not enumerate seq tiles.
  skeleton::AppBuilder builder("s");
  const auto a = builder.array("a", skeleton::ElemType::kF32, {64, 64});
  skeleton::KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 64).parallel_loop("j", 64);
  k.statement(1.0).load(a, {k.var("i"), k.var("j")});
  const skeleton::AppSkeleton app = builder.build();
  EXPECT_FALSE(
      gpumodel::has_reduction_staging_candidates(app, app.kernels[0]));
}

TEST(Matmul, ReferenceMatchesNaiveMultiply) {
  workloads::MatmulReference ref(48, /*seed=*/3);
  ref.multiply();
  // Naive check of a few entries.
  const std::int64_t n = ref.size();
  for (std::int64_t i = 0; i < n; i += 13) {
    for (std::int64_t j = 0; j < n; j += 17) {
      float expected = 0.0f;
      for (std::int64_t kk = 0; kk < n; ++kk)
        expected += ref.a()[i * n + kk] * ref.b()[kk * n + j];
      EXPECT_NEAR(ref.c()[i * n + j], expected, 1e-3f)
          << i << "," << j;
    }
  }
}

TEST(Matmul, SimAndModelAgreeWithinModerateGap) {
  // Compute-bound tiled matmul: the unified instruction model keeps the
  // projection within the machine's realism envelope.
  const skeleton::AppSkeleton app = workloads::matmul_skeleton(512);
  gpumodel::Explorer explorer(hw::anl_eureka().gpu);
  const gpumodel::ProjectedKernel best =
      explorer.best(app, app.kernels[0]);
  sim::GpuSimulator sim(hw::anl_eureka().gpu, 1);
  const double measured = sim.expected_launch(best.characteristics).total_s;
  EXPECT_GT(measured, best.time.total_s * 0.99);
  EXPECT_LT(measured, best.time.total_s * 1.8);
}

}  // namespace
}  // namespace grophecy
