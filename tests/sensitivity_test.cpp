// Tests for machine-field scaling and the sensitivity analyzer.
#include <gtest/gtest.h>

#include "core/sensitivity.h"
#include "hw/machine_file.h"
#include "hw/registry.h"
#include "util/contracts.h"
#include "workloads/srad.h"
#include "workloads/stassuij.h"

namespace grophecy::core {
namespace {

TEST(ScaleMachineField, ScalesNumericSkipsStringsRejectsUnknown) {
  hw::MachineSpec machine = hw::anl_eureka();
  const double before = machine.gpu.mem_bandwidth_gbps;
  EXPECT_TRUE(hw::scale_machine_field(machine, "gpu.mem_bandwidth_gbps", 2.0));
  EXPECT_DOUBLE_EQ(machine.gpu.mem_bandwidth_gbps, before * 2.0);

  EXPECT_FALSE(hw::scale_machine_field(machine, "gpu.name", 2.0));
  EXPECT_EQ(machine.gpu.name, hw::anl_eureka().gpu.name);

  EXPECT_THROW(hw::scale_machine_field(machine, "gpu.nonsense", 2.0),
               ContractViolation);
}

TEST(Sensitivity, RankedByAbsoluteElasticityAndDeterministic) {
  const auto app = workloads::stassuij_skeleton({}, 1);
  const auto a = analyze_sensitivity(hw::anl_eureka(), app);
  const auto b = analyze_sensitivity(hw::anl_eureka(), app);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].field, b[i].field);
    EXPECT_DOUBLE_EQ(a[i].elasticity, b[i].elasticity);
    if (i > 0) {
      EXPECT_GE(std::abs(a[i - 1].elasticity), std::abs(a[i].elasticity));
    }
  }
}

TEST(Sensitivity, BusBandwidthMattersWhenTransferDominates) {
  // Stassuij at 1 iteration: the H2D bandwidth must appear with positive
  // elasticity (faster bus -> better GPU speedup), and it must outrank
  // GPU compute-side parameters like the core clock.
  const auto results = analyze_sensitivity(
      hw::anl_eureka(), workloads::stassuij_skeleton({}, 1));
  double h2d = 0.0, clock = 0.0;
  for (const ParameterSensitivity& entry : results) {
    if (entry.field == "pcie.pinned_h2d.asymptotic_gbps")
      h2d = entry.elasticity;
    if (entry.field == "gpu.core_clock_ghz") clock = entry.elasticity;
  }
  EXPECT_GT(h2d, 0.1);
  EXPECT_GT(h2d, std::abs(clock));
}

TEST(Sensitivity, BusFadesWhenTransfersAmortize) {
  // SRAD at 64 iterations: the bus elasticity shrinks and GPU-side
  // parameters take over (the paper's Figs. 8/10/12 as derivatives).
  const auto amortized = analyze_sensitivity(
      hw::anl_eureka(), workloads::srad_skeleton(1024, 64),
      {.perturbation = 0.10, .min_elasticity = 0.0});
  double h2d = 0.0, strongest_gpu = 0.0;
  for (const ParameterSensitivity& entry : amortized) {
    if (entry.field == "pcie.pinned_h2d.asymptotic_gbps")
      h2d = entry.elasticity;
    if (entry.field.rfind("gpu.", 0) == 0)
      strongest_gpu =
          std::max(strongest_gpu, std::abs(entry.elasticity));
  }
  EXPECT_LT(std::abs(h2d), 0.1);
  EXPECT_GT(strongest_gpu, 0.3);
}

TEST(Sensitivity, CpuSpeedCutsBothWays) {
  // A faster CPU baseline always REDUCES the GPU speedup.
  const auto results = analyze_sensitivity(
      hw::anl_eureka(), workloads::srad_skeleton(1024, 4));
  for (const ParameterSensitivity& entry : results) {
    if (entry.field == "cpu.mem_bandwidth_gbps") {
      EXPECT_LT(entry.elasticity, 0.0);
    }
  }
}

TEST(Sensitivity, OptionsValidated) {
  const auto app = workloads::stassuij_skeleton({}, 1);
  EXPECT_THROW(
      analyze_sensitivity(hw::anl_eureka(), app, {.perturbation = 0.0}),
      ContractViolation);
}

}  // namespace
}  // namespace grophecy::core
