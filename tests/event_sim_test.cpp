// Tests for the discrete-event fluid GPU simulator, including
// cross-validation against the wave-based simulator: two independent
// implementations of "the machine" must agree closely for regular kernels
// and diverge in the documented directions for tails and jitter.
#include <gtest/gtest.h>

#include "core/grophecy.h"
#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "sim/event_sim.h"
#include "sim/gpu_sim.h"
#include "skeleton/builder.h"
#include "workloads/srad.h"
#include "workloads/workload.h"

namespace grophecy::sim {
namespace {

using gpumodel::KernelCharacteristics;
using gpumodel::Variant;

hw::GpuSpec g80() { return hw::anl_eureka().gpu; }

skeleton::AppSkeleton streaming_app(std::int64_t n) {
  skeleton::AppBuilder builder("stream");
  const auto a = builder.array("a", skeleton::ElemType::kF32, {n});
  const auto b = builder.array("b", skeleton::ElemType::kF32, {n});
  skeleton::KernelBuilder& k = builder.kernel("copy");
  k.parallel_loop("i", n);
  k.statement(1.0).load(a, {k.var("i")}).store(b, {k.var("i")});
  return builder.build();
}

KernelCharacteristics characterize_first(const skeleton::AppSkeleton& app,
                                         int block = 256) {
  Variant variant;
  variant.block_size = block;
  return gpumodel::characterize(app, app.kernels[0], variant, g80());
}

TEST(EventSim, EngineFlagSelectsReferenceWithIdenticalExpectation) {
  const auto app = streaming_app(1 << 20);
  const KernelCharacteristics kc = characterize_first(app);
  EventGpuSimulator fast(g80(), 1);
  EventGpuSimulator reference(g80(), 1,
                              EventSimOptions{SimEngine::kReference, 0.0});
  EXPECT_EQ(fast.options().engine, SimEngine::kCohort);
  EXPECT_EQ(reference.options().engine, SimEngine::kReference);
  // Jitter-free results are bitwise-equal across engines (the dedicated
  // equivalence suite covers randomized shapes and the jittered paths).
  EXPECT_EQ(fast.expected_launch(kc).total_s,
            reference.expected_launch(kc).total_s);
}

TEST(EventSim, Deterministic) {
  EventGpuSimulator sim(g80(), 1);
  const auto app = streaming_app(1 << 20);
  const KernelCharacteristics kc = characterize_first(app);
  EXPECT_DOUBLE_EQ(sim.expected_launch(kc).total_s,
                   sim.expected_launch(kc).total_s);
  EventGpuSimulator a(g80(), 9), b(g80(), 9);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(a.run_launch_seconds(kc), b.run_launch_seconds(kc));
}

TEST(EventSim, AgreesWithWaveSimOnLargeRegularKernels) {
  // Homogeneous bandwidth-bound kernel, thousands of blocks: greedy vs
  // wave scheduling converge.
  GpuSimulator wave(g80(), 1);
  EventGpuSimulator fluid(g80(), 1);
  for (std::int64_t n : {1 << 20, 1 << 22, 1 << 24}) {
    const auto app = streaming_app(n);
    const KernelCharacteristics kc = characterize_first(app);
    const double wave_time = wave.expected_launch(kc).total_s;
    const double fluid_time = fluid.expected_launch(kc).total_s;
    EXPECT_NEAR(fluid_time, wave_time, wave_time * 0.15) << n;
  }
}

TEST(EventSim, AgreesOnThePaperWorkloads) {
  GpuSimulator wave(g80(), 1);
  EventGpuSimulator fluid(g80(), 1);
  for (const auto& workload : workloads::paper_workloads()) {
    const auto size = workload->paper_data_sizes().back();
    const skeleton::AppSkeleton app = workload->make_skeleton(size, 1);
    gpumodel::Explorer explorer(g80());
    for (const skeleton::KernelSkeleton& kernel : app.kernels) {
      const auto best = explorer.best(app, kernel);
      const double wave_time =
          wave.expected_launch(best.characteristics).total_s;
      const double fluid_time =
          fluid.expected_launch(best.characteristics).total_s;
      EXPECT_NEAR(fluid_time, wave_time, wave_time * 0.30)
          << workload->name() << "/" << kernel.name;
    }
  }
}

TEST(EventSim, GreedySchedulerBeatsWavesOnPartialTails) {
  // One block beyond a full wave: the wave model charges a whole second
  // wave; the greedy scheduler backfills and finishes sooner.
  GpuSimulator wave(g80(), 1);
  EventGpuSimulator fluid(g80(), 1);
  const auto probe = characterize_first(streaming_app(1 << 20));
  const auto occ = gpumodel::compute_occupancy(
      g80(), 256, probe.regs_per_thread, probe.smem_per_block_bytes);
  const std::int64_t wave_threads =
      static_cast<std::int64_t>(occ.blocks_per_sm) * g80().num_sms * 256;
  const auto spill = characterize_first(streaming_app(wave_threads + 256));
  const double wave_body = wave.expected_launch(spill).total_s -
                           g80().kernel_launch_overhead_s;
  const double fluid_body = fluid.expected_launch(spill).total_s -
                            g80().kernel_launch_overhead_s;
  // The tail block backfills immediately and gets the whole chip's
  // bandwidth, but its latency floor does not shrink — so the greedy win
  // is real yet bounded.
  EXPECT_LT(fluid_body, wave_body * 0.95);
  const double full_body = fluid.expected_launch(
                               characterize_first(streaming_app(
                                   wave_threads))).total_s -
                           g80().kernel_launch_overhead_s;
  EXPECT_GT(fluid_body, full_body);
}

TEST(EventSim, JitterAveragesNearExpectation) {
  EventGpuSimulator sim(g80(), 7);
  const auto app = streaming_app(1 << 20);
  const KernelCharacteristics kc = characterize_first(app);
  const double expected = sim.expected_launch(kc).total_s;
  EXPECT_NEAR(sim.measure_launch_seconds(kc, 300), expected,
              expected * 0.03);
}

TEST(EventSim, PluggedIntoTheProjectionPipeline) {
  core::ProjectionOptions detailed;
  detailed.detailed_sim = true;
  core::Grophecy wave_engine(hw::anl_eureka());
  core::Grophecy fluid_engine(hw::anl_eureka(), detailed);

  const skeleton::AppSkeleton app = workloads::srad_skeleton(1024, 1);
  const core::ProjectionReport wave_report = wave_engine.project(app);
  const core::ProjectionReport fluid_report = fluid_engine.project(app);
  // Same predictions (model side untouched); measured kernels close.
  EXPECT_DOUBLE_EQ(wave_report.predicted_kernel_s,
                   fluid_report.predicted_kernel_s);
  EXPECT_NEAR(fluid_report.measured_kernel_s, wave_report.measured_kernel_s,
              wave_report.measured_kernel_s * 0.30);
  // And the paper's conclusion is simulator-agnostic.
  EXPECT_LT(fluid_report.speedup_error_both_pct(),
            fluid_report.speedup_error_kernel_only_pct());
}

}  // namespace
}  // namespace grophecy::sim
