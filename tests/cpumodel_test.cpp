// Tests for the CPU roofline model and CPU timing simulator.
#include <gtest/gtest.h>

#include "cpumodel/cpu_model.h"
#include "cpumodel/cpu_sim.h"
#include "hw/registry.h"
#include "skeleton/builder.h"
#include "util/units.h"

namespace grophecy::cpumodel {
namespace {

using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ArrayId;
using skeleton::ElemType;
using skeleton::KernelBuilder;

hw::CpuSpec e5405() { return hw::anl_eureka().cpu; }

AppSkeleton streaming_app(std::int64_t n, double flops_per_elem) {
  AppBuilder app("stream");
  const ArrayId x = app.array("x", ElemType::kF32, {n});
  const ArrayId y = app.array("y", ElemType::kF32, {n});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", n);
  k.statement(flops_per_elem).load(x, {k.var("i")}).store(y, {k.var("i")});
  return app.build();
}

TEST(CpuMemoryTraffic, CacheResidentUsesUniqueBytes) {
  brs::KernelFootprint fp;
  fp.unique_bytes_read = 1000;
  fp.unique_bytes_written = 500;
  fp.dynamic_load_bytes = 100000;
  fp.dynamic_store_bytes = 50000;
  // Fits in a 1 MB cache: unique read + 2x written (write-allocate).
  EXPECT_DOUBLE_EQ(cpu_memory_traffic_bytes(fp, 1 << 20), 2000.0);
}

TEST(CpuMemoryTraffic, StreamingWorkingSetPaysDynamicTraffic) {
  brs::KernelFootprint fp;
  fp.unique_bytes_read = 64 << 20;
  fp.unique_bytes_written = 64 << 20;
  fp.dynamic_load_bytes = 512 << 20;
  fp.dynamic_store_bytes = 64 << 20;
  const double small_cache = cpu_memory_traffic_bytes(fp, 1 << 20);
  const double big_cache = cpu_memory_traffic_bytes(fp, 256 << 20);
  EXPECT_GT(small_cache, big_cache);
  // Never below the unique-byte floor.
  EXPECT_GE(small_cache, 64.0 * (1 << 20) + 2.0 * 64.0 * (1 << 20));
}

TEST(CpuMemoryTraffic, BlendIsMonotonicInCacheSize) {
  brs::KernelFootprint fp;
  fp.unique_bytes_read = 16 << 20;
  fp.unique_bytes_written = 0;
  fp.dynamic_load_bytes = 256 << 20;
  double prev = cpu_memory_traffic_bytes(fp, 1 << 20);
  for (std::uint64_t llc = 2 << 20; llc <= 64 << 20; llc *= 2) {
    const double t = cpu_memory_traffic_bytes(fp, llc);
    EXPECT_LE(t, prev + 1.0);
    prev = t;
  }
}

TEST(CpuModel, BandwidthBoundForStreaming) {
  CpuModel model(e5405());
  const AppSkeleton app = streaming_app(1 << 24, 1.0);
  const CpuKernelEstimate est = model.estimate_kernel(app, app.kernels[0]);
  EXPECT_GT(est.memory_s, est.compute_s);
  EXPECT_GT(est.total_s, est.memory_s);  // efficiency + overhead
}

TEST(CpuModel, ComputeBoundForHeavyArithmetic) {
  CpuModel model(e5405());
  const AppSkeleton app = streaming_app(1 << 20, 2000.0);
  const CpuKernelEstimate est = model.estimate_kernel(app, app.kernels[0]);
  EXPECT_GT(est.compute_s, est.memory_s);
}

TEST(CpuModel, AppTimeScalesWithIterations) {
  CpuModel model(e5405());
  AppBuilder builder("iter");
  const ArrayId x = builder.array("x", ElemType::kF32, {1 << 20});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 1 << 20);
  k.statement(1.0).load(x, {k.var("i")}).store(x, {k.var("i")});
  builder.iterations(10);
  const AppSkeleton app10 = builder.build();
  AppSkeleton app1 = app10;
  app1.iterations = 1;
  EXPECT_NEAR(model.estimate_app_seconds(app10),
              10.0 * model.estimate_app_seconds(app1), 1e-12);
}

TEST(CpuSimulator, JitterAveragesToExpected) {
  CpuSimulator sim(e5405(), 3);
  const AppSkeleton app = streaming_app(1 << 22, 2.0);
  const double expected = sim.expected_app_seconds(app);
  EXPECT_NEAR(sim.measure_app_seconds(app, 2000), expected,
              expected * 0.01);
}

TEST(CpuSimulator, SlowerThanTheIdealModel) {
  // The simulated machine achieves less than the analytical roofline.
  CpuModel model(e5405());
  CpuSimulator sim(e5405(), 3);
  const AppSkeleton app = streaming_app(1 << 24, 1.0);
  EXPECT_GT(sim.expected_app_seconds(app),
            model.estimate_app_seconds(app));
}

TEST(CpuSimulator, DeterministicAcrossInstances) {
  CpuSimulator a(e5405(), 9), b(e5405(), 9);
  const AppSkeleton app = streaming_app(1 << 20, 1.0);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(a.run_app_seconds(app), b.run_app_seconds(app));
}

}  // namespace
}  // namespace grophecy::cpumodel
