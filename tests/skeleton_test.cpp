// Unit tests for the code-skeleton IR: affine expressions, loops,
// statement depths, the fluent builders, structural validation, and the
// pretty printer.
#include <gtest/gtest.h>

#include "skeleton/builder.h"
#include "skeleton/print.h"
#include "skeleton/skeleton.h"
#include "util/contracts.h"

namespace grophecy::skeleton {
namespace {

TEST(ElemType, SizesAndNames) {
  EXPECT_EQ(elem_size_bytes(ElemType::kF32), 4u);
  EXPECT_EQ(elem_size_bytes(ElemType::kF64), 8u);
  EXPECT_EQ(elem_size_bytes(ElemType::kI32), 4u);
  EXPECT_EQ(elem_size_bytes(ElemType::kI64), 8u);
  EXPECT_EQ(elem_size_bytes(ElemType::kComplexF32), 8u);
  EXPECT_EQ(elem_size_bytes(ElemType::kComplexF64), 16u);
  EXPECT_EQ(elem_type_name(ElemType::kComplexF64), "c128");
}

TEST(ArrayDecl, CountsAndBytes) {
  ArrayDecl decl{"m", ElemType::kF64, {4, 8, 2}, false};
  EXPECT_EQ(decl.element_count(), 64);
  EXPECT_EQ(decl.bytes(), 512u);
}

TEST(AffineExpr, BuildEvaluateShift) {
  const AffineExpr c = AffineExpr::make_constant(7);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.evaluate(std::vector<std::int64_t>{}), 7);

  const AffineExpr e = AffineExpr::make_var(1, 3, 10);  // 3*loop1 + 10
  EXPECT_EQ(e.coefficient(1), 3);
  EXPECT_EQ(e.coefficient(0), 0);
  const std::vector<std::int64_t> values{100, 5};
  EXPECT_EQ(e.evaluate(values), 25);
  EXPECT_EQ(e.shifted(-2).evaluate(values), 23);
}

TEST(Loop, TripCounts) {
  Loop l{"i", 0, 10, 1, true};
  EXPECT_EQ(l.trip_count(), 10);
  l.step = 3;
  EXPECT_EQ(l.trip_count(), 4);  // 0,3,6,9
  l.upper = 0;
  EXPECT_EQ(l.trip_count(), 0);
}

AppSkeleton two_kernel_app(std::int64_t n) {
  AppBuilder app("demo");
  const ArrayId a = app.array("a", ElemType::kF32, {n});
  const ArrayId b = app.array("b", ElemType::kF32, {n});
  KernelBuilder& k1 = app.kernel("produce");
  k1.parallel_loop("i", n);
  k1.statement(2.0).load(a, {k1.var("i")}).store(b, {k1.var("i")});
  KernelBuilder& k2 = app.kernel("consume");
  k2.parallel_loop("i", n);
  k2.statement(1.0).load(b, {k2.var("i")}).store(a, {k2.var("i")});
  return app.build();
}

TEST(Builder, BuildsValidTwoKernelApp) {
  const AppSkeleton app = two_kernel_app(64);
  EXPECT_EQ(app.kernels.size(), 2u);
  EXPECT_EQ(app.arrays.size(), 2u);
  EXPECT_EQ(app.array_id("b"), 1);
  EXPECT_EQ(app.kernels[0].total_iterations(), 64);
  EXPECT_EQ(app.kernels[0].parallel_iterations(), 64);
  EXPECT_DOUBLE_EQ(app.kernels[0].total_flops(), 128.0);
}

TEST(Builder, ManyKernelsKeepBuildersValid) {
  // KernelBuilder handles must survive vector reallocation.
  AppBuilder app("many");
  const ArrayId a = app.array("a", ElemType::kF32, {16});
  std::vector<KernelBuilder*> builders;
  for (int k = 0; k < 20; ++k)
    builders.push_back(&app.kernel("k" + std::to_string(k)));
  for (KernelBuilder* k : builders) {
    k->parallel_loop("i", 16);
    k->statement(1.0).load(a, {k->var("i")});
  }
  const AppSkeleton skel = app.build();
  EXPECT_EQ(skel.kernels.size(), 20u);
  for (const KernelSkeleton& kernel : skel.kernels)
    EXPECT_EQ(kernel.body.size(), 1u);
}

TEST(Builder, StatementDepthControlsIterations) {
  AppBuilder app("depth");
  const ArrayId a = app.array("a", ElemType::kF32, {8});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8).loop("j", 5);
  k.statement(1.0).at_depth(1).load(a, {k.var("i")});
  k.statement(1.0);
  const AppSkeleton skel = app.build();
  EXPECT_EQ(skel.kernels[0].statement_iterations(skel.kernels[0].body[0]), 8);
  EXPECT_EQ(skel.kernels[0].statement_iterations(skel.kernels[0].body[1]),
            40);
  EXPECT_DOUBLE_EQ(skel.kernels[0].total_flops(), 48.0);
}

TEST(Builder, TemporariesAndIterations) {
  AppBuilder app("t");
  const ArrayId a = app.array("a", ElemType::kF32, {8});
  const ArrayId tmp = app.array("tmp", ElemType::kF32, {8});
  app.temporary(tmp).iterations(5);
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0).load(a, {k.var("i")}).store(tmp, {k.var("i")});
  const AppSkeleton skel = app.build();
  EXPECT_TRUE(skel.is_temporary(tmp));
  EXPECT_FALSE(skel.is_temporary(a));
  EXPECT_EQ(skel.iterations, 5);
}

TEST(Builder, RejectsUnknownLoopName) {
  AppBuilder app("bad");
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8);
  EXPECT_THROW(k.var("nope"), ContractViolation);
}

TEST(Builder, RejectsRefBeforeStatement) {
  AppBuilder app("bad");
  const ArrayId a = app.array("a", ElemType::kF32, {8});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8);
  EXPECT_THROW(k.load(a, {k.var("i")}), ContractViolation);
}

TEST(Builder, RejectsLoopAfterStatement) {
  AppBuilder app("bad");
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0);
  EXPECT_THROW(k.loop("j", 4), ContractViolation);
}

TEST(Validate, RejectsSubscriptArityMismatch) {
  AppBuilder app("bad");
  const ArrayId a = app.array("a", ElemType::kF32, {8, 8});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0).load(a, {k.var("i")});  // 1 subscript for 2D array
  EXPECT_THROW(app.build(), ContractViolation);
}

TEST(Validate, RejectsDeepRefAtShallowStatement) {
  AppBuilder app("bad");
  const ArrayId a = app.array("a", ElemType::kF32, {8});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8).loop("j", 4);
  k.statement(1.0).load(a, {k.var("j")}).at_depth(1);
  EXPECT_THROW(app.build(), ContractViolation);
}

TEST(Validate, RejectsGatherDepsWithoutDims) {
  AppBuilder app("bad");
  const ArrayId a = app.array("a", ElemType::kF32, {8});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 8);
  k.statement(1.0);
  k.load_gather(a, {AffineExpr::make_constant(0)}, /*indirect_dims=*/{},
                /*dep_loops=*/{"i"});
  EXPECT_THROW(app.build(), ContractViolation);
}

TEST(Print, RendersLoopsRefsAndMarkers) {
  AppBuilder builder("printable");
  const ArrayId a = builder.array("img", ElemType::kF32, {8, 8});
  const ArrayId t = builder.array("tmp", ElemType::kF32, {8, 8});
  builder.temporary(t);
  KernelBuilder& k = builder.kernel("stencil");
  k.parallel_loop("i", 8).parallel_loop("j", 8);
  k.statement(3.0)
      .load(a, {k.var("i").shifted(-1), k.var("j")})
      .store(t, {k.var("i"), k.var("j")});
  const AppSkeleton app = builder.build();

  const std::string text = to_string(app);
  EXPECT_NE(text.find("app printable"), std::string::npos);
  EXPECT_NE(text.find("parallel_for i"), std::string::npos);
  EXPECT_NE(text.find("img[i-1][j]"), std::string::npos);
  EXPECT_NE(text.find("store tmp[i][j]"), std::string::npos);
  EXPECT_NE(text.find("temporary"), std::string::npos);
}

TEST(Print, AffineExpressionForms) {
  AppBuilder builder("e");
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 8).loop("j", 4);
  const AppSkeleton app = builder.build();
  const KernelSkeleton& kernel = app.kernels[0];
  EXPECT_EQ(to_string(AffineExpr::make_constant(3), kernel), "3");
  EXPECT_EQ(to_string(AffineExpr::make_var(0), kernel), "i");
  EXPECT_EQ(to_string(AffineExpr::make_var(1, 2, 1), kernel), "2*j+1");
  EXPECT_EQ(to_string(AffineExpr::make_var(0, -1), kernel), "-i");
}

}  // namespace
}  // namespace grophecy::skeleton
