// Tests for the .gskel text format: parsing, error reporting with line
// numbers, serialization, and round-trip equivalence for every bundled
// workload (parse(serialize(app)) reproduces the same structure and the
// same transfer plan / projection inputs).
#include <gtest/gtest.h>

#include <fstream>

#include "brs/footprint.h"
#include "dataflow/usage_analyzer.h"
#include "skeleton/parse.h"
#include "skeleton/serialize.h"
#include "workloads/workload.h"

namespace grophecy::skeleton {
namespace {

constexpr const char* kVectorAdd = R"(
# the paper's motivating example (section II-B)
app vector_add
array a f32[1024]
array b f32[1024]
array c f32[1024]

kernel add
  parallel for i in 0..1024
  stmt flops=1
    load a[i]
    load b[i]
    store c[i]
)";

TEST(Parse, VectorAddStructure) {
  const AppSkeleton app = parse_skeleton(kVectorAdd);
  EXPECT_EQ(app.name, "vector_add");
  EXPECT_EQ(app.iterations, 1);
  ASSERT_EQ(app.arrays.size(), 3u);
  ASSERT_EQ(app.kernels.size(), 1u);
  const KernelSkeleton& kernel = app.kernels[0];
  EXPECT_EQ(kernel.name, "add");
  ASSERT_EQ(kernel.loops.size(), 1u);
  EXPECT_TRUE(kernel.loops[0].parallel);
  EXPECT_EQ(kernel.loops[0].trip_count(), 1024);
  ASSERT_EQ(kernel.body.size(), 1u);
  EXPECT_EQ(kernel.body[0].refs.size(), 3u);
  EXPECT_DOUBLE_EQ(kernel.total_flops(), 1024.0);
}

TEST(Parse, StencilShiftsAndAttributes) {
  const AppSkeleton app = parse_skeleton(R"(
app stencil iterations=7
array in f32[64][64]
array out f32[64][64]
array scratch f32[64][64] temporary
kernel step syncs=2
  parallel for i in 0..64
  parallel for j in 0..64
  stmt flops=6 special=1.5
    load in[i-1][j]
    load in[i+1][j]
    load in[i][2*j+3]
    store out[i][j]
    store scratch[i][j]
)");
  EXPECT_EQ(app.iterations, 7);
  EXPECT_TRUE(app.is_temporary(app.array_id("scratch")));
  const KernelSkeleton& kernel = app.kernels[0];
  EXPECT_EQ(kernel.explicit_syncs, 2);
  const Statement& stmt = kernel.body[0];
  EXPECT_DOUBLE_EQ(stmt.special_ops, 1.5);
  EXPECT_EQ(stmt.refs[0].subscripts[0].constant, -1);
  EXPECT_EQ(stmt.refs[1].subscripts[0].constant, 1);
  EXPECT_EQ(stmt.refs[2].subscripts[1].coefficient(1), 2);
  EXPECT_EQ(stmt.refs[2].subscripts[1].constant, 3);
}

TEST(Parse, GatherWithHiddenDimsAndDeps) {
  const AppSkeleton app = parse_skeleton(R"(
app spmm
array vals f64[512] sparse
array B c128[64][128]
array C c128[64][128]
kernel k
  parallel for i in 0..64
  parallel for j in 0..128
  for k in 0..8
  stmt flops=4
    load vals[?] deps=i,k
    load B[?][j] deps=i,k
  stmt flops=2 depth=2
    load C[i][j]
    store C[i][j]
)");
  const KernelSkeleton& kernel = app.kernels[0];
  const ArrayRef& vals_ref = kernel.body[0].refs[0];
  EXPECT_EQ(vals_ref.indirect_dims, std::vector<int>{0});
  EXPECT_EQ(vals_ref.indirect_deps, (std::vector<LoopId>{0, 2}));
  const ArrayRef& b_ref = kernel.body[0].refs[1];
  EXPECT_EQ(b_ref.indirect_dims, std::vector<int>{0});
  EXPECT_EQ(b_ref.subscripts[1].coefficient(1), 1);
  EXPECT_EQ(kernel.body[1].depth, 2);
  EXPECT_TRUE(app.array(app.array_id("vals")).sparse);
}

TEST(Parse, FullyIndirectRefs) {
  const AppSkeleton app = parse_skeleton(R"(
app g
array a f32[100]
kernel k
  parallel for i in 0..10
  stmt flops=1
    load_indirect a
    store_indirect a
)");
  EXPECT_TRUE(app.kernels[0].body[0].refs[0].indirect);
  EXPECT_EQ(app.kernels[0].body[0].refs[1].kind, RefKind::kStore);
}

TEST(Parse, LoopStepAndNegativeBounds) {
  const AppSkeleton app = parse_skeleton(R"(
app s
array a f32[100]
kernel k
  for i in -8..8 step 2
  stmt flops=1
    load a[i+8]
)");
  const Loop& loop = app.kernels[0].loops[0];
  EXPECT_EQ(loop.lower, -8);
  EXPECT_EQ(loop.upper, 8);
  EXPECT_EQ(loop.step, 2);
  EXPECT_EQ(loop.trip_count(), 8);
}

struct BadDoc {
  const char* text;
  int line;
  const char* needle;
};

class ParseErrors : public ::testing::TestWithParam<BadDoc> {};

TEST_P(ParseErrors, ReportsLineAndMessage) {
  const BadDoc& doc = GetParam();
  try {
    parse_skeleton(doc.text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), doc.line) << e.what();
    EXPECT_NE(std::string(e.what()).find(doc.needle), std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Docs, ParseErrors,
    ::testing::Values(
        BadDoc{"", 1, "empty document"},
        BadDoc{"array a f32[4]", 1, "expected 'app'"},
        BadDoc{"app x\napp y", 2, "duplicate"},
        BadDoc{"app x\nkernel k\narray a f32[4]", 3, "before kernels"},
        BadDoc{"app x\narray a zz[4]", 2, "unknown element type"},
        BadDoc{"app x\narray a f32[4]\nkernel k\n  parallel for i in 0..4\n"
               "  stmt flops=1\n    load b[i]",
               6, "unknown array"},
        BadDoc{"app x\narray a f32[4]\nkernel k\n  parallel for i in 0..4\n"
               "    load a[i]",
               5, "before any 'stmt'"},
        BadDoc{"app x\narray a f32[4]\nkernel k\n  parallel for i in 0..4\n"
               "  stmt flops=1\n    load a[q]",
               6, "unknown loop"},
        BadDoc{"app x\narray a f32[4]\nkernel k\n  for i in 0-4\n", 4,
               "lo..hi"},
        BadDoc{"app x\narray a f32[4]\nkernel k\n  for i in 0..4\n"
               "  stmt flops=1\n    load a[i] deps=i",
               6, "deps= requires"},
        BadDoc{"app x\narray a f32[4]\nkernel k\nfrobnicate", 4,
               "unknown directive"}),
    [](const ::testing::TestParamInfo<BadDoc>& param_info) {
      return "doc_" + std::to_string(param_info.index);
    });

TEST(Serialize, VectorAddRoundTripsTextually) {
  const AppSkeleton app = parse_skeleton(kVectorAdd);
  const std::string text = serialize_skeleton(app);
  const AppSkeleton again = parse_skeleton(text);
  EXPECT_EQ(serialize_skeleton(again), text);
}

TEST(Serialize, RoundTripPreservesEveryWorkload) {
  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      const AppSkeleton original = workload->make_skeleton(size, 3);
      const AppSkeleton reparsed =
          parse_skeleton(serialize_skeleton(original));

      // Textual fixed point.
      EXPECT_EQ(serialize_skeleton(reparsed), serialize_skeleton(original))
          << workload->name() << " " << size.label;

      // Semantic equivalence: identical transfer plans and footprints.
      dataflow::UsageAnalyzer analyzer;
      const auto plan_a = analyzer.analyze(original);
      const auto plan_b = analyzer.analyze(reparsed);
      EXPECT_EQ(plan_a.input_bytes(), plan_b.input_bytes());
      EXPECT_EQ(plan_a.output_bytes(), plan_b.output_bytes());
      ASSERT_EQ(original.kernels.size(), reparsed.kernels.size());
      for (std::size_t k = 0; k < original.kernels.size(); ++k) {
        const auto fp_a =
            brs::kernel_footprint(original, original.kernels[k]);
        const auto fp_b =
            brs::kernel_footprint(reparsed, reparsed.kernels[k]);
        EXPECT_EQ(fp_a.dynamic_loads, fp_b.dynamic_loads);
        EXPECT_EQ(fp_a.unique_bytes(), fp_b.unique_bytes());
        EXPECT_DOUBLE_EQ(fp_a.flops, fp_b.flops);
        EXPECT_EQ(fp_a.dynamic_random_gathers, fp_b.dynamic_random_gathers);
      }
    }
  }
}

TEST(ParseErrors, AreTypedParseErrors) {
  // skeleton::ParseError slots into the framework taxonomy: catchable as
  // grophecy::ParseError and as grophecy::Error with kind kParse.
  try {
    parse_skeleton("app x\nfrobnicate");
    FAIL() << "expected an error";
  } catch (const grophecy::Error& e) {
    EXPECT_EQ(e.kind(), grophecy::ErrorKind::kParse);
    EXPECT_FALSE(e.retryable());
  }
  try {
    parse_skeleton("app x\narray a f32[nope]");
    FAIL() << "expected an error";
  } catch (const grophecy::ParseError& e) {
    EXPECT_TRUE(e.file().empty());  // in-memory document, no file
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(e.message().find("expected integer"), std::string::npos);
  }
}

TEST(ParseErrors, OutOfRangeValuesAreParseErrors) {
  // Values that overflow the numeric types must be diagnosed, not UB.
  EXPECT_THROW(parse_skeleton("app x\narray a f32[99999999999999999999]"),
               ParseError);
  EXPECT_THROW(parse_skeleton("app x iterations=99999999999999999999"),
               ParseError);
  EXPECT_THROW(
      parse_skeleton("app x\narray a f32[4]\nkernel k\n"
                     "  for i in 0..4\n  stmt flops=1e999"),
      ParseError);
}

TEST(ParseFile, MissingFileThrows) {
  EXPECT_THROW(parse_skeleton_file("/nonexistent/path.gskel"), ParseError);
}

TEST(ParseFile, ErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "bad_app.gskel";
  {
    std::ofstream out(path);
    out << "app x\narray a zz[4]\n";
  }
  try {
    parse_skeleton_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(e.message().find("unknown element type"), std::string::npos);
  }
  try {
    parse_skeleton_file("/nonexistent/path.gskel");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "/nonexistent/path.gskel");
    EXPECT_EQ(e.line(), 0);
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

}  // namespace
}  // namespace grophecy::skeleton
