// Tests for the process-wide calibration cache: key construction (stable
// for equal inputs, sensitive to every input the calibrator reads),
// single-flight semantics under concurrency, eviction of failed flights,
// counter bookkeeping, and the Grophecy-level wiring (a second engine for
// the same system reuses the first one's calibration bit-for-bit; the
// cache can be bypassed per engine).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/grophecy.h"
#include "hw/registry.h"
#include "pcie/calibration_cache.h"
#include "util/error.h"

namespace grophecy::pcie {
namespace {

/// The singleton is shared by every test in this binary (and by any
/// engine a test constructs), so each test starts from a clean slate.
class CalibrationCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { CalibrationCache::instance().clear(); }
  void TearDown() override { CalibrationCache::instance().clear(); }
};

CalibrationReport stub_report(double alpha_s) {
  CalibrationReport report;
  report.model.h2d.alpha_s = alpha_s;
  report.model.h2d.beta_s_per_byte = 4e-10;
  report.model.d2h = report.model.h2d;
  report.converged = true;
  return report;
}

// --- the key ---

TEST(CalibrationCacheKey, StableForEqualInputs) {
  const hw::MachineSpec machine = hw::anl_eureka();
  const CalibrationOptions options = CalibrationOptions::robust();
  const std::string a = calibration_cache_key(machine.pcie, options,
                                              hw::HostMemory::kPinned, 42);
  const std::string b = calibration_cache_key(machine.pcie, options,
                                              hw::HostMemory::kPinned, 42);
  EXPECT_EQ(a, b);
  // Human-debuggable prefix: the machine's interconnect name.
  EXPECT_EQ(a.rfind(machine.pcie.name + "/", 0), 0u);
}

TEST(CalibrationCacheKey, SensitiveToEveryInputTheCalibratorReads) {
  const hw::MachineSpec machine = hw::anl_eureka();
  const CalibrationOptions options;
  const std::string base = calibration_cache_key(machine.pcie, options,
                                                 hw::HostMemory::kPinned, 42);

  // A different calibration seed produces different samples.
  EXPECT_NE(base, calibration_cache_key(machine.pcie, options,
                                        hw::HostMemory::kPinned, 43));

  // A different memory mode reads a different profile.
  EXPECT_NE(base, calibration_cache_key(machine.pcie, options,
                                        hw::HostMemory::kPageable, 42));

  // Any procedure knob: replication, fit, probe sweep, robustness.
  CalibrationOptions more_replicates = options;
  more_replicates.replicates += 1;
  EXPECT_NE(base, calibration_cache_key(machine.pcie, more_replicates,
                                        hw::HostMemory::kPinned, 42));
  CalibrationOptions theil_sen = options;
  theil_sen.fit = FitMethod::kTheilSen;
  EXPECT_NE(base, calibration_cache_key(machine.pcie, theil_sen,
                                        hw::HostMemory::kPinned, 42));
  CalibrationOptions sweep = options;
  sweep.sweep_bytes = {1, 4096};
  EXPECT_NE(base, calibration_cache_key(machine.pcie, sweep,
                                        hw::HostMemory::kPinned, 42));
  CalibrationOptions retries = options;
  retries.robustness.max_retries = 3;
  EXPECT_NE(base, calibration_cache_key(machine.pcie, retries,
                                        hw::HostMemory::kPinned, 42));

  // Any physical link parameter: the simulated bus would time transfers
  // differently, so the cached model would be wrong for the new machine.
  hw::PcieSpec slower = machine.pcie;
  slower.pinned_h2d.latency_s *= 2.0;
  EXPECT_NE(base, calibration_cache_key(slower, options,
                                        hw::HostMemory::kPinned, 42));
  hw::PcieSpec noisy = machine.pcie;
  noisy.noise.outlier_probability = 0.5;
  EXPECT_NE(base, calibration_cache_key(noisy, options,
                                        hw::HostMemory::kPinned, 42));
}

// --- get_or_calibrate ---

TEST_F(CalibrationCacheTest, MissRunsTheFactoryHitDoesNot) {
  CalibrationCache& cache = CalibrationCache::instance();
  int factory_calls = 0;
  const auto factory = [&] {
    ++factory_calls;
    return stub_report(10e-6);
  };

  const CalibrationReport first = cache.get_or_calibrate("k", factory);
  EXPECT_EQ(factory_calls, 1);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(first.cache_misses, 1u);
  EXPECT_EQ(first.cache_hits, 0u);

  const CalibrationReport second = cache.get_or_calibrate("k", factory);
  EXPECT_EQ(factory_calls, 1);  // served from the cache
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(second.model.h2d.alpha_s, first.model.h2d.alpha_s);

  // A different key is a different system: the factory runs again.
  cache.get_or_calibrate("other", factory);
  EXPECT_EQ(factory_calls, 2);
  EXPECT_EQ(cache.size(), 2u);

  const CalibrationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(CalibrationCacheTest, SingleFlightUnderConcurrentCallers) {
  CalibrationCache& cache = CalibrationCache::instance();
  std::atomic<int> factory_calls{0};
  const auto factory = [&] {
    factory_calls.fetch_add(1);
    // Give late arrivals a chance to pile onto the in-flight future.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return stub_report(12e-6);
  };

  constexpr int kThreads = 8;
  std::vector<CalibrationReport> reports(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      reports[i] = cache.get_or_calibrate("shared", factory);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(factory_calls.load(), 1);
  int owners = 0;
  for (const CalibrationReport& report : reports) {
    if (!report.from_cache) ++owners;
    EXPECT_DOUBLE_EQ(report.model.h2d.alpha_s, 12e-6);
  }
  EXPECT_EQ(owners, 1);
  const CalibrationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST_F(CalibrationCacheTest, ThrowingFactoryIsEvictedSoRetrySucceeds) {
  CalibrationCache& cache = CalibrationCache::instance();
  EXPECT_THROW(cache.get_or_calibrate(
                   "flaky",
                   []() -> CalibrationReport {
                     throw CalibrationError("link down");
                   }),
               CalibrationError);
  EXPECT_EQ(cache.size(), 0u);  // failure is not cached

  const CalibrationReport retried =
      cache.get_or_calibrate("flaky", [] { return stub_report(9e-6); });
  EXPECT_FALSE(retried.from_cache);
  EXPECT_DOUBLE_EQ(retried.model.h2d.alpha_s, 9e-6);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 2u);  // both attempts were misses
}

TEST_F(CalibrationCacheTest, ConcurrentWaitersAllObserveTheSameTypedFailure) {
  // The failed-flight contract under concurrency: every caller joined to
  // a flight whose factory throws observes that same typed error (no
  // waiter hangs, none gets a half-built report), and the failure is
  // evicted so a *fresh* request retriggers calibration.
  CalibrationCache& cache = CalibrationCache::instance();
  std::atomic<int> factory_calls{0};
  const auto failing_factory = [&]() -> CalibrationReport {
    factory_calls.fetch_add(1);
    // Let the other callers join the in-flight future before it fails.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    throw CalibrationError("link down");
  };

  constexpr int kThreads = 8;
  std::atomic<int> typed_failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      try {
        cache.get_or_calibrate("doomed", failing_factory);
      } catch (const CalibrationError& error) {
        EXPECT_EQ(error.kind(), ErrorKind::kCalibration);
        EXPECT_NE(std::string(error.what()).find("link down"),
                  std::string::npos);
        typed_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Whoever joined the failing flight saw its error; stragglers that
  // arrived after eviction re-ran the factory and failed the same way.
  EXPECT_EQ(typed_failures.load(), kThreads);
  EXPECT_GE(factory_calls.load(), 1);
  EXPECT_EQ(cache.size(), 0u);  // no failure is ever left cached

  // A fresh request retriggers calibration and can succeed.
  const CalibrationReport retried =
      cache.get_or_calibrate("doomed", [] { return stub_report(7e-6); });
  EXPECT_DOUBLE_EQ(retried.model.h2d.alpha_s, 7e-6);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(CalibrationCacheTest, FailedFlightEvictionNeverRemovesASuccessor) {
  // Regression: eviction after a failed flight is by flight *identity*.
  // If clear() races between the failure and the eviction and a fresh,
  // healthy flight has already been installed under the same key, that
  // successor must survive (the old code erased by key and would drop
  // it, re-running calibration and breaking single-flight).
  CalibrationCache& cache = CalibrationCache::instance();
  std::atomic<bool> failing_started{false};
  std::atomic<bool> cleared{false};

  std::thread failing([&] {
    try {
      cache.get_or_calibrate("contended", [&]() -> CalibrationReport {
        failing_started = true;
        // Hold the flight open until the main thread has cleared the
        // cache and installed a healthy successor under the same key.
        while (!cleared.load()) std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        throw CalibrationError("stale flight fails late");
      });
      ADD_FAILURE() << "the failing flight should throw";
    } catch (const CalibrationError&) {
    }
  });

  while (!failing_started.load()) std::this_thread::yield();
  cache.clear();  // forget the in-flight failure-to-be
  int successor_calls = 0;
  const CalibrationReport healthy =
      cache.get_or_calibrate("contended", [&] {
        ++successor_calls;
        return stub_report(3e-6);
      });
  EXPECT_DOUBLE_EQ(healthy.model.h2d.alpha_s, 3e-6);
  cleared = true;
  failing.join();  // the stale flight fails and runs its eviction path

  // The healthy successor survived the stale flight's eviction: a third
  // caller hits the cache instead of re-calibrating.
  EXPECT_EQ(cache.size(), 1u);
  const CalibrationReport again = cache.get_or_calibrate("contended", [&] {
    ++successor_calls;
    return stub_report(999.0);
  });
  EXPECT_EQ(successor_calls, 1);  // never re-ran
  EXPECT_TRUE(again.from_cache);
  EXPECT_DOUBLE_EQ(again.model.h2d.alpha_s, 3e-6);
}

TEST_F(CalibrationCacheTest, ClearDropsEntriesAndZeroesCounters) {
  CalibrationCache& cache = CalibrationCache::instance();
  cache.get_or_calibrate("a", [] { return stub_report(1e-6); });
  cache.get_or_calibrate("a", [] { return stub_report(1e-6); });
  ASSERT_EQ(cache.size(), 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);

  int factory_calls = 0;
  cache.get_or_calibrate("a", [&] {
    ++factory_calls;
    return stub_report(1e-6);
  });
  EXPECT_EQ(factory_calls, 1);  // the old entry is really gone
}

// --- Grophecy wiring ---

TEST_F(CalibrationCacheTest, SecondEngineReusesTheFirstOnesCalibration) {
  const core::Grophecy first(hw::anl_eureka());
  EXPECT_FALSE(first.calibration_report().from_cache);
  EXPECT_EQ(first.calibration_report().cache_misses, 1u);

  const core::Grophecy second(hw::anl_eureka());
  EXPECT_TRUE(second.calibration_report().from_cache);
  EXPECT_EQ(second.calibration_report().cache_hits, 1u);

  // The cached model is bit-identical to a fresh measurement (calibration
  // is a pure function of machine, options, and seed).
  EXPECT_DOUBLE_EQ(second.bus_model().h2d.alpha_s,
                   first.bus_model().h2d.alpha_s);
  EXPECT_DOUBLE_EQ(second.bus_model().h2d.beta_s_per_byte,
                   first.bus_model().h2d.beta_s_per_byte);
  EXPECT_DOUBLE_EQ(second.bus_model().d2h.alpha_s,
                   first.bus_model().d2h.alpha_s);
  EXPECT_DOUBLE_EQ(second.bus_model().d2h.beta_s_per_byte,
                   first.bus_model().d2h.beta_s_per_byte);
}

TEST_F(CalibrationCacheTest, CalibrationSeedDecouplesJobsFromTheCache) {
  // The parallel-sweep arrangement: every job gets a distinct measurement
  // seed but pins calibration_seed to the shared base, so the whole sweep
  // shares one calibration entry.
  core::ProjectionOptions job_a;
  job_a.seed = 1111;
  job_a.calibration_seed = 42;
  core::ProjectionOptions job_b;
  job_b.seed = 2222;
  job_b.calibration_seed = 42;

  const core::Grophecy engine_a(hw::anl_eureka(), job_a);
  const core::Grophecy engine_b(hw::anl_eureka(), job_b);
  EXPECT_FALSE(engine_a.calibration_report().from_cache);
  EXPECT_TRUE(engine_b.calibration_report().from_cache);
  EXPECT_DOUBLE_EQ(engine_b.bus_model().h2d.alpha_s,
                   engine_a.bus_model().h2d.alpha_s);
  EXPECT_EQ(CalibrationCache::instance().size(), 1u);
}

TEST_F(CalibrationCacheTest, BypassLeavesTheCacheUntouched) {
  core::ProjectionOptions bypass;
  bypass.use_calibration_cache = false;
  const core::Grophecy uncached(hw::anl_eureka(), bypass);
  EXPECT_FALSE(uncached.calibration_report().from_cache);
  EXPECT_EQ(uncached.calibration_report().cache_hits, 0u);
  EXPECT_EQ(uncached.calibration_report().cache_misses, 0u);
  EXPECT_EQ(CalibrationCache::instance().size(), 0u);
  EXPECT_EQ(CalibrationCache::instance().stats().misses, 0u);

  // Bypassing changes where the work happens, never the numbers.
  const core::Grophecy cached(hw::anl_eureka());
  EXPECT_DOUBLE_EQ(uncached.bus_model().h2d.alpha_s,
                   cached.bus_model().h2d.alpha_s);
  EXPECT_DOUBLE_EQ(uncached.bus_model().d2h.beta_s_per_byte,
                   cached.bus_model().d2h.beta_s_per_byte);
}

}  // namespace
}  // namespace grophecy::pcie
