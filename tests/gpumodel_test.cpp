// Tests for the GPU-side modeling stack: occupancy, coalescing math,
// characteristic synthesis (classification, staging, fusion), the
// analytical kernel-time model, and the transformation explorer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "gpumodel/characteristics.h"
#include "gpumodel/explorer.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/occupancy.h"
#include "hw/registry.h"
#include "sim/cohort_sim.h"
#include "skeleton/builder.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::gpumodel {
namespace {

using skeleton::AffineExpr;
using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ArrayId;
using skeleton::ElemType;
using skeleton::KernelBuilder;

hw::GpuSpec g80() { return hw::anl_eureka().gpu; }

TEST(Occupancy, ThreadLimited) {
  // G80: 768 threads/SM; 256-thread blocks -> 3 blocks, 24 warps.
  const Occupancy occ = compute_occupancy(g80(), 256, 10, 0);
  EXPECT_EQ(occ.blocks_per_sm, 3);
  EXPECT_EQ(occ.active_warps, 24);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
  EXPECT_STREQ(occ.limiter, "threads");
}

TEST(Occupancy, BlockCountLimited) {
  // 64-thread blocks: the 8-blocks/SM cap binds before 768 threads.
  const Occupancy occ = compute_occupancy(g80(), 64, 10, 0);
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_EQ(occ.active_warps, 16);
  EXPECT_STREQ(occ.limiter, "blocks");
}

TEST(Occupancy, RegisterLimited) {
  // 32 regs x 256 threads = 8192 regs = exactly one block per SM.
  const Occupancy occ = compute_occupancy(g80(), 256, 32, 0);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_STREQ(occ.limiter, "regs");
}

TEST(Occupancy, SharedMemoryLimitedAndInfeasible) {
  const Occupancy occ = compute_occupancy(g80(), 128, 10, 9 * 1024);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_STREQ(occ.limiter, "smem");
  const Occupancy none = compute_occupancy(g80(), 128, 10, 20 * 1024);
  EXPECT_EQ(none.blocks_per_sm, 0);
}

TEST(WarpAccessCost, CoalescedStridedScatteredUniform) {
  const hw::GpuSpec gpu = g80();
  MemAccess access;
  access.elem_bytes = 4;

  access.cls = AccessClass::kCoalesced;
  WarpAccessCost cost = warp_access_cost(access, gpu);
  EXPECT_DOUBLE_EQ(cost.transactions, 1.0);   // 32 x 4B = one 128B segment
  EXPECT_DOUBLE_EQ(cost.bytes_moved, 128.0);

  access.cls = AccessClass::kStrided;
  access.stride_elems = 2;
  cost = warp_access_cost(access, gpu);
  EXPECT_DOUBLE_EQ(cost.transactions, 2.0);   // spans 256B
  EXPECT_DOUBLE_EQ(cost.bytes_moved, 256.0);

  access.stride_elems = 1000;                  // fully spread
  cost = warp_access_cost(access, gpu);
  EXPECT_DOUBLE_EQ(cost.transactions, 32.0);

  access.cls = AccessClass::kScattered;
  cost = warp_access_cost(access, gpu);
  EXPECT_DOUBLE_EQ(cost.transactions, 32.0);
  EXPECT_DOUBLE_EQ(cost.bytes_moved, 32.0 * 32.0);  // 32B granules

  access.cls = AccessClass::kUniform;
  cost = warp_access_cost(access, gpu);
  EXPECT_DOUBLE_EQ(cost.transactions, 1.0);
}

TEST(WarpAccessCost, WideElementsNeedMoreSegments) {
  const hw::GpuSpec gpu = g80();
  MemAccess access;
  access.cls = AccessClass::kCoalesced;
  access.elem_bytes = 16;  // complex double
  const WarpAccessCost cost = warp_access_cost(access, gpu);
  EXPECT_DOUBLE_EQ(cost.transactions, 4.0);  // 512B / 128B
  EXPECT_DOUBLE_EQ(cost.bytes_moved, 512.0);
}

AppSkeleton saxpy_app(std::int64_t n) {
  AppBuilder app("saxpy");
  const ArrayId x = app.array("x", ElemType::kF32, {n});
  const ArrayId y = app.array("y", ElemType::kF32, {n});
  KernelBuilder& k = app.kernel("saxpy");
  k.parallel_loop("i", n);
  k.statement(2.0).load(x, {k.var("i")}).load(y, {k.var("i")}).store(
      y, {k.var("i")});
  return app.build();
}

AppSkeleton stencil_app(std::int64_t n) {
  AppBuilder app("stencil");
  const ArrayId in = app.array("in", ElemType::kF32, {n, n});
  const ArrayId out = app.array("out", ElemType::kF32, {n, n});
  KernelBuilder& k = app.kernel("stencil");
  k.parallel_loop("i", n).parallel_loop("j", n);
  const AffineExpr i = k.var("i"), j = k.var("j");
  k.statement(6.0)
      .load(in, {i, j})
      .load(in, {i.shifted(-1), j})
      .load(in, {i.shifted(1), j})
      .load(in, {i, j.shifted(-1)})
      .load(in, {i, j.shifted(1)})
      .store(out, {i, j});
  return app.build();
}

TEST(Characteristics, SaxpyGeometryAndClassification) {
  const AppSkeleton app = saxpy_app(10000);
  Variant variant;
  variant.block_size = 256;
  const KernelCharacteristics kc =
      characterize(app, app.kernels[0], variant, g80());
  EXPECT_EQ(kc.total_threads, 10000);
  EXPECT_EQ(kc.num_blocks, 40);  // ceil(10000/256)
  EXPECT_DOUBLE_EQ(kc.work_per_thread, 1.0);
  EXPECT_DOUBLE_EQ(kc.flops_per_thread, 2.0);
  ASSERT_EQ(kc.accesses.size(), 3u);
  for (const MemAccess& access : kc.accesses)
    EXPECT_EQ(access.cls, AccessClass::kCoalesced);
  EXPECT_EQ(kc.syncs_per_thread, 0);
  EXPECT_EQ(kc.smem_per_block_bytes, 0u);
}

TEST(Characteristics, ColumnAccessOfRowMajorIsStrided) {
  AppBuilder app("col");
  const ArrayId a = app.array("a", ElemType::kF32, {64, 64});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 64);
  // a[i][0]: adjacent threads stride a whole row (64 elements).
  k.statement(1.0).load(a, {k.var("i"), AffineExpr::make_constant(0)});
  const AppSkeleton skel = app.build();
  const KernelCharacteristics kc =
      characterize(skel, skel.kernels[0], Variant{}, g80());
  ASSERT_EQ(kc.accesses.size(), 1u);
  EXPECT_EQ(kc.accesses[0].cls, AccessClass::kStrided);
  EXPECT_EQ(kc.accesses[0].stride_elems, 64);
}

TEST(Characteristics, IndirectThreadDependentIsScattered) {
  AppBuilder app("gather");
  const ArrayId a = app.array("a", ElemType::kF32, {5, 1000});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 1000);
  k.statement(1.0);
  k.load_gather(a, {AffineExpr::make_constant(0), AffineExpr::make_constant(0)},
                /*indirect_dims=*/{1}, /*dep_loops=*/{"i"});
  const AppSkeleton skel = app.build();
  const KernelCharacteristics kc =
      characterize(skel, skel.kernels[0], Variant{}, g80());
  EXPECT_EQ(kc.accesses[0].cls, AccessClass::kScattered);
}

TEST(Characteristics, GatherUniformAcrossWarpIsNotScattered) {
  // CSR pattern: hidden index depends on a sequential loop only; the warp
  // (thread loop j) sees a uniform value / a coalesced row.
  AppBuilder app("csr");
  const ArrayId vals = app.array("vals", ElemType::kF64, {512}, true);
  const ArrayId b = app.array("B", ElemType::kComplexF64, {64, 256});
  KernelBuilder& k = app.kernel("k");
  k.parallel_loop("i", 64).parallel_loop("j", 256).loop("kk", 4);
  k.statement(2.0);
  k.load_gather(vals, {AffineExpr::make_constant(0)}, {0}, {"i", "kk"});
  k.load_gather(b, {AffineExpr::make_constant(0), k.var("j")}, {0},
                {"i", "kk"});
  const AppSkeleton skel = app.build();
  const KernelCharacteristics kc =
      characterize(skel, skel.kernels[0], Variant{}, g80());
  ASSERT_EQ(kc.accesses.size(), 2u);
  EXPECT_EQ(kc.accesses[0].cls, AccessClass::kUniform);
  EXPECT_EQ(kc.accesses[1].cls, AccessClass::kCoalesced);
  EXPECT_TRUE(kc.accesses[1].gathered_stream);
  EXPECT_FALSE(kc.accesses[0].gathered_stream);
}

TEST(Characteristics, SmemStagingCollapsesStencilLoads) {
  const AppSkeleton app = stencil_app(512);
  Variant plain;
  plain.block_size = 256;
  Variant staged = plain;
  staged.smem_staging = true;

  const KernelCharacteristics kc_plain =
      characterize(app, app.kernels[0], plain, g80());
  const KernelCharacteristics kc_staged =
      characterize(app, app.kernels[0], staged, g80());

  EXPECT_EQ(kc_plain.accesses.size(), 6u);  // 5 loads + 1 store
  // Staged: 1 cooperative load + 1 store.
  EXPECT_EQ(kc_staged.accesses.size(), 2u);
  EXPECT_GT(kc_staged.smem_per_block_bytes, 0u);
  EXPECT_EQ(kc_staged.syncs_per_thread, 1);
  // Halo amplification: (16+2)(16+2)/(16*16) = 1.27 loads per thread.
  const MemAccess* coop = nullptr;
  for (const MemAccess& access : kc_staged.accesses)
    if (access.is_load) coop = &access;
  ASSERT_NE(coop, nullptr);
  EXPECT_NEAR(coop->count_per_thread, 18.0 * 18.0 / 256.0, 1e-9);
}

TEST(Characteristics, FusionAddsRedundancyAndScalesWork) {
  const AppSkeleton app = stencil_app(512);
  Variant fused;
  fused.block_size = 256;
  fused.smem_staging = true;
  fused.fuse_iterations = 4;
  const KernelCharacteristics kc =
      characterize(app, app.kernels[0], fused, g80());
  EXPECT_GT(kc.redundant_work_fraction, 0.0);
  const KernelCharacteristics kc1 = characterize(
      app, app.kernels[0],
      Variant{.block_size = 256, .smem_staging = true}, g80());
  EXPECT_NEAR(kc.flops_per_thread,
              kc1.flops_per_thread * 4.0 *
                  (1.0 + kc.redundant_work_fraction),
              1e-9);
}

TEST(Characteristics, RejectsBadVariants) {
  const AppSkeleton app = saxpy_app(100);
  Variant bad;
  bad.block_size = 8;  // below warp size
  EXPECT_THROW(characterize(app, app.kernels[0], bad, g80()),
               ContractViolation);
  bad = Variant{};
  bad.unroll = 0;
  EXPECT_THROW(characterize(app, app.kernels[0], bad, g80()),
               ContractViolation);
}

TEST(KernelModel, BandwidthBoundSaxpyMatchesHandMath) {
  const AppSkeleton app = saxpy_app(1 << 22);
  const hw::GpuSpec gpu = g80();
  KernelTimeModel model(gpu);
  Variant variant;
  variant.block_size = 256;
  const KernelCharacteristics kc =
      characterize(app, app.kernels[0], variant, gpu);
  const KernelTimeBreakdown time = model.project(kc);
  EXPECT_STREQ(time.bound, "bandwidth");
  // 3 accesses x 4B x N at the calibrated streaming efficiency.
  const double traffic = 3.0 * 4.0 * (1 << 22);
  const double expected =
      traffic / (gpu.mem_bandwidth_gbps * util::kGB *
                 model.options().streaming_bw_efficiency);
  EXPECT_NEAR(time.bandwidth_s, expected, expected * 0.01);
  EXPECT_NEAR(time.total_s, expected + gpu.kernel_launch_overhead_s,
              expected * 0.01);
}

TEST(KernelModel, TimeScalesLinearlyWithDataSize) {
  KernelTimeModel model(g80());
  Variant variant;
  auto body_time = [&](std::int64_t n) {
    const AppSkeleton app = saxpy_app(n);
    const KernelTimeBreakdown t =
        model.project(characterize(app, app.kernels[0], variant, g80()));
    return t.total_s - t.launch_s;
  };
  EXPECT_NEAR(body_time(1 << 22) / body_time(1 << 20), 4.0, 0.05);
}

TEST(KernelModel, InfeasibleVariantReported) {
  const AppSkeleton app = stencil_app(64);
  KernelTimeModel model(g80());
  KernelCharacteristics kc =
      characterize(app, app.kernels[0], Variant{}, g80());
  kc.smem_per_block_bytes = 64 * 1024;  // larger than the SM
  const KernelTimeBreakdown time = model.project(kc);
  EXPECT_FALSE(time.feasible);
  EXPECT_TRUE(std::isinf(time.total_s));
}

TEST(Explorer, LoopInterchangeMakesLoopOrderIrrelevant) {
  // The same 2D copy written with both loop orders: the "wrong" order
  // (outer parallel loop indexes the contiguous dimension) must be
  // rescued by parallel-loop interchange and cost the same as the natural
  // order.
  auto copy_app = [](bool natural_order) {
    AppBuilder app(natural_order ? "natural" : "wrong");
    const ArrayId src = app.array("src", ElemType::kF32, {1024, 1024});
    const ArrayId dst = app.array("dst", ElemType::kF32, {1024, 1024});
    KernelBuilder& k = app.kernel("copy");
    // Natural: i rows, j columns (j innermost -> coalesced by default).
    // Wrong: j declared first, i innermost -> default mapping strides.
    k.parallel_loop(natural_order ? "i" : "j", 1024)
        .parallel_loop(natural_order ? "j" : "i", 1024);
    const AffineExpr i = k.var("i"), j = k.var("j");
    k.statement(1.0).load(src, {i, j}).store(dst, {i, j});
    return app.build();
  };

  Explorer explorer(g80());
  const AppSkeleton natural = copy_app(true);
  const AppSkeleton wrong = copy_app(false);
  const ProjectedKernel best_natural =
      explorer.best(natural, natural.kernels[0]);
  const ProjectedKernel best_wrong = explorer.best(wrong, wrong.kernels[0]);

  EXPECT_FALSE(best_natural.variant.swap_parallel_loops);
  EXPECT_TRUE(best_wrong.variant.swap_parallel_loops);
  EXPECT_NEAR(best_wrong.time.total_s, best_natural.time.total_s,
              best_natural.time.total_s * 0.01);

  // Without interchange the wrong order pays the strided penalty.
  ExplorerOptions no_swap;
  no_swap.explore_loop_interchange = false;
  Explorer crippled(g80(), no_swap);
  EXPECT_GT(crippled.best(wrong, wrong.kernels[0]).time.total_s,
            best_wrong.time.total_s * 1.5);
}

TEST(Explorer, PicksSmemStagingForStencils) {
  const AppSkeleton app = stencil_app(1024);
  Explorer explorer(g80());
  const ProjectedKernel best = explorer.best(app, app.kernels[0]);
  EXPECT_TRUE(best.variant.smem_staging);
  EXPECT_TRUE(best.time.feasible);
}

TEST(Explorer, BestIsNoWorseThanEveryVariant) {
  const AppSkeleton app = stencil_app(256);
  Explorer explorer(g80());
  const ProjectedKernel best = explorer.best(app, app.kernels[0]);
  for (const ProjectedKernel& candidate :
       explorer.explore(app, app.kernels[0]))
    EXPECT_LE(best.time.total_s, candidate.time.total_s);
}

TEST(Explorer, RestrictingTheSpaceCannotImproveTheBest) {
  const AppSkeleton app = stencil_app(1024);
  Explorer full(g80());
  ExplorerOptions narrow_options;
  narrow_options.block_sizes = {64};
  narrow_options.explore_smem_staging = false;
  narrow_options.unroll_factors = {1};
  Explorer narrow(g80(), narrow_options);
  EXPECT_LE(full.best(app, app.kernels[0]).time.total_s,
            narrow.best(app, app.kernels[0]).time.total_s);
}

TEST(WarpDemands, OneFormulaFeedsBothSimulators) {
  // gpumodel::warp_demands is the single source of per-warp demand math
  // for the wave simulator AND the event simulator; this test pins its
  // outputs to the documented formulas and pins the event simulator's
  // block demands to exact compositions of them.
  const hw::GpuSpec gpu = g80();
  KernelCharacteristics kc;
  kc.kernel_name = "pin";
  kc.variant.block_size = 200;  // ragged so warps_per_block rounds up
  kc.regs_per_thread = 10;
  kc.num_blocks = 64;
  kc.flops_per_thread = 10.0;
  kc.special_per_thread = 2.0;
  kc.index_insts_per_thread = 3.0;
  kc.syncs_per_thread = 1;
  MemAccess coalesced;
  coalesced.count_per_thread = 2.0;
  MemAccess strided;
  strided.cls = AccessClass::kStrided;
  strided.stride_elems = 4;
  kc.accesses = {coalesced, strided};

  const WarpDemands wd = warp_demands(kc, gpu);
  EXPECT_EQ(wd.warps_per_block,
            (200 + gpu.warp_size - 1) / gpu.warp_size);
  EXPECT_DOUBLE_EQ(wd.issue_cycles,
                   static_cast<double>(gpu.warp_size) / gpu.cores_per_sm);
  EXPECT_DOUBLE_EQ(kSpecialInstCost, 4.0);
  EXPECT_DOUBLE_EQ(wd.insts_per_thread,
                   (10.0 / gpu.flops_per_core_per_cycle +
                    2.0 * kSpecialInstCost + 3.0) *
                       gpu.instruction_overhead);
  EXPECT_DOUBLE_EQ(wd.compute_cycles,
                   wd.insts_per_thread * wd.issue_cycles);

  const WarpAccessCost c0 = warp_access_cost(coalesced, gpu);
  const WarpAccessCost c1 = warp_access_cost(strided, gpu);
  EXPECT_DOUBLE_EQ(wd.traffic_bytes,
                   2.0 * c0.bytes_moved +
                       c1.bytes_moved * gpu.uncoalesced_replay_factor);
  EXPECT_DOUBLE_EQ(wd.mem_insts, 3.0);
  EXPECT_DOUBLE_EQ(wd.latency_cycles, 3.0 * gpu.dram_latency_cycles);

  // The event simulator's block demands compose exactly these numbers.
  const Occupancy occ = compute_occupancy(gpu, 200, 10, 0);
  const sim::BlockDemands bd = sim::block_demands(kc, gpu, occ);
  EXPECT_DOUBLE_EQ(bd.compute_cycles,
                   wd.warps_per_block * wd.insts_per_thread *
                       wd.issue_cycles);
  EXPECT_DOUBLE_EQ(bd.memory_bytes, wd.warps_per_block * wd.traffic_bytes);
  EXPECT_GT(bd.floor_s, 0.0);
}

TEST(AccessCostCache, ReturnsIdenticalCostsAndCountsHits) {
  const hw::GpuSpec gpu = g80();
  AccessCostCache cache;
  MemAccess coalesced;
  MemAccess strided;
  strided.cls = AccessClass::kStrided;
  strided.stride_elems = 4;

  const WarpAccessCost direct = warp_access_cost(coalesced, gpu);
  const WarpAccessCost& first = cache.cost(coalesced, gpu);
  EXPECT_DOUBLE_EQ(first.transactions, direct.transactions);
  EXPECT_DOUBLE_EQ(first.bytes_moved, direct.bytes_moved);
  EXPECT_EQ(cache.misses(), 1u);
  (void)cache.cost(strided, gpu);
  (void)cache.cost(coalesced, gpu);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

AppSkeleton memo_matmul_app(std::int64_t n) {
  AppBuilder app("memo_matmul");
  const ArrayId a = app.array("a", ElemType::kF32, {n, n});
  const ArrayId b = app.array("b", ElemType::kF32, {n, n});
  const ArrayId c = app.array("c", ElemType::kF32, {n, n});
  KernelBuilder& k = app.kernel("matmul");
  k.parallel_loop("i", n).parallel_loop("j", n).loop("k", n);
  AffineExpr i = k.var("i"), j = k.var("j"), kk = k.var("k");
  k.statement(2.0).load(a, {i, kk}).load(b, {kk, j}).store(c, {i, j});
  return app.build();
}

TEST(ExplorerMemo, BestMatchesExploreMinElement) {
  // best() prunes and memoizes; it must still pick exactly the variant
  // min_element over explore() picks, including the first-of-equals
  // tie-break, with a bitwise-identical projected time.
  const AppSkeleton app = memo_matmul_app(512);
  Explorer explorer(g80());
  for (int fuse : {1, 2}) {
    const std::vector<ProjectedKernel> all =
        explorer.explore(app, app.kernels[0], fuse);
    ASSERT_FALSE(all.empty());
    const auto fastest = std::min_element(
        all.begin(), all.end(),
        [](const ProjectedKernel& a, const ProjectedKernel& b) {
          return a.time.total_s < b.time.total_s;
        });
    const ProjectedKernel best = explorer.best(app, app.kernels[0], fuse);
    EXPECT_EQ(best.time.total_s, fastest->time.total_s);
    EXPECT_TRUE(best.variant == fastest->variant);
  }
}

TEST(ExplorerMemo, CachesAndPrunesAcrossCalls) {
  const AppSkeleton app = memo_matmul_app(512);
  Explorer explorer(g80());

  const ProjectedKernel first = explorer.best(app, app.kernels[0]);
  const ExploreStats after_first = explorer.stats();
  EXPECT_GT(after_first.variants, 0u);
  // Many variants share a (block_size, regs, smem) triple.
  EXPECT_GT(after_first.occupancy_hits, 0u);
  // Dominance pruning fires once an incumbent exists: dominated variants
  // never pay for a full projection.
  EXPECT_GT(after_first.pruned, 0u);

  const ProjectedKernel second = explorer.best(app, app.kernels[0]);
  const ExploreStats after_second = explorer.stats();
  // The second pass serves repeated characteristics from the memo.
  EXPECT_GT(after_second.projection_hits, after_first.projection_hits);
  EXPECT_EQ(first.time.total_s, second.time.total_s);
  EXPECT_TRUE(first.variant == second.variant);
}

TEST(Variant, DescribeMentionsEveryAxis) {
  Variant v{.block_size = 128, .smem_staging = true, .unroll = 4,
            .fuse_iterations = 2};
  const std::string text = v.describe();
  EXPECT_NE(text.find("block=128"), std::string::npos);
  EXPECT_NE(text.find("smem"), std::string::npos);
  EXPECT_NE(text.find("unroll=4"), std::string::npos);
  EXPECT_NE(text.find("fuse=2"), std::string::npos);
  EXPECT_TRUE(v == v);
  EXPECT_FALSE(v == Variant{});
}

}  // namespace
}  // namespace grophecy::gpumodel
