// Tests for the PCIe substrate: the simulated bus's physical behaviour,
// the two-point calibrator, and the linear model's accuracy profile —
// including the paper's shape claims (errors peak mid-size, vanish above
// 1 MB, pinned beats pageable except tiny H2D transfers).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "pcie/linear_model.h"
#include "util/contracts.h"
#include "util/stats.h"
#include "util/units.h"

namespace grophecy::pcie {
namespace {

using hw::Direction;
using hw::HostMemory;

hw::PcieSpec eureka_pcie() { return hw::anl_eureka().pcie; }

TEST(SimulatedBus, ExpectedTimeIsMonotonicInSize) {
  SimulatedBus bus(eureka_pcie(), 1);
  for (Direction dir : {Direction::kHostToDevice, Direction::kDeviceToHost}) {
    for (HostMemory mem : {HostMemory::kPinned, HostMemory::kPageable}) {
      double prev = 0.0;
      for (std::uint64_t bytes = 1; bytes <= 512 * util::kMiB; bytes *= 4) {
        const double t = bus.expected_time(bytes, dir, mem);
        EXPECT_GT(t, prev);
        prev = t;
      }
    }
  }
}

TEST(SimulatedBus, LatencyFloorAndAsymptoteMatchSpec) {
  const hw::PcieSpec spec = eureka_pcie();
  SimulatedBus bus(spec, 1);
  // 1 B is essentially the latency floor.
  EXPECT_NEAR(bus.expected_time(1, Direction::kHostToDevice,
                                HostMemory::kPinned),
              spec.pinned_h2d.latency_s, spec.pinned_h2d.latency_s * 0.05);
  // 512 MB runs at the asymptotic bandwidth.
  const double t = bus.expected_time(512 * util::kMiB,
                                     Direction::kHostToDevice,
                                     HostMemory::kPinned);
  EXPECT_NEAR(util::bandwidth_gbps(512.0 * util::kMiB, t),
              spec.pinned_h2d.asymptotic_gbps, 0.05);
}

TEST(SimulatedBus, SameSeedReproducesExactly) {
  SimulatedBus a(eureka_pcie(), 99), b(eureka_pcie(), 99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.time_transfer(4096, Direction::kHostToDevice,
                                     HostMemory::kPinned),
                     b.time_transfer(4096, Direction::kHostToDevice,
                                     HostMemory::kPinned));
  }
}

TEST(SimulatedBus, NoiseAveragesToExpectedTime) {
  SimulatedBus bus(eureka_pcie(), 5);
  const double expected = bus.expected_time(util::kMiB,
                                            Direction::kDeviceToHost,
                                            HostMemory::kPinned);
  const double mean = bus.measure_mean(util::kMiB, Direction::kDeviceToHost,
                                       HostMemory::kPinned, 2000);
  EXPECT_NEAR(mean, expected, expected * 0.01);
}

TEST(SimulatedBus, RelativeNoiseShrinksWithSize) {
  SimulatedBus bus(eureka_pcie(), 5);
  auto relative_spread = [&](std::uint64_t bytes) {
    std::vector<double> samples;
    for (int i = 0; i < 400; ++i)
      samples.push_back(bus.time_transfer(bytes, Direction::kHostToDevice,
                                          HostMemory::kPinned));
    return util::stddev(samples) / util::mean(samples);
  };
  EXPECT_GT(relative_spread(64), relative_spread(64 * util::kMiB) * 3.0);
}

TEST(SimulatedBus, OutliersRaiseTheMean) {
  hw::PcieSpec spec = eureka_pcie();
  SimulatedBus clean(spec, 5);
  spec.noise.outlier_probability = 0.5;
  spec.noise.outlier_factor = 2.0;
  SimulatedBus noisy(spec, 5);
  const double clean_mean = clean.measure_mean(
      util::kMiB, Direction::kHostToDevice, HostMemory::kPinned, 500);
  const double noisy_mean = noisy.measure_mean(
      util::kMiB, Direction::kHostToDevice, HostMemory::kPinned, 500);
  EXPECT_NEAR(noisy_mean / clean_mean, 1.5, 0.1);
}

TEST(SimulatedBus, PinnedBeatsPageableExceptTinyH2D) {
  SimulatedBus bus(eureka_pcie(), 1);
  // Paper §III-C: pinned is always faster except CPU-to-GPU transfers
  // smaller than ~2 KB.
  EXPECT_LT(bus.expected_time(1024, Direction::kHostToDevice,
                              HostMemory::kPageable),
            bus.expected_time(1024, Direction::kHostToDevice,
                              HostMemory::kPinned));
  for (std::uint64_t bytes = 16 * util::kKiB; bytes <= 512 * util::kMiB;
       bytes *= 8) {
    EXPECT_LT(bus.expected_time(bytes, Direction::kHostToDevice,
                                HostMemory::kPinned),
              bus.expected_time(bytes, Direction::kHostToDevice,
                                HostMemory::kPageable))
        << bytes;
  }
  // D2H: pinned always wins.
  for (std::uint64_t bytes = 1; bytes <= 512 * util::kMiB; bytes *= 8) {
    EXPECT_LT(bus.expected_time(bytes, Direction::kDeviceToHost,
                                HostMemory::kPinned),
              bus.expected_time(bytes, Direction::kDeviceToHost,
                                HostMemory::kPageable))
        << bytes;
  }
}

TEST(LinearModel, PredictAndDescribe) {
  LinearTransferModel model{10e-6, 0.4e-9};
  EXPECT_DOUBLE_EQ(model.predict_seconds(1), 10e-6 + 0.4e-9);
  EXPECT_NEAR(model.bandwidth_gbps(), 2.5, 1e-9);
  EXPECT_NE(model.describe().find("2.50 GB/s"), std::string::npos);
  EXPECT_THROW(model.predict_seconds(0), ContractViolation);
}

TEST(Calibrator, RecoversAlphaAndBeta) {
  const hw::PcieSpec spec = eureka_pcie();
  SimulatedBus bus(spec, 11);
  const BusModel model = TransferCalibrator().calibrate(bus);
  // Alpha close to the true latency, beta close to the true inverse BW.
  EXPECT_NEAR(model.h2d.alpha_s, spec.pinned_h2d.latency_s,
              spec.pinned_h2d.latency_s * 0.10);
  EXPECT_NEAR(model.h2d.bandwidth_gbps(), spec.pinned_h2d.asymptotic_gbps,
              spec.pinned_h2d.asymptotic_gbps * 0.03);
  EXPECT_NEAR(model.d2h.bandwidth_gbps(), spec.pinned_d2h.asymptotic_gbps,
              spec.pinned_d2h.asymptotic_gbps * 0.03);
  EXPECT_EQ(model.memory_mode, HostMemory::kPinned);
}

TEST(Calibrator, OptionsAreValidated) {
  CalibrationOptions bad;
  bad.small_bytes = 0;
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
  bad = {};
  bad.large_bytes = bad.small_bytes;
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
  bad = {};
  bad.replicates = 0;
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
  bad = {};
  bad.robustness.max_retries = -1;
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
  bad = {};
  bad.robustness.backoff_max_s = bad.robustness.backoff_initial_s / 2.0;
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
  bad = {};
  bad.robustness.timeout_s = 0.0;
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
  bad = {};
  bad.robustness.max_replicates = bad.replicates - 1;
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
  bad = {};
  bad.sweep_bytes = {0};
  EXPECT_THROW(TransferCalibrator{bad}, ContractViolation);
}

TEST(SimulatedBus, MedianIgnoresOutliersTheMeanCannot) {
  hw::PcieSpec spec = eureka_pcie();
  spec.noise.outlier_probability = 0.3;
  spec.noise.outlier_factor = 2.0;
  SimulatedBus bus(spec, 5);
  const double expected = bus.expected_time(util::kMiB,
                                            Direction::kHostToDevice,
                                            HostMemory::kPinned);
  const double mean = bus.measure_mean(util::kMiB, Direction::kHostToDevice,
                                       HostMemory::kPinned, 400);
  const double median = bus.measure_median(
      util::kMiB, Direction::kHostToDevice, HostMemory::kPinned, 400);
  EXPECT_GT(mean, expected * 1.2);    // mean dragged up by 30% 2x outliers
  EXPECT_NEAR(median, expected, expected * 0.05);
}

TEST(Calibrator, RobustPipelineWithDefaultOptionsMatchesPaperProcedure) {
  // The hardened entry point replays the paper's measurement sequence
  // sample for sample when no robustness knob is turned: same-seeded buses
  // must yield bit-identical models (the golden tests depend on this).
  SimulatedBus paper_bus(eureka_pcie(), 17);
  SimulatedBus robust_bus(eureka_pcie(), 17);
  const TransferCalibrator calibrator;
  const BusModel paper = calibrator.calibrate(paper_bus);
  const CalibrationReport report = calibrator.calibrate_robust(robust_bus);
  EXPECT_DOUBLE_EQ(paper.h2d.alpha_s, report.model.h2d.alpha_s);
  EXPECT_DOUBLE_EQ(paper.h2d.beta_s_per_byte,
                   report.model.h2d.beta_s_per_byte);
  EXPECT_DOUBLE_EQ(paper.d2h.alpha_s, report.model.d2h.alpha_s);
  EXPECT_DOUBLE_EQ(paper.d2h.beta_s_per_byte,
                   report.model.d2h.beta_s_per_byte);
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.used_fallback);
  ASSERT_EQ(report.h2d.probes.size(), 2u);
  EXPECT_EQ(report.h2d.probes[0].samples_kept, 10);
  EXPECT_EQ(report.h2d.probes[0].samples_rejected, 0);
}

TEST(Calibrator, TheilSenSweepRecoversTheModel) {
  const hw::PcieSpec spec = eureka_pcie();
  SimulatedBus bus(spec, 23);
  CalibrationOptions options;
  options.fit = FitMethod::kTheilSen;
  const CalibrationReport report =
      TransferCalibrator(options).calibrate_robust(bus);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.h2d.probes.size(), 2u);
  EXPECT_GT(report.h2d.r_squared, 0.999);
  EXPECT_NEAR(report.model.h2d.bandwidth_gbps(),
              spec.pinned_h2d.asymptotic_gbps,
              spec.pinned_h2d.asymptotic_gbps * 0.03);
}

TEST(Calibrator, AdaptiveReplicationTightensTheSmallProbe) {
  // The 1B probe is the noisiest; adaptive replication should keep
  // sampling it beyond the initial ten until the CI target is met.
  SimulatedBus bus(eureka_pcie(), 29);
  CalibrationOptions options = CalibrationOptions::robust();
  options.robustness.target_rel_half_width = 0.01;
  const CalibrationReport report =
      TransferCalibrator(options).calibrate_robust(bus);
  EXPECT_TRUE(report.converged);
  const ProbeTelemetry& small = report.h2d.probes.front();
  EXPECT_GT(small.samples_kept + small.samples_rejected, options.replicates);
  EXPECT_LE(small.rel_half_width, 0.01 + 1e-12);
  // describe() renders the full telemetry without crashing.
  EXPECT_NE(report.describe().find("probe 1B"), std::string::npos);
}

TEST(LinearModel, SpecDerivedModelMatchesTheSpec) {
  const hw::PcieSpec spec = eureka_pcie();
  const BusModel model = bus_model_from_spec(spec, HostMemory::kPinned);
  EXPECT_DOUBLE_EQ(model.h2d.alpha_s, spec.pinned_h2d.latency_s);
  EXPECT_NEAR(model.h2d.bandwidth_gbps(), spec.pinned_h2d.asymptotic_gbps,
              1e-9);
  EXPECT_DOUBLE_EQ(model.d2h.alpha_s, spec.pinned_d2h.latency_s);
  EXPECT_EQ(model.memory_mode, HostMemory::kPinned);
}

TEST(Calibrator, WorksOnEveryRegisteredMachine) {
  // The paper: "The PCIe bus model is constructed automatically for each
  // new system."
  for (const hw::MachineSpec& machine : hw::all_machines()) {
    SimulatedBus bus(machine.pcie, 3);
    const BusModel model = TransferCalibrator().calibrate(bus);
    EXPECT_NEAR(model.h2d.bandwidth_gbps(),
                machine.pcie.pinned_h2d.asymptotic_gbps,
                machine.pcie.pinned_h2d.asymptotic_gbps * 0.05)
        << machine.name;
  }
}

/// Model error per size (Fig. 4 shape), parameterized over sizes.
class LinearModelError
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearModelError, WithinTenPercentEverywhere) {
  const std::uint64_t bytes = GetParam();
  SimulatedBus bus(eureka_pcie(), 21);
  SimulatedBus calibration_bus(eureka_pcie(), 22);
  const BusModel model = TransferCalibrator().calibrate(calibration_bus);
  for (Direction dir : {Direction::kHostToDevice, Direction::kDeviceToHost}) {
    const double measured =
        bus.measure_mean(bytes, dir, HostMemory::kPinned, 50);
    const double err = util::error_magnitude_percent(
        model.predict_seconds(bytes, dir), measured);
    EXPECT_LT(err, 10.0) << "bytes=" << bytes;
    // Above 1 MB the model is essentially exact (paper Fig. 4).
    if (bytes > util::kMiB) {
      EXPECT_LT(err, 1.5) << "bytes=" << bytes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LinearModelError,
    ::testing::Values(1, 64, 1024, 8 * util::kKiB, 64 * util::kKiB,
                      512 * util::kKiB, 4 * util::kMiB, 64 * util::kMiB,
                      512 * util::kMiB),
    [](const ::testing::TestParamInfo<std::uint64_t>& param_info) {
      return "bytes_" + std::to_string(param_info.param);
    });

}  // namespace
}  // namespace grophecy::pcie
