// A corpus of malformed .gskel and .gmach inputs — truncated documents,
// non-finite numbers, duplicate keys, absurd counts — asserting that every
// one surfaces as a typed grophecy::ParseError that carries the source file
// and line, and that nothing in the parsing path aborts the process.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hw/machine_file.h"
#include "skeleton/parse.h"
#include "util/error.h"

namespace grophecy {
namespace {

namespace fs = std::filesystem;

class TempInputFile {
 public:
  TempInputFile(const std::string& name, const std::string& contents)
      : path_((fs::temp_directory_path() /
               ("grophecy_malformed_" + name + std::to_string(::getpid())))
                  .string()) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempInputFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct BrokenDoc {
  const char* name;      ///< Corpus entry label (test failure messages).
  const char* contents;  ///< The malformed document.
};

/// Asserts `parse(file-with-contents)` throws a grophecy::ParseError whose
/// file() is the path it was given and whose line() points into the file.
template <typename ParseFileFn>
void expect_parse_error_with_location(const BrokenDoc& doc,
                                      ParseFileFn parse_file) {
  TempInputFile file(doc.name, doc.contents);
  try {
    parse_file(file.path());
    ADD_FAILURE() << doc.name << ": expected a ParseError, parsed fine";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kParse) << doc.name;
    EXPECT_EQ(error.file(), file.path()) << doc.name;
    EXPECT_GT(error.line(), 0) << doc.name;
    EXPECT_FALSE(error.message().empty()) << doc.name;
    // what() embeds the location for operator-facing logs.
    EXPECT_NE(std::string(error.what()).find(file.path()), std::string::npos)
        << doc.name;
  } catch (const std::exception& other) {
    ADD_FAILURE() << doc.name << ": wrong exception type: " << other.what();
  }
}

// --- .gskel corpus ---

const std::vector<BrokenDoc>& broken_skeletons() {
  static const std::vector<BrokenDoc> corpus = {
      {"empty", ""},
      {"comment_only", "# nothing here\n"},
      {"truncated_kernel",
       "app t\narray a f32[16]\nkernel k\n  parallel for i in 0..16\n"},
      {"truncated_mid_token",
       // Cut at an arbitrary byte boundary, mid-way through "flops=1".
       "app t\narray a f32[16]\nkernel k\n  parallel for i in 0..16\n"
       "  stmt flo"},
      {"nan_flops",
       "app t\narray a f32[16]\nkernel k\n  for i in 0..16\n"
       "  stmt flops=nan\n    load a[i]\n"},
      {"inf_flops",
       "app t\narray a f32[16]\nkernel k\n  for i in 0..16\n"
       "  stmt flops=inf\n    load a[i]\n"},
      {"negative_extent", "app t\narray a f32[-4]\n"},
      {"zero_extent", "app t\narray a f32[0]\n"},
      {"huge_extent",
       // Element count far beyond the 2^58 cap: would overflow the byte
       // accounting if accepted.
       "app t\narray a f64[9223372036854775807]\n"},
      {"huge_extent_product",
       // Each dimension is fine; the product is not.
       "app t\narray a f64[2147483647][2147483647][2147483647]\n"},
      {"duplicate_array", "app t\narray a f32[16]\narray a f32[16]\n"},
      {"duplicate_kernel",
       "app t\narray a f32[16]\n"
       "kernel k\n  for i in 0..16\n  stmt flops=1\n    load a[i]\n"
       "kernel k\n  for i in 0..16\n  stmt flops=1\n    load a[i]\n"},
      {"unknown_type", "app t\narray a f16[16]\n"},
      {"unknown_array_in_load",
       "app t\narray a f32[16]\nkernel k\n  for i in 0..16\n"
       "  stmt flops=1\n    load ghost[i]\n"},
      {"garbage_line", "app t\n\x01\x02 binary junk\n"},
      {"bad_iterations", "app t iterations=-3\n"},
  };
  return corpus;
}

TEST(MalformedSkeleton, EveryCorpusEntryThrowsTypedParseErrorWithLocation) {
  for (const BrokenDoc& doc : broken_skeletons())
    expect_parse_error_with_location(
        doc, [](const std::string& path) { skeleton::parse_skeleton_file(path); });
}

TEST(MalformedSkeleton, InMemoryParsingReportsLineWithoutFile) {
  try {
    skeleton::parse_skeleton("app t\narray a f32[nan]\n");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_TRUE(error.file().empty());
    EXPECT_EQ(error.line(), 2);
  }
}

TEST(MalformedSkeleton, UnreadableFileIsAParseErrorNotAnAbort) {
  try {
    skeleton::parse_skeleton_file("/nonexistent/no_such.gskel");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.file(), "/nonexistent/no_such.gskel");
  }
}

// --- .gmach corpus ---

const std::vector<BrokenDoc>& broken_machines() {
  static const std::vector<BrokenDoc> corpus = {
      {"unknown_key", "name m\ncpu.cores 8\n"},  // typo for cpu.threads
      {"missing_value", "cpu.threads\n"},
      {"nan_value", "cpu.mem_bandwidth_gbps nan\n"},
      {"inf_value", "gpu.mem_bandwidth_gbps inf\n"},
      {"negative_inf", "gpu.mem_bandwidth_gbps -inf\n"},
      {"not_a_number", "cpu.threads twelve\n"},
      {"duplicate_key", "cpu.threads 8\ncpu.threads 16\n"},
      {"base_not_first", "cpu.threads 8\nbase pcie3_kepler\n"},
      {"unknown_base", "base vaporware9000\n"},
      {"trailing_garbage", "cpu.threads 8 extra tokens\n"},
  };
  return corpus;
}

TEST(MalformedMachine, EveryCorpusEntryThrowsTypedParseErrorWithLocation) {
  for (const BrokenDoc& doc : broken_machines())
    expect_parse_error_with_location(
        doc, [](const std::string& path) { hw::parse_machine_file(path); });
}

TEST(MalformedMachine, DuplicateKeyNamesTheOffendingLine) {
  try {
    hw::parse_machine("cpu.threads 8\ngpu.num_sms 4\ncpu.threads 16\n");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 3);
    EXPECT_NE(std::string(error.what()).find("cpu.threads"),
              std::string::npos);
  }
}

TEST(MalformedMachine, UnreadableFileIsAParseErrorNotAnAbort) {
  try {
    hw::parse_machine_file("/nonexistent/no_such.gmach");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.file(), "/nonexistent/no_such.gmach");
  }
}

}  // namespace
}  // namespace grophecy
