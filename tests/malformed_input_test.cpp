// A corpus of malformed .gskel and .gmach inputs — truncated documents,
// non-finite numbers, duplicate keys, absurd counts — asserting that every
// one surfaces as a typed grophecy::ParseError that carries the source file
// and line, and that nothing in the parsing path aborts the process.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hw/machine_file.h"
#include "serve/protocol.h"
#include "skeleton/parse.h"
#include "util/error.h"
#include "util/jsonl.h"

namespace grophecy {
namespace {

namespace fs = std::filesystem;

class TempInputFile {
 public:
  TempInputFile(const std::string& name, const std::string& contents)
      : path_((fs::temp_directory_path() /
               ("grophecy_malformed_" + name + std::to_string(::getpid())))
                  .string()) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempInputFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct BrokenDoc {
  const char* name;      ///< Corpus entry label (test failure messages).
  const char* contents;  ///< The malformed document.
};

/// Asserts `parse(file-with-contents)` throws a grophecy::ParseError whose
/// file() is the path it was given and whose line() points into the file.
template <typename ParseFileFn>
void expect_parse_error_with_location(const BrokenDoc& doc,
                                      ParseFileFn parse_file) {
  TempInputFile file(doc.name, doc.contents);
  try {
    parse_file(file.path());
    ADD_FAILURE() << doc.name << ": expected a ParseError, parsed fine";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kParse) << doc.name;
    EXPECT_EQ(error.file(), file.path()) << doc.name;
    EXPECT_GT(error.line(), 0) << doc.name;
    EXPECT_FALSE(error.message().empty()) << doc.name;
    // what() embeds the location for operator-facing logs.
    EXPECT_NE(std::string(error.what()).find(file.path()), std::string::npos)
        << doc.name;
  } catch (const std::exception& other) {
    ADD_FAILURE() << doc.name << ": wrong exception type: " << other.what();
  }
}

// --- .gskel corpus ---

const std::vector<BrokenDoc>& broken_skeletons() {
  static const std::vector<BrokenDoc> corpus = {
      {"empty", ""},
      {"comment_only", "# nothing here\n"},
      {"truncated_kernel",
       "app t\narray a f32[16]\nkernel k\n  parallel for i in 0..16\n"},
      {"truncated_mid_token",
       // Cut at an arbitrary byte boundary, mid-way through "flops=1".
       "app t\narray a f32[16]\nkernel k\n  parallel for i in 0..16\n"
       "  stmt flo"},
      {"nan_flops",
       "app t\narray a f32[16]\nkernel k\n  for i in 0..16\n"
       "  stmt flops=nan\n    load a[i]\n"},
      {"inf_flops",
       "app t\narray a f32[16]\nkernel k\n  for i in 0..16\n"
       "  stmt flops=inf\n    load a[i]\n"},
      {"negative_extent", "app t\narray a f32[-4]\n"},
      {"zero_extent", "app t\narray a f32[0]\n"},
      {"huge_extent",
       // Element count far beyond the 2^58 cap: would overflow the byte
       // accounting if accepted.
       "app t\narray a f64[9223372036854775807]\n"},
      {"huge_extent_product",
       // Each dimension is fine; the product is not.
       "app t\narray a f64[2147483647][2147483647][2147483647]\n"},
      {"duplicate_array", "app t\narray a f32[16]\narray a f32[16]\n"},
      {"duplicate_kernel",
       "app t\narray a f32[16]\n"
       "kernel k\n  for i in 0..16\n  stmt flops=1\n    load a[i]\n"
       "kernel k\n  for i in 0..16\n  stmt flops=1\n    load a[i]\n"},
      {"unknown_type", "app t\narray a f16[16]\n"},
      {"unknown_array_in_load",
       "app t\narray a f32[16]\nkernel k\n  for i in 0..16\n"
       "  stmt flops=1\n    load ghost[i]\n"},
      {"garbage_line", "app t\n\x01\x02 binary junk\n"},
      {"bad_iterations", "app t iterations=-3\n"},
  };
  return corpus;
}

TEST(MalformedSkeleton, EveryCorpusEntryThrowsTypedParseErrorWithLocation) {
  for (const BrokenDoc& doc : broken_skeletons())
    expect_parse_error_with_location(
        doc, [](const std::string& path) { skeleton::parse_skeleton_file(path); });
}

TEST(MalformedSkeleton, InMemoryParsingReportsLineWithoutFile) {
  try {
    skeleton::parse_skeleton("app t\narray a f32[nan]\n");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_TRUE(error.file().empty());
    EXPECT_EQ(error.line(), 2);
  }
}

TEST(MalformedSkeleton, UnreadableFileIsAParseErrorNotAnAbort) {
  try {
    skeleton::parse_skeleton_file("/nonexistent/no_such.gskel");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.file(), "/nonexistent/no_such.gskel");
  }
}

// --- .gmach corpus ---

const std::vector<BrokenDoc>& broken_machines() {
  static const std::vector<BrokenDoc> corpus = {
      {"unknown_key", "name m\ncpu.cores 8\n"},  // typo for cpu.threads
      {"missing_value", "cpu.threads\n"},
      {"nan_value", "cpu.mem_bandwidth_gbps nan\n"},
      {"inf_value", "gpu.mem_bandwidth_gbps inf\n"},
      {"negative_inf", "gpu.mem_bandwidth_gbps -inf\n"},
      {"not_a_number", "cpu.threads twelve\n"},
      {"duplicate_key", "cpu.threads 8\ncpu.threads 16\n"},
      {"base_not_first", "cpu.threads 8\nbase pcie3_kepler\n"},
      {"unknown_base", "base vaporware9000\n"},
      {"trailing_garbage", "cpu.threads 8 extra tokens\n"},
  };
  return corpus;
}

TEST(MalformedMachine, EveryCorpusEntryThrowsTypedParseErrorWithLocation) {
  for (const BrokenDoc& doc : broken_machines())
    expect_parse_error_with_location(
        doc, [](const std::string& path) { hw::parse_machine_file(path); });
}

TEST(MalformedMachine, DuplicateKeyNamesTheOffendingLine) {
  try {
    hw::parse_machine("cpu.threads 8\ngpu.num_sms 4\ncpu.threads 16\n");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 3);
    EXPECT_NE(std::string(error.what()).find("cpu.threads"),
              std::string::npos);
  }
}

TEST(MalformedMachine, UnreadableFileIsAParseErrorNotAnAbort) {
  try {
    hw::parse_machine_file("/nonexistent/no_such.gmach");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.file(), "/nonexistent/no_such.gmach");
  }
}

// --- the daemon wire (flat JSON lines from untrusted clients) ---
//
// The serve::Daemon reads the same flat-JSON format as the journals, but
// from *hostile* peers: any byte sequence may arrive. Two contracts:
// util::parse_flat_json never throws and rejects non-flat/unframed input,
// and serve::parse_request turns every rejected line into a typed error
// reply — the connection survives, nothing crashes.

const std::vector<BrokenDoc>& broken_wire_lines() {
  static const std::vector<BrokenDoc> corpus = {
      {"empty", ""},
      {"whitespace_only", "   \t "},
      {"bare_word", "ping"},
      {"unterminated_object", "{\"type\":\"ping\""},
      {"unterminated_string", "{\"type\":\"pi"},
      {"array_not_object", "[\"type\",\"ping\"]"},
      {"nested_object", "{\"type\":{\"x\":1}}"},
      {"nested_array", "{\"type\":[1,2]}"},
      {"trailing_garbage", "{\"type\":\"ping\"} ping"},
      {"two_objects_one_line", "{\"a\":1}{\"b\":2}"},
      {"raw_newline_in_string", "{\"id\":\"a\nb\",\"type\":\"ping\"}"},
      {"raw_tab_in_string", "{\"id\":\"a\tb\",\"type\":\"ping\"}"},
      {"raw_escape_byte", "{\"id\":\"a\x1b[31m\",\"type\":\"ping\"}"},
      {"lone_high_surrogate", "{\"id\":\"\\ud800\",\"type\":\"ping\"}"},
      {"lone_low_surrogate", "{\"id\":\"\\udc00\",\"type\":\"ping\"}"},
      {"truncated_unicode_escape", "{\"id\":\"\\u12"},
      {"bad_unicode_hex", "{\"id\":\"\\uZZZZ\",\"type\":\"ping\"}"},
      {"bad_escape", "{\"id\":\"\\q\",\"type\":\"ping\"}"},
      {"nan_number", "{\"deadline_ms\":nan}"},
      {"inf_number", "{\"deadline_ms\":1e999}"},
      {"leading_plus", "{\"deadline_ms\":+1}"},
      {"unquoted_key", "{type:\"ping\"}"},
      {"single_quotes", "{'type':'ping'}"},
      {"binary_noise", "\x01\x02\x7f\xff\xfe garbage"},
      {"just_braces", "{}{}{"},
      {"deep_quote_soup", "\"\"\"\"\"\""},
  };
  return corpus;
}

TEST(MalformedWire, ParseFlatJsonRejectsEveryCorpusEntryWithoutThrowing) {
  for (const BrokenDoc& doc : broken_wire_lines())
    EXPECT_EQ(util::parse_flat_json(doc.contents), std::nullopt) << doc.name;

  // An embedded raw NUL (invisible to C strings, hence outside the
  // corpus) is a control byte like any other: rejected, not truncated.
  std::string nul_line = "{\"id\":\"a";
  nul_line.push_back('\0');
  nul_line += "b\",\"type\":\"ping\"}";
  EXPECT_EQ(util::parse_flat_json(nul_line), std::nullopt);
}

TEST(MalformedWire, EveryCorpusEntryBecomesATypedErrorReplyNeverACrash) {
  for (const BrokenDoc& doc : broken_wire_lines()) {
    const auto parsed = serve::parse_request(doc.contents);
    const serve::WireError* error = std::get_if<serve::WireError>(&parsed);
    ASSERT_NE(error, nullptr) << doc.name;
    EXPECT_EQ(error->kind, ErrorKind::kParse) << doc.name;

    // The reply the daemon would send is itself one well-formed line.
    const std::string reply =
        serve::error_reply(error->id, error->kind, error->message);
    const auto round = util::parse_flat_json(reply);
    ASSERT_TRUE(round.has_value()) << doc.name;
    EXPECT_EQ(util::json_string(*round, "error").value_or(""), "parse")
        << doc.name;
    EXPECT_EQ(reply.find('\n'), std::string::npos) << doc.name;
  }
}

TEST(MalformedWire, EscapeThenParseRoundTripsEveryByteString) {
  // Adversarial id strings: control bytes, quotes, backslashes, UTF-8,
  // high bytes. Whatever the client sent (escaped), the echoed id in the
  // reply must round-trip byte for byte, on one line.
  std::vector<std::string> ids = {
      std::string("\x00\x01\x02", 3),
      "\n\r\t\f\b",
      "quote\" backslash\\ slash/",
      "\x1b[31mANSI\x1b[0m",
      "utf8 \xc3\xa9\xe2\x82\xac\xf0\x9f\x9a\x80",
      std::string(1, '\x7f') + "\xff\xfe",
  };
  std::string all_bytes;
  for (int b = 0; b < 256; ++b)
    all_bytes.push_back(static_cast<char>(b));
  ids.push_back(all_bytes);

  for (const std::string& id : ids) {
    util::FlatJson object;
    object.emplace_back("id", id);
    const std::string line = util::write_flat_json(object);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const auto parsed = util::parse_flat_json(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(util::json_string(*parsed, "id").value_or("<gone>"), id);
  }
}

TEST(MalformedWire, ReaderDecodesForeignBmpEscapesToUtf8) {
  // A foreign client may escape eagerly; the reader must agree with the
  // writer's UTF-8 on the result.
  const auto parsed =
      util::parse_flat_json("{\"id\":\"\\u00e9 \\u20ac \\u0041\"}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(util::json_string(*parsed, "id").value_or(""),
            "\xc3\xa9 \xe2\x82\xac A");
}

}  // namespace
}  // namespace grophecy
