// In-sweep deduplication (exec/sweep.h): jobs with identical fingerprints
// execute once — every later occurrence reuses the first one's result as
// JobStatus::kDeduped without running or journaling — and a sweep with no
// duplicates behaves byte-for-byte as before.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/journal.h"
#include "exec/sweep.h"
#include "util/error.h"

namespace grophecy::exec {
namespace {

namespace fs = std::filesystem;

class TempJournal {
 public:
  explicit TempJournal(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("grophecy_dedupe_" + name + std::to_string(::getpid()) +
                ".jsonl"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  std::string bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

 private:
  std::string path_;
};

core::ProjectionReport fake_report(const JobSpec& spec) {
  core::ProjectionReport report;
  report.app_name = spec.workload + " " + spec.size_label;
  report.machine_name = "fake";
  report.iterations = spec.iterations;
  report.predicted_kernel_s = 0.010 + 0.001 * spec.iterations;
  report.measured_kernel_s = 0.011;
  report.predicted_transfer_s = 0.020;
  report.measured_transfer_s = 0.019;
  report.measured_cpu_s = 0.300;
  return report;
}

TEST(SweepDedupe, DuplicateSpecsExecuteOnceAndReuseTheResult) {
  // A, B, A, A, C — the three A's share one fingerprint.
  const std::vector<JobSpec> jobs{{"W", "a", 1},
                                  {"W", "b", 1},
                                  {"W", "a", 1},
                                  {"W", "a", 1},
                                  {"W", "c", 1}};
  std::atomic<int> executions{0};
  SweepOptions options;
  options.workers = 2;
  SweepEngine engine(options);
  const SweepSummary summary = engine.run(jobs, [&](const JobSpec& spec) {
    executions.fetch_add(1);
    return fake_report(spec);
  });

  EXPECT_EQ(executions.load(), 3);  // a, b, c — each once
  EXPECT_EQ(summary.ok, 3);
  EXPECT_EQ(summary.deduped, 2);
  EXPECT_EQ(summary.failed, 0);
  ASSERT_EQ(summary.outcomes.size(), jobs.size());

  // Outcomes stay in submission order with the original specs.
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(summary.outcomes[i].spec.key(), jobs[i].key());

  EXPECT_EQ(summary.outcomes[0].status, JobStatus::kOk);
  EXPECT_EQ(summary.outcomes[2].status, JobStatus::kDeduped);
  EXPECT_EQ(summary.outcomes[3].status, JobStatus::kDeduped);

  // A duplicate carries the original's record and report verbatim, with
  // no executions of its own.
  for (const std::size_t dup : {std::size_t{2}, std::size_t{3}}) {
    EXPECT_EQ(summary.outcomes[dup].attempts, 0);
    EXPECT_EQ(summary.outcomes[dup].record.to_json(),
              summary.outcomes[0].record.to_json());
    ASSERT_TRUE(summary.outcomes[dup].report.has_value());
    EXPECT_EQ(summary.outcomes[dup].report->predicted_kernel_s,
              summary.outcomes[0].report->predicted_kernel_s);
  }

  // The summary names the dedupe; a dedupe-free sweep would not.
  EXPECT_NE(summary.describe().find("deduped"), std::string::npos);
}

TEST(SweepDedupe, JournalContainsOnlyUniqueJobs) {
  const std::vector<JobSpec> jobs{{"W", "a", 1},
                                  {"W", "a", 1},
                                  {"W", "b", 1},
                                  {"W", "a", 1}};
  TempJournal journal("unique");
  SweepOptions options;
  options.workers = 1;
  options.journal_path = journal.path();
  options.record_wall_time = false;
  SweepEngine engine(options);
  const SweepSummary summary = engine.run(
      jobs, [](const JobSpec& spec) { return fake_report(spec); });
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.deduped, 2);

  // Two journal lines: fingerprints a and b, each exactly once.
  const std::string bytes = journal.bytes();
  std::size_t lines = 0;
  for (std::size_t pos = bytes.find('\n'); pos != std::string::npos;
       pos = bytes.find('\n', pos + 1))
    ++lines;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(bytes.find(JobSpec{"W", "a", 1}.fingerprint()),
            std::string::npos);
  EXPECT_NE(bytes.find(JobSpec{"W", "b", 1}.fingerprint()),
            std::string::npos);

  // And the journal bytes match a sweep submitted without duplicates.
  TempJournal clean("clean");
  SweepOptions clean_options = options;
  clean_options.journal_path = clean.path();
  SweepEngine clean_engine(clean_options);
  clean_engine.run({{"W", "a", 1}, {"W", "b", 1}},
                   [](const JobSpec& spec) { return fake_report(spec); });
  EXPECT_EQ(clean.bytes(), bytes);
}

TEST(SweepDedupe, DuplicateOfAFailedJobFailsIdentically) {
  const std::vector<JobSpec> jobs{{"W", "bad", 1}, {"W", "bad", 1}};
  std::atomic<int> executions{0};
  SweepOptions options;
  options.workers = 1;
  options.max_retries = 0;
  SweepEngine engine(options);
  const SweepSummary summary =
      engine.run(jobs, [&](const JobSpec& spec) -> core::ProjectionReport {
        executions.fetch_add(1);
        throw CalibrationError("poisoned: " + spec.key());
      });

  EXPECT_EQ(executions.load(), 1);  // the duplicate never runs
  EXPECT_EQ(summary.failed, 2);     // but fails like the original
  EXPECT_EQ(summary.deduped, 0);    // a failed duplicate is not a dedupe win
  ASSERT_EQ(summary.outcomes.size(), 2u);
  EXPECT_EQ(summary.outcomes[1].status, JobStatus::kFailed);
  ASSERT_TRUE(summary.outcomes[1].error.has_value());
  EXPECT_EQ(summary.outcomes[1].error->kind, summary.outcomes[0].error->kind);
  EXPECT_EQ(summary.outcomes[1].error->message,
            summary.outcomes[0].error->message);
}

TEST(SweepDedupe, NoDuplicatesMeansIdenticalSummaryText) {
  // Without duplicates describe() must not mention deduping at all — the
  // sweep is byte-identical to the pre-dedupe engine.
  const std::vector<JobSpec> jobs{{"W", "a", 1}, {"W", "b", 1}};
  SweepEngine engine(SweepOptions{});
  const SweepSummary summary = engine.run(
      jobs, [](const JobSpec& spec) { return fake_report(spec); });
  EXPECT_EQ(summary.deduped, 0);
  EXPECT_EQ(summary.describe().find("deduped"), std::string::npos);
}

TEST(SweepDedupe, DedupeIsDeterministicAcrossWorkerCounts) {
  std::vector<JobSpec> jobs;
  for (int round = 0; round < 3; ++round)
    for (int s = 0; s < 4; ++s)
      jobs.push_back({"W", "size" + std::to_string(s), 1 << (s % 2)});

  auto run = [&](int workers, const std::string& name) {
    TempJournal journal(name);
    SweepOptions options;
    options.workers = workers;
    options.journal_path = journal.path();
    options.record_wall_time = false;
    SweepEngine engine(options);
    const SweepSummary summary = engine.run(
        jobs, [](const JobSpec& spec) { return fake_report(spec); });
    return std::make_pair(summary.describe(), journal.bytes());
  };

  const auto serial = run(1, "w1");
  for (int workers : {2, 8}) {
    const auto parallel = run(workers, "w" + std::to_string(workers));
    EXPECT_EQ(parallel.first, serial.first) << workers;
    EXPECT_EQ(parallel.second, serial.second) << workers;
  }
}

}  // namespace
}  // namespace grophecy::exec
