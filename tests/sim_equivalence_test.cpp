// Equivalence suite: the cohort event engine vs the retained reference
// engine. Jitter-free results must match BITWISE (the cohort engine
// replays the reference's exact floating-point expressions in the same
// event order); jittered results must match per-run to rounding accuracy
// (same placement policy, same draw order, different but equivalent
// arithmetic) and distributionally; the quantized-jitter option must
// actually share cohorts while staying close to the continuous answer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpumodel/characteristics.h"
#include "gpumodel/occupancy.h"
#include "hw/registry.h"
#include "sim/cohort_sim.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace grophecy::sim {
namespace {

using gpumodel::AccessClass;
using gpumodel::KernelCharacteristics;
using gpumodel::MemAccess;

hw::GpuSpec g80() { return hw::anl_eureka().gpu; }

/// Random but always-valid characteristics: varying access classes, block
/// sizes, degenerate zero-demand blocks, and partial final waves.
KernelCharacteristics random_kc(util::Rng& rng) {
  static const int kBlockSizes[] = {32, 64, 96, 128, 192, 256};
  static const AccessClass kClasses[] = {
      AccessClass::kCoalesced, AccessClass::kStrided, AccessClass::kScattered,
      AccessClass::kUniform};

  KernelCharacteristics kc;
  kc.kernel_name = "random";
  kc.variant.block_size =
      kBlockSizes[rng.uniform_int(0, 5)];
  kc.regs_per_thread = static_cast<std::uint32_t>(rng.uniform_int(4, 20));
  kc.smem_per_block_bytes =
      static_cast<std::uint32_t>(rng.uniform_int(0, 2) * 1024);
  // Biased toward partial final waves: small counts and counts just off a
  // multiple of the chip capacity both occur.
  kc.num_blocks = rng.uniform_int(1, 3000);
  kc.total_threads = kc.num_blocks * kc.variant.block_size;
  if (!rng.bernoulli(0.2)) {  // 20%: zero compute (degenerate candidates)
    kc.flops_per_thread = rng.uniform(1.0, 200.0);
    kc.special_per_thread = rng.uniform(0.0, 8.0);
    kc.index_insts_per_thread = rng.uniform(0.0, 20.0);
  }
  kc.syncs_per_thread = static_cast<int>(rng.uniform_int(0, 2));
  const int accesses = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < accesses; ++i) {
    MemAccess access;
    access.cls = kClasses[rng.uniform_int(0, 3)];
    access.is_load = rng.bernoulli(0.7);
    access.stride_elems = rng.uniform_int(1, 8);
    access.elem_bytes = rng.bernoulli(0.5) ? 4 : 8;
    access.count_per_thread = rng.uniform(0.25, 4.0);
    access.gathered_stream =
        access.cls == AccessClass::kCoalesced && rng.bernoulli(0.2);
    kc.accesses.push_back(access);
  }
  return kc;
}

bool feasible(const KernelCharacteristics& kc, const hw::GpuSpec& gpu) {
  return gpumodel::compute_occupancy(gpu, kc.variant.block_size,
                                     kc.regs_per_thread,
                                     kc.smem_per_block_bytes)
             .blocks_per_sm > 0;
}

TEST(SimEquivalence, JitterFreeIsBitwiseEqualOnRandomKernels) {
  const hw::GpuSpec gpu = g80();
  EventGpuSimulator cohort(gpu, 1);
  EventGpuSimulator reference(gpu, 1,
                              EventSimOptions{SimEngine::kReference, 0.0});
  util::Rng rng(2024);
  int tested = 0;
  for (int i = 0; i < 200; ++i) {
    const KernelCharacteristics kc = random_kc(rng);
    if (!feasible(kc, gpu)) continue;
    ++tested;
    const double fast = cohort.expected_launch(kc).total_s;
    const double slow = reference.expected_launch(kc).total_s;
    // EXPECT_EQ on doubles is exact equality — bitwise, not approximate.
    EXPECT_EQ(fast, slow) << "kernel " << i << " blocks=" << kc.num_blocks
                          << " block_size=" << kc.variant.block_size;
  }
  EXPECT_GT(tested, 150);  // the generator must not collapse to infeasible
}

TEST(SimEquivalence, JitterFreeCoversPartialAndDegenerateShapes) {
  const hw::GpuSpec gpu = g80();
  EventGpuSimulator cohort(gpu, 1);
  EventGpuSimulator reference(gpu, 1,
                              EventSimOptions{SimEngine::kReference, 0.0});

  KernelCharacteristics kc;
  kc.kernel_name = "shapes";
  kc.variant.block_size = 128;
  kc.regs_per_thread = 10;
  kc.flops_per_thread = 50.0;
  MemAccess access;
  kc.accesses.push_back(access);

  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu, kc.variant.block_size, kc.regs_per_thread, 0);
  const std::int64_t capacity =
      static_cast<std::int64_t>(occ.blocks_per_sm) * gpu.num_sms;
  // One block, one wave minus one, exactly one wave, one wave plus one,
  // a ragged tail, and a large multiple.
  for (const std::int64_t blocks :
       {std::int64_t{1}, capacity - 1, capacity, capacity + 1,
        7 * capacity + 3, 64 * capacity}) {
    kc.num_blocks = blocks;
    EXPECT_EQ(cohort.expected_launch(kc).total_s,
              reference.expected_launch(kc).total_s)
        << "blocks=" << blocks;
  }

  // Fully degenerate kernel: zero demands everywhere. Both engines retire
  // every block instantly and report just the launch overhead.
  KernelCharacteristics zero;
  zero.kernel_name = "degenerate";
  zero.variant.block_size = 64;
  zero.regs_per_thread = 8;
  zero.num_blocks = 5000;
  EXPECT_EQ(cohort.expected_launch(zero).total_s,
            reference.expected_launch(zero).total_s);
  EXPECT_EQ(cohort.expected_launch(zero).total_s,
            gpu.kernel_launch_overhead_s);
}

TEST(SimEquivalence, JitteredRunsTrackTheReferencePerRun) {
  const hw::GpuSpec gpu = g80();
  KernelCharacteristics kc;
  kc.kernel_name = "jittered";
  kc.variant.block_size = 256;
  kc.regs_per_thread = 12;
  kc.num_blocks = 2000;
  kc.flops_per_thread = 80.0;
  MemAccess access;
  access.count_per_thread = 2.0;
  kc.accesses.push_back(access);

  // Same seed => same per-block draw sequence (identical placement order),
  // so each run pair simulates the same jittered workload. The engines'
  // arithmetic differs (drain-level coordinates vs per-event decrements),
  // so allow rounding-scale drift only.
  EventGpuSimulator cohort(gpu, 99);
  EventGpuSimulator reference(gpu, 99,
                              EventSimOptions{SimEngine::kReference, 0.0});
  for (int run = 0; run < 20; ++run) {
    const double fast = cohort.run_launch_seconds(kc);
    const double slow = reference.run_launch_seconds(kc);
    EXPECT_NEAR(fast, slow, std::abs(slow) * 1e-9) << "run " << run;
  }
}

TEST(SimEquivalence, JitteredDistributionsAgree) {
  const hw::GpuSpec gpu = g80();
  KernelCharacteristics kc;
  kc.kernel_name = "distribution";
  kc.variant.block_size = 128;
  kc.regs_per_thread = 10;
  kc.num_blocks = 500;
  kc.flops_per_thread = 40.0;
  MemAccess access;
  access.cls = AccessClass::kStrided;
  access.stride_elems = 4;
  kc.accesses.push_back(access);

  // Different seeds per engine: only the distributions should agree.
  auto stats = [&](EventGpuSimulator& sim) {
    double mean = 0.0, m2 = 0.0;
    const int n = 150;
    for (int i = 1; i <= n; ++i) {
      const double x = sim.run_launch_seconds(kc);
      const double delta = x - mean;
      mean += delta / i;
      m2 += delta * (x - mean);
    }
    return std::pair<double, double>{mean, std::sqrt(m2 / (n - 1))};
  };
  EventGpuSimulator cohort(gpu, 7);
  EventGpuSimulator reference(gpu, 1234,
                              EventSimOptions{SimEngine::kReference, 0.0});
  const auto [fast_mean, fast_sd] = stats(cohort);
  const auto [slow_mean, slow_sd] = stats(reference);
  EXPECT_NEAR(fast_mean, slow_mean, 0.03 * slow_mean);
  EXPECT_NEAR(fast_sd, slow_sd, 0.5 * slow_sd);
}

TEST(SimEquivalence, QuantizedJitterSharesCohortsAndStaysClose) {
  const hw::GpuSpec gpu = g80();
  KernelCharacteristics kc;
  kc.kernel_name = "quantized";
  kc.variant.block_size = 128;
  kc.regs_per_thread = 10;
  kc.num_blocks = 3000;
  kc.flops_per_thread = 60.0;
  MemAccess access;
  kc.accesses.push_back(access);

  auto mean_of = [&](EventGpuSimulator& sim) {
    double mean = 0.0;
    const int n = 60;
    for (int i = 1; i <= n; ++i)
      mean += (sim.run_launch_seconds(kc) - mean) / i;
    return mean;
  };
  EventGpuSimulator continuous(gpu, 5);
  EventGpuSimulator quantized(gpu, 5,
                              EventSimOptions{SimEngine::kCohort, 0.5});
  const double continuous_mean = mean_of(continuous);
  const double quantized_mean = mean_of(quantized);
  EXPECT_NEAR(quantized_mean, continuous_mean, 0.05 * continuous_mean);

  // The lattice must actually merge draws into shared cohorts.
  (void)quantized.run_launch_seconds(kc);
  const CohortSimStats& stats = quantized.last_stats();
  EXPECT_EQ(stats.blocks, kc.num_blocks);
  EXPECT_LT(stats.cohorts, static_cast<std::uint64_t>(kc.num_blocks));
}

TEST(SimEquivalence, QuantizedCohortsBoundedByLatticePointsPerSm) {
  // Structural property of the counting merge: within one placement
  // batch, blocks landing on the same SM with the same lattice point
  // share one cohort. A single full wave is placed as ONE batch, so its
  // cohort count is bounded by (distinct lattice points) x num_sms —
  // with a coarse quantum that is far below the block count.
  const hw::GpuSpec gpu = g80();
  KernelCharacteristics kc;
  kc.kernel_name = "lattice-bound";
  kc.variant.block_size = 128;
  kc.regs_per_thread = 10;
  kc.flops_per_thread = 60.0;
  MemAccess access;
  kc.accesses.push_back(access);

  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu, kc.variant.block_size, kc.regs_per_thread, 0);
  const std::int64_t capacity =
      static_cast<std::int64_t>(occ.blocks_per_sm) * gpu.num_sms;
  kc.num_blocks = capacity;  // exactly one wave: a single placement batch

  const double quantum = 4.0;  // lattice step of 4 sigma: a handful of points
  EventGpuSimulator quantized(gpu, 21,
                              EventSimOptions{SimEngine::kCohort, quantum});
  (void)quantized.run_launch_seconds(kc);
  const CohortSimStats& stats = quantized.last_stats();
  EXPECT_EQ(stats.blocks, capacity);
  // Practically every standard-normal draw lies within |z| <= 6, i.e.
  // round(z / quantum) spans at most 2 * ceil(6 / quantum) + 1 points
  // (the seed is fixed, so this is deterministic, not flaky).
  const std::uint64_t points =
      2 * static_cast<std::uint64_t>(std::ceil(6.0 / quantum)) + 1;
  EXPECT_LE(stats.cohorts, points * static_cast<std::uint64_t>(gpu.num_sms));
  EXPECT_LT(stats.cohorts, static_cast<std::uint64_t>(capacity));

  // Continuous jitter on the same shape shares nothing: every
  // non-degenerate block is its own singleton cohort.
  EventGpuSimulator continuous(gpu, 21);
  (void)continuous.run_launch_seconds(kc);
  EXPECT_EQ(continuous.last_stats().cohorts,
            static_cast<std::uint64_t>(capacity));
}

TEST(SimEquivalence, QuantizedRunsAreDeterministicAndIsolated) {
  // Same seed => bitwise-identical run sequence, and the epoch-tagged
  // bucket table must not leak merges across runs or across kernels (a
  // stale cell from a previous launch merging a new block would corrupt
  // both the count and the physics).
  const hw::GpuSpec gpu = g80();
  KernelCharacteristics kc;
  kc.kernel_name = "iso";
  kc.variant.block_size = 128;
  kc.regs_per_thread = 10;
  kc.num_blocks = 2500;
  kc.flops_per_thread = 30.0;
  MemAccess access;
  kc.accesses.push_back(access);

  KernelCharacteristics other = kc;
  other.kernel_name = "iso-other";
  other.variant.block_size = 64;
  other.num_blocks = 700;

  const EventSimOptions opts{SimEngine::kCohort, 0.5};
  EventGpuSimulator plain(gpu, 31, opts);
  EventGpuSimulator interleaved(gpu, 31, opts);
  for (int run = 0; run < 5; ++run) {
    const double a = plain.run_launch_seconds(kc);
    const double b = interleaved.run_launch_seconds(kc);
    EXPECT_EQ(a, b) << "run " << run;
    // Burn the same number of draws on both sides so the streams stay in
    // lockstep, but through a different kernel shape on one engine: its
    // buckets, lattice memo, and scratch get churned between runs.
    const double oa = plain.run_launch_seconds(other);
    const double ob = interleaved.run_launch_seconds(other);
    EXPECT_EQ(oa, ob) << "run " << run;
  }
}

TEST(SimEquivalence, CohortStatsReflectTheLastSimulation) {
  const hw::GpuSpec gpu = g80();
  KernelCharacteristics kc;
  kc.kernel_name = "stats";
  kc.variant.block_size = 128;
  kc.regs_per_thread = 10;
  kc.num_blocks = 1000;
  kc.flops_per_thread = 10.0;

  EventGpuSimulator sim(gpu, 3);
  (void)sim.expected_launch(kc);
  const CohortSimStats expected_stats = sim.last_stats();
  EXPECT_EQ(expected_stats.blocks, kc.num_blocks);
  EXPECT_GT(expected_stats.generations, 0u);
  EXPECT_GT(expected_stats.events, 0u);
  // Closed-form generations: far fewer events than the reference's
  // per-block event count.
  EXPECT_LT(expected_stats.events,
            static_cast<std::uint64_t>(kc.num_blocks));

  (void)sim.run_launch_seconds(kc);
  const CohortSimStats jittered_stats = sim.last_stats();
  EXPECT_EQ(jittered_stats.blocks, kc.num_blocks);
  EXPECT_GT(jittered_stats.cohorts, 0u);
  EXPECT_EQ(jittered_stats.generations, 0u);
}

}  // namespace
}  // namespace grophecy::sim
