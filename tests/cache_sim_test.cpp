// Tests for the cache hierarchy simulator, and the cross-check it exists
// for: the closed-form CPU traffic heuristic vs exact trace simulation.
#include <gtest/gtest.h>

#include "brs/footprint.h"
#include "cpumodel/cache_sim.h"
#include "cpumodel/cpu_model.h"
#include "skeleton/builder.h"
#include "util/contracts.h"
#include "workloads/hotspot.h"
#include "workloads/srad.h"

namespace grophecy::cpumodel {
namespace {

using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ElemType;
using skeleton::KernelBuilder;

TEST(CacheSim, HitsAfterColdMiss) {
  CacheSim cache({.capacity_bytes = 1024, .ways = 4, .line_bytes = 64});
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_TRUE(cache.access(0, false));
  EXPECT_TRUE(cache.access(63, false));   // same line
  EXPECT_FALSE(cache.access(64, false));  // next line
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(CacheSim, LruEvictsTheColdestWay) {
  // Direct a single set: capacity 4 lines, 4 ways -> 1 set.
  CacheSim cache({.capacity_bytes = 256, .ways = 4, .line_bytes = 64});
  for (std::uint64_t i = 0; i < 4; ++i) cache.access(i * 64, false);
  cache.access(0, false);              // refresh line 0
  cache.access(4 * 64, false);         // evicts line 1 (LRU), not 0
  EXPECT_TRUE(cache.access(0, false));
  EXPECT_FALSE(cache.access(1 * 64, false));  // line 1 was evicted
}

TEST(CacheSim, DirtyEvictionsAreCounted) {
  CacheSim cache({.capacity_bytes = 128, .ways = 2, .line_bytes = 64});
  cache.access(0, true);            // dirty
  cache.access(128, false);         // same set (2 sets? 128/64=2 lines,
                                    // 2 ways -> 1 set) ... fills way 2
  cache.access(256, false);         // evicts dirty line 0
  EXPECT_EQ(cache.dirty_evictions(), 1u);
}

TEST(CacheSim, WorkingSetLargerThanCapacityThrashes) {
  CacheSim cache({.capacity_bytes = 4096, .ways = 8, .line_bytes = 64});
  // Stream 16 KiB twice: second pass still misses everywhere.
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < 16384; a += 64) cache.access(a, false);
  EXPECT_EQ(cache.hits(), 0u);
  // Whereas an in-cache working set hits on the second pass.
  CacheSim small({.capacity_bytes = 4096, .ways = 8, .line_bytes = 64});
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < 2048; a += 64) small.access(a, false);
  EXPECT_EQ(small.hits(), 32u);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim({.capacity_bytes = 64, .ways = 4, .line_bytes = 64}),
               ContractViolation);
  EXPECT_THROW(
      CacheSim({.capacity_bytes = 1024, .ways = 4, .line_bytes = 60}),
      ContractViolation);
}

TEST(Hierarchy, DramTrafficCountsLlcMissesAndWritebacks) {
  CacheHierarchy hierarchy({.capacity_bytes = 512, .ways = 8},
                           {.capacity_bytes = 4096, .ways = 8});
  // Stream 32 KiB of stores: every line misses to DRAM once (fill) and is
  // eventually written back.
  for (std::uint64_t a = 0; a < 32768; a += 64) hierarchy.access(a, true);
  // 512 lines missed; most evicted dirty (the last 64 still resident).
  EXPECT_GE(hierarchy.dram_bytes(), 512u * 64 + (512u - 64) * 64);
}

AppSkeleton streaming(std::int64_t n) {
  AppBuilder builder("stream");
  const auto a = builder.array("a", ElemType::kF32, {n});
  const auto b = builder.array("b", ElemType::kF32, {n});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", n);
  k.statement(1.0).load(a, {k.var("i")}).store(b, {k.var("i")});
  return builder.build();
}

TEST(Trace, StreamingKernelMovesEachByteOnce) {
  const AppSkeleton app = streaming(1 << 16);  // 256 KiB + 256 KiB
  const std::uint64_t dram = trace_kernel_dram_bytes(
      app, app.kernels[0], {.capacity_bytes = 32 * 1024, .ways = 8},
      {.capacity_bytes = 256 * 1024, .ways = 16}, 1);
  // Read stream (256 KiB fills) + write stream (256 KiB fills via
  // write-allocate + 256 KiB write-backs), modulo lines still resident.
  const double expected = 3.0 * 256.0 * 1024.0;
  EXPECT_NEAR(static_cast<double>(dram), expected, expected * 0.10);
}

TEST(Trace, CacheResidentRereadIsFree) {
  // Two loads of the same array in one sweep: the second hits.
  AppBuilder builder("reread");
  const auto a = builder.array("a", ElemType::kF32, {1 << 14});
  const auto b = builder.array("b", ElemType::kF32, {1 << 14});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", 1 << 14);
  k.statement(1.0)
      .load(a, {k.var("i")})
      .load(a, {k.var("i")})
      .store(b, {k.var("i")});
  const AppSkeleton app = builder.build();
  const std::uint64_t dram = trace_kernel_dram_bytes(
      app, app.kernels[0], {.capacity_bytes = 32 * 1024, .ways = 8},
      {.capacity_bytes = 512 * 1024, .ways = 16}, 1);
  // Identical to a single-load version: the duplicate load adds nothing.
  const double expected = 3.0 * 64.0 * 1024.0;
  EXPECT_NEAR(static_cast<double>(dram), expected, expected * 0.10);
}

TEST(Trace, HeuristicTracksTraceForStencils) {
  // The roofline's closed-form traffic must land within 2x of the exact
  // trace for the paper's stencil workloads (scaled-down instances with
  // proportionally scaled caches).
  for (std::int64_t n : {96, 192}) {
    const AppSkeleton app = workloads::hotspot_skeleton(n, 1);
    const auto& kernel = app.kernels[0];
    // Scaled LLC: working set is 3 arrays; give the cache 1/4 of it, like
    // a 12 MB LLC against a ~48 MB working set at 2048^2.
    const std::uint64_t ws = 3ULL * n * n * 4;
    const std::uint64_t dram = trace_kernel_dram_bytes(
        app, kernel, {.capacity_bytes = 8 * 1024, .ways = 8},
        {.capacity_bytes = ws / 4 / 64 * 64, .ways = 16}, 7);
    const auto fp = brs::kernel_footprint(app, kernel);
    const double heuristic = cpu_memory_traffic_bytes(fp, ws / 4);
    EXPECT_GT(heuristic, static_cast<double>(dram) * 0.5) << n;
    EXPECT_LT(heuristic, static_cast<double>(dram) * 2.0) << n;
  }
}

TEST(Trace, GatherTrafficExceedsStreamingTraffic) {
  // A random gather over a footprint larger than the LLC moves far more
  // than a streaming read of the same volume — the effect behind the CPU
  // model's per-gather charge.
  AppBuilder builder("gather");
  const std::int64_t n = 1 << 15;
  const auto idx = builder.array("table", ElemType::kF32, {n});
  const auto out = builder.array("out", ElemType::kF32, {n});
  KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", n);
  k.statement(1.0);
  k.load_gather(idx, {skeleton::AffineExpr::make_constant(0)}, {0}, {"i"});
  k.store(out, {k.var("i")});
  const AppSkeleton app = builder.build();

  const CacheConfig l1{.capacity_bytes = 8 * 1024, .ways = 8};
  const CacheConfig llc{.capacity_bytes = 32 * 1024, .ways = 16};
  const std::uint64_t gather_dram =
      trace_kernel_dram_bytes(app, app.kernels[0], l1, llc, 3);
  const AppSkeleton stream = streaming(n);
  const std::uint64_t stream_dram =
      trace_kernel_dram_bytes(stream, stream.kernels[0], l1, llc, 3);
  EXPECT_GT(gather_dram, stream_dram * 2);
}

TEST(Trace, DeterministicForSeed) {
  const AppSkeleton app = workloads::srad_skeleton(64, 1);
  const CacheConfig l1{.capacity_bytes = 8 * 1024, .ways = 8};
  const CacheConfig llc{.capacity_bytes = 64 * 1024, .ways = 16};
  EXPECT_EQ(trace_kernel_dram_bytes(app, app.kernels[0], l1, llc, 9),
            trace_kernel_dram_bytes(app, app.kernels[0], l1, llc, 9));
}

}  // namespace
}  // namespace grophecy::cpumodel
