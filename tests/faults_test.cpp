// Tests for the fault-injection harness and the robust calibration
// pipeline it exists to validate: determinism, clean passthrough, every
// fault class, and the PR's acceptance scenarios — under the paper's §V-A
// outlier anomaly the robust calibrator stays within 5% of the noiseless
// ground truth while the paper's mean-based procedure does not, and a dead
// measurement path degrades to the spec-derived model without an exception
// escaping.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "faults/fault_injector.h"
#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "pcie/linear_model.h"
#include "sim/gpu_sim.h"
#include "skeleton/builder.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace grophecy::faults {
namespace {

using hw::Direction;
using hw::HostMemory;

hw::PcieSpec eureka_pcie() { return hw::anl_eureka().pcie; }

double one_transfer(pcie::TransferTimer& timer) {
  return timer.time_transfer(util::kMiB, Direction::kHostToDevice,
                             HostMemory::kPinned);
}

TEST(FaultPlan, IsValidated) {
  FaultPlan bad;
  bad.slow_probability = 1.5;
  EXPECT_THROW(FaultEngine{bad}, ContractViolation);
  bad = {};
  bad.heavy_tail_shape = 0.0;
  EXPECT_THROW(FaultEngine{bad}, ContractViolation);
  bad = {};
  bad.hang_factor = 1.0;
  EXPECT_THROW(FaultEngine{bad}, ContractViolation);
  bad = {};
  bad.fail_first = -1;
  EXPECT_THROW(FaultEngine{bad}, ContractViolation);
  bad = {};
  bad.drift_per_call = -0.1;
  EXPECT_THROW(FaultEngine{bad}, ContractViolation);
}

TEST(FaultInjector, NoFaultPlanIsBitIdenticalPassthrough) {
  pcie::SimulatedBus bare(eureka_pcie(), 3);
  pcie::SimulatedBus wrapped_inner(eureka_pcie(), 3);
  FaultInjector wrapped(wrapped_inner, FaultPlan{});
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(one_transfer(bare), one_transfer(wrapped));
  EXPECT_EQ(wrapped.stats().calls, 50u);
  EXPECT_EQ(wrapped.stats().returned, 50u);
  EXPECT_EQ(wrapped.stats().slow, 0u);
  EXPECT_EQ(wrapped.stats().failures, 0u);
}

TEST(FaultInjector, SamePlanAndSeedReplaysTheSameFaults) {
  auto run = [] {
    pcie::SimulatedBus bus(eureka_pcie(), 9);
    FaultInjector injector(bus, FaultPlan::paper_outliers(0.2, 2.0, 77));
    std::vector<double> times;
    for (int i = 0; i < 100; ++i) times.push_back(one_transfer(injector));
    return std::make_pair(times, injector.stats().slow);
  };
  const auto [times_a, slow_a] = run();
  const auto [times_b, slow_b] = run();
  EXPECT_EQ(slow_a, slow_b);
  EXPECT_GT(slow_a, 0u);
  for (std::size_t i = 0; i < times_a.size(); ++i)
    EXPECT_DOUBLE_EQ(times_a[i], times_b[i]) << i;
}

TEST(FaultInjector, SlowOutliersInflateTheMeanNotTheMedian) {
  pcie::SimulatedBus clean_bus(eureka_pcie(), 5);
  std::vector<double> clean;
  for (int i = 0; i < 2000; ++i) clean.push_back(one_transfer(clean_bus));

  pcie::SimulatedBus bus(eureka_pcie(), 5);
  FaultInjector injector(bus, FaultPlan::paper_outliers(0.05, 2.0, 13));
  std::vector<double> faulty;
  for (int i = 0; i < 2000; ++i) faulty.push_back(one_transfer(injector));

  // 5% of transfers doubled => the mean rises ~5%; the median barely moves.
  EXPECT_NEAR(util::mean(faulty) / util::mean(clean), 1.05, 0.02);
  EXPECT_NEAR(util::median(faulty) / util::median(clean), 1.0, 0.01);
  EXPECT_NEAR(static_cast<double>(injector.stats().slow), 100.0, 40.0);
}

TEST(FaultInjector, HeavyTailFactorsAreBoundedByTheCap) {
  pcie::SimulatedBus bus(eureka_pcie(), 5);
  const double expected = bus.expected_time(util::kMiB,
                                            Direction::kHostToDevice,
                                            HostMemory::kPinned);
  FaultPlan plan;
  plan.heavy_tail_probability = 1.0;
  plan.heavy_tail_shape = 0.5;  // wild tail; the cap must do the work
  plan.heavy_tail_cap = 10.0;
  FaultInjector injector(bus, plan);
  for (int i = 0; i < 500; ++i) {
    const double t = one_transfer(injector);
    EXPECT_GE(t, expected * 0.5);
    EXPECT_LE(t, expected * plan.heavy_tail_cap * 1.5);
  }
  EXPECT_EQ(injector.stats().heavy_tail, 500u);
}

TEST(FaultInjector, FailFirstThrowsTypedRetryableErrors) {
  pcie::SimulatedBus bus(eureka_pcie(), 5);
  FaultPlan plan;
  plan.fail_first = 3;
  FaultInjector injector(bus, plan);
  for (int i = 0; i < 3; ++i) {
    try {
      one_transfer(injector);
      FAIL() << "expected MeasurementError";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kMeasurement);
      EXPECT_TRUE(e.retryable());
    }
  }
  EXPECT_GT(one_transfer(injector), 0.0);  // observation 3 succeeds
  EXPECT_EQ(injector.stats().failures, 3u);
  EXPECT_EQ(injector.stats().returned, 1u);
}

TEST(FaultInjector, DriftCompoundsPerObservation) {
  pcie::SimulatedBus bus(eureka_pcie(), 5);
  FaultPlan plan;
  plan.drift_per_call = 0.10;
  FaultInjector injector(bus, plan);
  pcie::SimulatedBus reference(eureka_pcie(), 5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(one_transfer(injector),
                     one_transfer(reference) * std::pow(1.10, i));
  }
}

TEST(FaultyKernelTimer, WrapsTheGpuSimulator) {
  using skeleton::AppBuilder;
  AppBuilder app("stream");
  const skeleton::ArrayId x = app.array("x", skeleton::ElemType::kF32,
                                        {1 << 20});
  skeleton::KernelBuilder& k = app.kernel("copy");
  k.parallel_loop("i", 1 << 20);
  k.statement(1.0).load(x, {k.var("i")});
  const skeleton::AppSkeleton built = app.build();
  gpumodel::Variant variant;
  variant.block_size = 256;
  const gpumodel::KernelCharacteristics kc = gpumodel::characterize(
      built, built.kernels[0], variant, hw::anl_eureka().gpu);

  sim::GpuSimulator clean_sim(hw::anl_eureka().gpu, 4);
  sim::GpuSimulator wrapped_sim(hw::anl_eureka().gpu, 4);
  FaultPlan plan;
  plan.slow_probability = 1.0;
  plan.slow_factor = 3.0;
  FaultyKernelTimer faulty(wrapped_sim, plan);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(faulty.run_launch_seconds(kc),
                     clean_sim.run_launch_seconds(kc) * 3.0);
  }
  // The KernelTimer interface's replicated measurement works through it.
  EXPECT_GT(faulty.measure_launch_seconds(kc, 4), 0.0);
  EXPECT_EQ(faulty.stats().slow, 9u);

  FaultPlan broken = FaultPlan::broken();
  FaultyKernelTimer dead(wrapped_sim, broken);
  EXPECT_THROW(dead.run_launch_seconds(kc), MeasurementError);
}

// --- acceptance: robust calibration under the paper's §V-A anomaly ---

struct GroundTruth {
  double alpha;
  double beta;
};

GroundTruth truth() {
  const pcie::SimulatedBus bus(eureka_pcie(), 0);
  const std::uint64_t large = pcie::CalibrationOptions{}.large_bytes;
  GroundTruth t{};
  t.alpha = bus.expected_time(1, Direction::kHostToDevice,
                              HostMemory::kPinned);
  t.beta = bus.expected_time(large, Direction::kHostToDevice,
                             HostMemory::kPinned) /
           static_cast<double>(large);
  return t;
}

double pct_err(double got, double want) {
  return std::abs(got - want) / want * 100.0;
}

TEST(RobustCalibration, Beats5PercentUnderOutliersWhereTheMeanDoesNot) {
  const GroundTruth t = truth();
  const hw::PcieSpec spec = eureka_pcie();
  double naive_worst = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const FaultPlan plan =
        FaultPlan::paper_outliers(0.05, 2.0, 500 + trial);

    pcie::SimulatedBus robust_bus(spec, 100 + trial);
    FaultInjector robust_timer(robust_bus, plan);
    const pcie::CalibrationReport report =
        pcie::TransferCalibrator(pcie::CalibrationOptions::robust())
            .calibrate_robust(robust_timer);
    EXPECT_TRUE(report.converged);
    EXPECT_LT(pct_err(report.model.h2d.alpha_s, t.alpha), 5.0) << trial;
    EXPECT_LT(pct_err(report.model.h2d.beta_s_per_byte, t.beta), 5.0)
        << trial;

    pcie::SimulatedBus naive_bus(spec, 100 + trial);
    FaultInjector naive_timer(naive_bus, plan);
    const pcie::BusModel naive =
        pcie::TransferCalibrator().calibrate(naive_timer);
    naive_worst = std::max(
        {naive_worst, pct_err(naive.h2d.alpha_s, t.alpha),
         pct_err(naive.h2d.beta_s_per_byte, t.beta)});
  }
  // The paper's procedure demonstrably bakes the outliers into the model.
  EXPECT_GT(naive_worst, 5.0);
}

TEST(RobustCalibration, TheilSenSurvivesOutlierProbes) {
  const GroundTruth t = truth();
  pcie::SimulatedBus bus(eureka_pcie(), 31);
  FaultInjector timer(bus, FaultPlan::paper_outliers(0.05, 2.0, 631));
  pcie::CalibrationOptions options = pcie::CalibrationOptions::robust();
  options.fit = pcie::FitMethod::kTheilSen;
  const pcie::CalibrationReport report =
      pcie::TransferCalibrator(options).calibrate_robust(timer);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.h2d.probes.size(), 2u);  // sweep, not two-point
  EXPECT_GT(report.h2d.r_squared, 0.999);
  // The slope is nailed; the intercept absorbs mid-size non-linearity, so
  // only a loose bound holds for alpha.
  EXPECT_LT(pct_err(report.model.h2d.beta_s_per_byte, t.beta), 5.0);
  EXPECT_LT(pct_err(report.model.h2d.alpha_s, t.alpha), 30.0);
}

TEST(RobustCalibration, RetriesTransientFailuresAndRecordsTelemetry) {
  pcie::SimulatedBus bus(eureka_pcie(), 8);
  FaultInjector timer(bus, FaultPlan::flaky(0.2, 0.0, 41));
  pcie::CalibrationOptions options = pcie::CalibrationOptions::robust();
  const pcie::CalibrationReport report =
      pcie::TransferCalibrator(options).calibrate_robust(timer);
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.used_fallback);
  EXPECT_GT(report.total_retries(), 0);
  double backoff = 0.0;
  for (const pcie::ProbeTelemetry& probe : report.h2d.probes)
    backoff += probe.backoff_total_s;
  for (const pcie::ProbeTelemetry& probe : report.d2h.probes)
    backoff += probe.backoff_total_s;
  EXPECT_GT(backoff, 0.0);
  EXPECT_EQ(report.summary().retries, report.total_retries());
}

TEST(RobustCalibration, WatchdogConvertsHangsIntoTimeouts) {
  pcie::SimulatedBus bus(eureka_pcie(), 8);
  FaultPlan plan;
  plan.hang_probability = 0.1;
  plan.hang_factor = 1000.0;
  FaultInjector timer(bus, plan);
  pcie::CalibrationOptions options = pcie::CalibrationOptions::robust();
  options.robustness.timeout_s = 1.0;  // 512MB takes ~0.2 s clean
  const pcie::CalibrationReport report =
      pcie::TransferCalibrator(options).calibrate_robust(timer);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.total_timeouts(), 0);
  // Timed-out observations never contaminate the estimates: the large
  // probes still read the true bandwidth.
  EXPECT_NEAR(report.model.h2d.bandwidth_gbps(),
              eureka_pcie().pinned_h2d.asymptotic_gbps,
              eureka_pcie().pinned_h2d.asymptotic_gbps * 0.05);
}

TEST(RobustCalibration, DeadPathDegradesToSpecModelWithoutThrowing) {
  const hw::PcieSpec spec = eureka_pcie();
  pcie::SimulatedBus bus(spec, 8);
  FaultInjector timer(bus, FaultPlan::broken());
  const pcie::TransferCalibrator calibrator(
      pcie::CalibrationOptions::robust());

  pcie::CalibrationReport report;
  ASSERT_NO_THROW(report = calibrator.calibrate_robust(
                      timer, HostMemory::kPinned, &spec));
  EXPECT_FALSE(report.converged);
  EXPECT_TRUE(report.used_fallback);
  EXPECT_TRUE(report.h2d.from_spec);
  EXPECT_TRUE(report.d2h.from_spec);
  EXPECT_FALSE(report.warning.empty());
  EXPECT_GT(report.total_retries(), 0);  // it did try before giving up

  // The fallback is exactly the spec-derived model.
  const pcie::BusModel from_spec =
      pcie::bus_model_from_spec(spec, HostMemory::kPinned);
  EXPECT_DOUBLE_EQ(report.model.h2d.alpha_s, from_spec.h2d.alpha_s);
  EXPECT_DOUBLE_EQ(report.model.h2d.beta_s_per_byte,
                   from_spec.h2d.beta_s_per_byte);
  EXPECT_DOUBLE_EQ(report.model.d2h.alpha_s, from_spec.d2h.alpha_s);
  EXPECT_NE(report.describe().find("DEGRADED"), std::string::npos);

  // Without a fallback spec the same failure is a typed, fatal error.
  pcie::SimulatedBus bus2(spec, 8);
  FaultInjector timer2(bus2, FaultPlan::broken());
  EXPECT_THROW(calibrator.calibrate_robust(timer2), CalibrationError);
}

TEST(RobustCalibration, EngineConstructionSurvivesABrokenBus) {
  // End-to-end: the core engine keeps working when calibration degrades —
  // transfer predictions come from the spec-derived model, on record.
  // (The engine's own simulated bus is healthy; this exercises the
  // report plumbing via a manual pipeline instead.)
  const hw::MachineSpec machine = hw::anl_eureka();
  pcie::SimulatedBus bus(machine.pcie, 8);
  FaultInjector timer(bus, FaultPlan::flaky(0.99, 0.0, 3));
  pcie::CalibrationOptions options;  // paper options: no retries at all
  const pcie::CalibrationReport report =
      pcie::TransferCalibrator(options).calibrate_robust(
          timer, HostMemory::kPinned, &machine.pcie);
  EXPECT_TRUE(report.used_fallback);
  EXPECT_GT(report.model.predict_seconds(util::kMiB,
                                         Direction::kHostToDevice),
            0.0);
}

}  // namespace
}  // namespace grophecy::faults
