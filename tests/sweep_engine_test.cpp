// Tests for exec::SweepEngine — the PR's acceptance scenarios:
//
//   * fault isolation: a throwing job becomes a structured JobError and
//     the rest of the sweep completes;
//   * retry with bounded exponential backoff for transient failures, no
//     retry for permanent ones (calibration/contract/usage);
//   * the wall-clock deadline watchdog converts hangs (including
//     faults::FaultInjector-scripted hangs) into timed-out JobErrors
//     instead of a stuck sweep;
//   * crash-safe journaling + resume: a second run replays completed jobs
//     from the journal and re-executes only failed/missing ones, and the
//     resumed table equals the fault-free results wherever jobs succeeded.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

#include "core/experiment.h"
#include "exec/journal.h"
#include "exec/sweep.h"
#include "faults/fault_injector.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "skeleton/parse.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/units.h"
#include "workloads/workload.h"

namespace grophecy::exec {
namespace {

namespace fs = std::filesystem;

class TempJournal {
 public:
  explicit TempJournal(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("grophecy_sweep_test_" + name + std::to_string(::getpid()) +
                ".jsonl"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A fast fake projection so engine-mechanics tests don't pay for real
/// calibrations. Deterministic per spec.
core::ProjectionReport fake_report(const JobSpec& spec) {
  core::ProjectionReport report;
  report.app_name = spec.workload + " " + spec.size_label;
  report.machine_name = "fake";
  report.iterations = spec.iterations;
  report.predicted_kernel_s = 0.010 + 0.001 * spec.iterations;
  report.measured_kernel_s = 0.011;
  report.predicted_transfer_s = 0.020;
  report.measured_transfer_s = 0.019;
  report.measured_cpu_s = 0.300;
  return report;
}

std::vector<JobSpec> three_jobs() {
  return {{"W", "a", 1}, {"W", "b", 1}, {"W", "c", 1}};
}

// --- isolation & retry mechanics ---

TEST(SweepEngine, FaultFreeSweepRunsEveryJobOnceInOrder)
{
  std::vector<std::string> executed;
  // workers = 1: this test asserts strict serial execution order and the
  // lambda mutates unsynchronized state. The parallel path is covered by
  // sweep_determinism_test.
  SweepOptions serial;
  serial.workers = 1;
  SweepEngine engine(serial);
  const SweepSummary summary =
      engine.run(three_jobs(), [&](const JobSpec& spec) {
        executed.push_back(spec.size_label);
        return fake_report(spec);
      });
  EXPECT_EQ(summary.ok, 3);
  EXPECT_EQ(summary.failed, 0);
  EXPECT_EQ(summary.retried, 0);
  EXPECT_EQ(summary.attempts, 3);
  EXPECT_EQ((std::vector<std::string>{"a", "b", "c"}), executed);
  ASSERT_EQ(summary.outcomes.size(), 3u);
  EXPECT_TRUE(summary.outcomes[0].report.has_value());
  EXPECT_EQ(summary.outcomes[0].report->app_name, "W a");
}

TEST(SweepEngine, TransientFailureIsRetriedWithBoundedBackoff) {
  std::map<std::string, int> calls;
  SweepOptions options;
  options.workers = 1;  // unsynchronized call counting
  options.max_retries = 3;
  options.backoff_initial_s = 0.001;
  options.backoff_max_s = 0.002;  // cap below initial * 2^2 to see bounding
  SweepEngine engine(options);
  const SweepSummary summary =
      engine.run(three_jobs(), [&](const JobSpec& spec) {
        if (spec.size_label == "b" && ++calls["b"] <= 2)
          throw MeasurementError("flaky transfer");
        return fake_report(spec);
      });
  EXPECT_EQ(summary.ok, 3);
  EXPECT_EQ(summary.retried, 1);
  EXPECT_EQ(summary.attempts, 5);  // a:1, b:3, c:1
  const JobOutcome* b = summary.find({"W", "b", 1});
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->attempts, 3);
  // Backoff: min(0.001*2^0, 0.002) + min(0.001*2^1, 0.002) = 0.003.
  EXPECT_DOUBLE_EQ(b->backoff_s, 0.003);
}

TEST(SweepEngine, RetryBudgetExhaustionFailsTheJobNotTheSweep) {
  SweepOptions options;
  options.workers = 1;
  options.max_retries = 2;
  SweepEngine engine(options);
  const SweepSummary summary =
      engine.run(three_jobs(), [&](const JobSpec& spec) {
        if (spec.size_label == "b") throw MeasurementError("always flaky");
        return fake_report(spec);
      });
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.failed, 1);
  const JobOutcome* b = summary.find({"W", "b", 1});
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->status, JobStatus::kFailed);
  EXPECT_EQ(b->attempts, 3);  // 1 + 2 retries
  ASSERT_TRUE(b->error.has_value());
  EXPECT_EQ(b->error->kind, ErrorKind::kMeasurement);
  EXPECT_TRUE(b->error->retryable);
}

TEST(SweepEngine, PermanentErrorsAreNeverRetried) {
  struct Case {
    std::function<void()> thrower;
    ErrorKind kind;
  };
  const Case cases[] = {
      {[] { throw CalibrationError("no converge"); }, ErrorKind::kCalibration},
      {[] { throw skeleton::ParseError(3, "bad line"); }, ErrorKind::kParse},
      {[] { throw UsageError("unknown workload"); }, ErrorKind::kUsage},
      {[] { throw ContractViolation("invariant"); }, ErrorKind::kContract},
      {[] { throw std::runtime_error("misc"); }, ErrorKind::kException},
  };
  for (const Case& test_case : cases) {
    int calls = 0;
    SweepOptions options;
    options.workers = 1;
    options.max_retries = 5;
    SweepEngine engine(options);
    const SweepSummary summary =
        engine.run({{"W", "a", 1}}, [&](const JobSpec&) -> core::ProjectionReport {
          ++calls;
          test_case.thrower();
          return {};
        });
    EXPECT_EQ(summary.failed, 1) << to_string(test_case.kind);
    EXPECT_EQ(calls, 1) << to_string(test_case.kind);  // no retry
    ASSERT_TRUE(summary.outcomes[0].error.has_value());
    EXPECT_EQ(summary.outcomes[0].error->kind, test_case.kind);
    EXPECT_FALSE(summary.outcomes[0].error->retryable)
        << to_string(test_case.kind);
  }
}

TEST(SweepEngine, DegradedCalibrationBubblesUp) {
  SweepEngine engine;
  const SweepSummary summary =
      engine.run({{"W", "a", 1}}, [&](const JobSpec& spec) {
        core::ProjectionReport report = fake_report(spec);
        report.calibration.used_fallback = true;
        return report;
      });
  EXPECT_TRUE(summary.degraded);
  EXPECT_TRUE(summary.outcomes[0].record.calibration_fallback);
}

// --- the deadline watchdog ---

TEST(SweepEngine, DeadlineConvertsAHangIntoATimedOutJobError) {
  SweepOptions options;
  options.workers = 1;  // the elapsed-time bound assumes serial execution
  options.deadline_s = 0.05;
  options.max_retries = 0;
  SweepEngine engine(options);
  const auto start = std::chrono::steady_clock::now();
  const SweepSummary summary =
      engine.run(three_jobs(), [&](const JobSpec& spec) {
        if (spec.size_label == "b")  // scripted hang: far beyond deadline
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return fake_report(spec);
      });
  // The sweep itself finished (all three jobs decided) without waiting
  // for the hang to clear.
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.failed, 1);
  const JobOutcome* b = summary.find({"W", "b", 1});
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->error.has_value());
  EXPECT_EQ(b->error->kind, ErrorKind::kTimeout);
  EXPECT_TRUE(b->error->timed_out);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 0.35);  // did not block on the 400ms sleep
}

TEST(SweepEngine, TimeoutIsRetryable) {
  std::atomic<int> calls{0};
  SweepOptions options;
  options.deadline_s = 0.03;
  options.max_retries = 2;
  SweepEngine engine(options);
  const SweepSummary summary =
      engine.run({{"W", "a", 1}}, [&](const JobSpec& spec) {
        if (calls.fetch_add(1) == 0)  // only the first attempt hangs
          std::this_thread::sleep_for(std::chrono::milliseconds(150));
        return fake_report(spec);
      });
  EXPECT_EQ(summary.ok, 1);
  EXPECT_EQ(summary.retried, 1);
  EXPECT_GE(summary.outcomes[0].attempts, 2);
}

TEST(SweepEngine, FaultInjectorHangSurfacesAsTimeoutNotAStuckSweep) {
  // The real fault-injection stack: a SimulatedBus wrapped in a
  // FaultInjector whose plan scripts a hang on every observation. The job
  // realizes the injected duration as wall-clock time (scaled down:
  // 1 simulated second -> 1 real millisecond), which is exactly what a
  // measurement harness driving real hardware would experience.
  const hw::MachineSpec machine = hw::anl_eureka();
  faults::FaultPlan plan;
  plan.hang_probability = 1.0;
  plan.hang_factor = 10000.0;

  pcie::SimulatedBus bus(machine.pcie, 7);
  faults::FaultInjector injector(bus, plan);
  // A timed-out attempt is abandoned, not cancelled: its thread may still
  // be realizing the stall when the retry re-enters the injector. The
  // injector call itself is microseconds, so serializing it (but not the
  // sleep) keeps the shared RNG race-free without affecting the deadline.
  std::mutex injector_mutex;

  SweepOptions options;
  options.workers = 1;  // the injector's scripted stream is shared state
  options.deadline_s = 0.05;
  options.max_retries = 1;
  SweepEngine engine(options);
  const SweepSummary summary =
      engine.run(three_jobs(), [&](const JobSpec& spec) {
        if (spec.size_label == "b") {
          double simulated_s = 0.0;
          {
            std::lock_guard<std::mutex> lock(injector_mutex);
            simulated_s = injector.time_transfer(
                util::kMiB, hw::Direction::kHostToDevice,
                hw::HostMemory::kPinned);
          }
          // Realize the simulated stall as wall-clock time, capped so an
          // abandoned attempt still terminates promptly at teardown. The
          // hang_factor makes simulated_s seconds long; the cap keeps the
          // test fast while staying far beyond the 50ms deadline.
          const double realized_s = std::min(simulated_s, 0.2);
          std::this_thread::sleep_for(
              std::chrono::duration<double>(realized_s));
        }
        return fake_report(spec);
      });
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.failed, 1);
  const JobOutcome* b = summary.find({"W", "b", 1});
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->error.has_value());
  EXPECT_EQ(b->error->kind, ErrorKind::kTimeout);
  EXPECT_TRUE(b->error->timed_out);
  EXPECT_EQ(b->attempts, 2);  // timed out, retried, timed out again
  {
    std::lock_guard<std::mutex> lock(injector_mutex);
    EXPECT_GE(injector.stats().hangs, 1u);
  }
}

// --- journaling + resume ---

TEST(SweepEngine, JournalReplaysCompletedJobsAndRerunsFailedOnes) {
  TempJournal journal("resume");
  std::map<std::string, int> calls;

  SweepOptions options;
  options.workers = 1;  // unsynchronized call counting
  options.journal_path = journal.path();
  options.max_retries = 0;
  const auto jobs = three_jobs();

  {  // First run: "b" fails permanently, the others succeed + journal.
    SweepEngine engine(options);
    const SweepSummary summary = engine.run(jobs, [&](const JobSpec& spec) {
      ++calls[spec.size_label];
      if (spec.size_label == "b") throw CalibrationError("poisoned config");
      return fake_report(spec);
    });
    EXPECT_EQ(summary.ok, 2);
    EXPECT_EQ(summary.failed, 1);
  }
  {  // Second run: a and c replay from the journal, only b re-executes.
    SweepEngine engine(options);
    const SweepSummary summary = engine.run(jobs, [&](const JobSpec& spec) {
      ++calls[spec.size_label];
      return fake_report(spec);
    });
    EXPECT_EQ(summary.resumed, 2);
    EXPECT_EQ(summary.ok, 1);
    EXPECT_EQ(summary.failed, 0);
    EXPECT_EQ(summary.attempts, 1);  // only b ran
    const JobOutcome* a = summary.find({"W", "a", 1});
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->status, JobStatus::kResumed);
    EXPECT_EQ(a->attempts, 0);
    // The resumed report carries the journaled scalars.
    ASSERT_TRUE(a->report.has_value());
    EXPECT_DOUBLE_EQ(a->report->measured_speedup(),
                     fake_report({"W", "a", 1}).measured_speedup());
  }
  EXPECT_EQ(calls["a"], 1);
  EXPECT_EQ(calls["b"], 2);
  EXPECT_EQ(calls["c"], 1);

  {  // Third run: everything resumes; the job function must not run.
    SweepEngine engine(options);
    const SweepSummary summary =
        engine.run(jobs, [&](const JobSpec&) -> core::ProjectionReport {
          ADD_FAILURE() << "no job should execute on a complete journal";
          return {};
        });
    EXPECT_EQ(summary.resumed, 3);
    EXPECT_EQ(summary.attempts, 0);
  }
}

TEST(SweepEngine, ResumeDisabledReRunsEverything) {
  TempJournal journal("noresume");
  SweepOptions options;
  options.workers = 1;  // unsynchronized call counting
  options.journal_path = journal.path();
  options.resume = false;
  int calls = 0;
  for (int run = 0; run < 2; ++run) {
    SweepEngine engine(options);
    engine.run(three_jobs(), [&](const JobSpec& spec) {
      ++calls;
      return fake_report(spec);
    });
  }
  EXPECT_EQ(calls, 6);
}

TEST(SweepEngine, TornJournalTailResumesCleanly) {
  TempJournal journal("torn");
  SweepOptions options;
  options.workers = 1;  // unsynchronized call counting
  options.journal_path = journal.path();
  const auto jobs = three_jobs();
  {
    SweepEngine engine(options);
    engine.run(jobs, [&](const JobSpec& spec) { return fake_report(spec); });
  }
  // Crash mid-append of the final record.
  const auto size = fs::file_size(journal.path());
  fs::resize_file(journal.path(), size - 5);

  SweepEngine engine(options);
  int calls = 0;
  const SweepSummary summary = engine.run(jobs, [&](const JobSpec& spec) {
    ++calls;
    return fake_report(spec);
  });
  EXPECT_EQ(summary.journal_corrupt_lines, 1);
  EXPECT_EQ(summary.resumed, 2);  // the two intact records survive
  EXPECT_EQ(summary.ok, 1);       // only the torn job re-ran
  EXPECT_EQ(calls, 1);
}

// --- the chaos sweep: the full acceptance scenario ---

// A Fig. 7-style CFD size sweep through the real projection pipeline with
// faults::FaultInjector scripting transient failures, plus one permanently
// poisoned configuration. Healthy jobs must complete and journal; a second
// engine run must resume from the journal re-executing only the failed
// job; and every successful result must equal the fault-free run.
TEST(SweepEngine, ChaosSweepPreservesCompletedWorkAndResumes) {
  const auto all = workloads::paper_workloads();
  const workloads::Workload& cfd = workloads::find_workload(all, "CFD");

  std::vector<JobSpec> jobs;
  for (const workloads::DataSize& size : cfd.paper_data_sizes())
    jobs.push_back({"CFD", size.label, 1});
  ASSERT_GE(jobs.size(), 2u);
  const std::string poisoned = jobs[1].size_label;

  // Per-spec runner construction keeps every job's stochastic streams
  // independent of which other jobs ran — the property that makes the
  // fault-free comparison exact.
  const auto project = [&](const JobSpec& spec) {
    core::ExperimentRunner runner;
    return runner.run(cfd, workloads::find_data_size(cfd, spec.size_label),
                      spec.iterations);
  };

  // Fault-free reference.
  std::map<std::string, core::ProjectionReport> reference;
  for (const JobSpec& spec : jobs) reference.emplace(spec.size_label, project(spec));

  TempJournal journal("chaos");
  SweepOptions options;
  // workers = 1: the scripted fail_first transients must land on the first
  // job deterministically. The 8-worker chaos variant lives in
  // sweep_determinism_test.
  options.workers = 1;
  options.journal_path = journal.path();
  options.max_retries = 3;

  // The real injection stack scripts the transients: the first two
  // observations fail (MeasurementError), later ones pass.
  const hw::MachineSpec machine = hw::anl_eureka();
  faults::FaultPlan plan;
  plan.fail_first = 2;
  pcie::SimulatedBus bus(machine.pcie, 11);
  faults::FaultInjector injector(bus, plan);

  {  // Run 1: transients + one poisoned configuration.
    SweepEngine engine(options);
    const SweepSummary summary = engine.run(jobs, [&](const JobSpec& spec) {
      // A pre-flight probe transfer through the injector: transient
      // failures surface exactly as they would from flaky hardware.
      injector.time_transfer(util::kMiB, hw::Direction::kHostToDevice,
                             hw::HostMemory::kPinned);
      if (spec.size_label == poisoned)
        throw CalibrationError("poisoned configuration");
      return project(spec);
    });

    EXPECT_EQ(summary.ok, static_cast<int>(jobs.size()) - 1);
    EXPECT_EQ(summary.failed, 1);
    EXPECT_GE(summary.retried, 1);  // the fail_first transients got retried
    EXPECT_TRUE(summary.describe().find("FAILED") != std::string::npos);

    // Job-level attempt counts: the first job absorbed the two scripted
    // transients (3 attempts), the poisoned one failed on attempt 1.
    EXPECT_EQ(summary.outcomes[0].attempts, 3);
    const JobOutcome* failed = summary.find({"CFD", poisoned, 1});
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->attempts, 1);
    EXPECT_EQ(failed->error->kind, ErrorKind::kCalibration);
  }

  {  // Run 2: faults cleared; only the poisoned job re-executes.
    int executed = 0;
    SweepEngine engine(options);
    const SweepSummary summary = engine.run(jobs, [&](const JobSpec& spec) {
      ++executed;
      EXPECT_EQ(spec.size_label, poisoned);
      return project(spec);
    });
    EXPECT_EQ(executed, 1);
    EXPECT_EQ(summary.resumed, static_cast<int>(jobs.size()) - 1);
    EXPECT_EQ(summary.ok, 1);
    EXPECT_EQ(summary.failed, 0);

    // The final table equals the fault-free run everywhere: resumed rows
    // replay the journaled scalars, the re-run row recomputed them.
    for (const JobOutcome& outcome : summary.outcomes) {
      ASSERT_TRUE(outcome.report.has_value());
      const core::ProjectionReport& expected =
          reference.at(outcome.spec.size_label);
      EXPECT_DOUBLE_EQ(outcome.report->measured_speedup(),
                       expected.measured_speedup());
      EXPECT_DOUBLE_EQ(outcome.report->predicted_speedup_both(),
                       expected.predicted_speedup_both());
      EXPECT_DOUBLE_EQ(outcome.report->predicted_speedup_kernel_only(),
                       expected.predicted_speedup_kernel_only());
      EXPECT_DOUBLE_EQ(outcome.report->speedup_error_both_pct(),
                       expected.speedup_error_both_pct());
    }
  }
}

}  // namespace
}  // namespace grophecy::exec
