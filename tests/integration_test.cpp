// Cross-module integration tests: machine portability (the paper claims
// the technique "is not application or system specific"), the hw registry,
// and paper-shape checks that span the whole pipeline.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "util/contracts.h"
#include "util/error.h"
#include "skeleton/builder.h"
#include "util/stats.h"
#include "util/units.h"
#include "workloads/workload.h"

namespace grophecy {
namespace {

TEST(Registry, MachinesAreDistinctAndSane) {
  const auto machines = hw::all_machines();
  ASSERT_EQ(machines.size(), 3u);
  for (const hw::MachineSpec& m : machines) {
    EXPECT_GT(m.cpu.peak_gflops(), 0.0);
    EXPECT_GT(m.gpu.peak_gflops(), m.cpu.peak_gflops());
    EXPECT_GT(m.gpu.mem_bandwidth_gbps, m.cpu.mem_bandwidth_gbps);
    EXPECT_GT(m.pcie.pinned_h2d.asymptotic_gbps, 0.0);
  }
  EXPECT_EQ(hw::machine_by_name("anl_eureka").name, "anl_eureka");
  // Lookup follows the workloads::find_workload contract: bad input is a
  // UsageError (not a ContractViolation) whose message lists the fleet.
  try {
    hw::machine_by_name("nope");
    FAIL() << "machine_by_name(\"nope\") did not throw";
  } catch (const UsageError& error) {
    EXPECT_NE(std::string(error.what()).find("anl_eureka"),
              std::string::npos)
        << error.what();
  }
}

TEST(Registry, PcieGenerationsScaleAsDocumented) {
  // §II-B: ~3, 6, 12 GB/s effective for PCIe v1, v2, v3 (we land at the
  // measured-in-practice values: ~2.5, ~5.5, ~11.5).
  const double v1 = hw::anl_eureka().pcie.pinned_h2d.asymptotic_gbps;
  const double v2 = hw::pcie2_fermi().pcie.pinned_h2d.asymptotic_gbps;
  const double v3 = hw::pcie3_kepler().pcie.pinned_h2d.asymptotic_gbps;
  EXPECT_NEAR(v2 / v1, 2.0, 0.4);
  EXPECT_NEAR(v3 / v2, 2.0, 0.4);
}

TEST(Portability, CalibrationAdaptsAcrossMachines) {
  // "The PCIe bus model is constructed automatically for each new system":
  // calibrated bandwidth must track each machine's physical link.
  for (const hw::MachineSpec& machine : hw::all_machines()) {
    pcie::SimulatedBus bus(machine.pcie, 5);
    const pcie::BusModel model = pcie::TransferCalibrator().calibrate(bus);
    const double predicted_64mb = model.predict_seconds(
        64 * util::kMiB, hw::Direction::kHostToDevice);
    const double truth = bus.expected_time(
        64 * util::kMiB, hw::Direction::kHostToDevice,
        hw::HostMemory::kPinned);
    EXPECT_NEAR(predicted_64mb, truth, truth * 0.05) << machine.name;
  }
}

TEST(Portability, FasterBusMovesTheSameDataFaster) {
  // The same workload's transfers run ~4.5x faster over PCIe v3 than over
  // the paper's PCIe v1 link. (The transfer *share* of total time need not
  // shrink — the newer GPU speeds kernels up even more, which is exactly
  // why transfer modeling stays relevant across generations.)
  const auto all = workloads::paper_workloads();
  core::ExperimentRunner v1_runner(hw::anl_eureka());
  core::ExperimentRunner v3_runner(hw::pcie3_kepler());
  const auto size = all[2]->paper_data_sizes().back();  // SRAD 4096
  const core::ProjectionReport v1 = v1_runner.run(*all[2], size);
  const core::ProjectionReport v3 = v3_runner.run(*all[2], size);
  EXPECT_EQ(v1.plan.total_bytes(), v3.plan.total_bytes());
  EXPECT_NEAR(v1.measured_transfer_s / v3.measured_transfer_s, 4.5, 1.0);
}

TEST(Portability, PipelineRunsOnEveryMachine) {
  const auto all = workloads::paper_workloads();
  for (const hw::MachineSpec& machine : hw::all_machines()) {
    core::ExperimentRunner runner(machine);
    const core::ProjectionReport report =
        runner.run(*all[1], all[1]->paper_data_sizes()[1]);
    EXPECT_GT(report.measured_total_s(), 0.0) << machine.name;
    EXPECT_LT(report.speedup_error_both_pct(), 50.0) << machine.name;
  }
}

TEST(PaperShape, TransferDominatesAllButSmallestHotspot) {
  // Table I: "for all applications and data sets, with the exception of
  // HotSpot's smallest data set, the transfer time is greater than the
  // kernel execution time." Our simulated machine keeps transfer dominant
  // everywhere (the 64x64 HotSpot kernel is launch-overhead bound).
  core::ExperimentRunner runner;
  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      const core::ProjectionReport report = runner.run(*workload, size);
      EXPECT_GT(report.measured_transfer_s, report.measured_kernel_s)
          << workload->name() << " " << size.label;
    }
  }
}

TEST(PaperShape, AveragesReproduceTheHeadline) {
  // Abstract: "the inclusion of data transfer time reduces the error in
  // the predicted GPU speedup from 255% to 9%" — we check the ordering and
  // magnitude bands rather than exact percentages.
  core::ExperimentRunner runner;
  std::vector<double> kernel_only, transfer_only, both;
  for (const auto& workload : workloads::paper_workloads()) {
    std::vector<double> wk_kernel, wk_transfer, wk_both;
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      const core::ProjectionReport report = runner.run(*workload, size);
      wk_kernel.push_back(report.speedup_error_kernel_only_pct());
      wk_transfer.push_back(report.speedup_error_transfer_only_pct());
      wk_both.push_back(report.speedup_error_both_pct());
    }
    kernel_only.push_back(util::mean(wk_kernel));
    transfer_only.push_back(util::mean(wk_transfer));
    both.push_back(util::mean(wk_both));
  }
  const double avg_kernel = util::mean(kernel_only);
  const double avg_transfer = util::mean(transfer_only);
  const double avg_both = util::mean(both);
  EXPECT_GT(avg_kernel, 150.0);       // hundreds of percent
  EXPECT_LT(avg_transfer, avg_kernel);  // transfer-only is better...
  EXPECT_GT(avg_transfer, avg_both);    // ...but combined wins
  EXPECT_LT(avg_both, 20.0);            // paper: 9%
}

TEST(PaperShape, KernelErrorTracksIrregularity) {
  // Fig. 6: the irregular CFD has the worst kernel predictions; the
  // regular SRAD the best.
  core::ExperimentRunner runner;
  const auto all = workloads::paper_workloads();
  const double cfd_err =
      runner.run(*all[0], all[0]->paper_data_sizes().front())
          .kernel_error_pct();
  const double srad_err =
      runner.run(*all[2], all[2]->paper_data_sizes().back())
          .kernel_error_pct();
  EXPECT_GT(cfd_err, 15.0);
  EXPECT_LT(srad_err, 5.0);
  EXPECT_GT(cfd_err, srad_err * 3.0);
}

}  // namespace
}  // namespace grophecy
