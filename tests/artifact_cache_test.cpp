// The shared-artifact layer (util/artifact_cache.h and its three users):
//
//   * KeyBuilder: field-order and boundary sensitivity of the FNV-1a
//     content keys;
//   * ArtifactCache: single-flight builds, hit/miss accounting, eviction
//     of throwing factories, immutable shared artifacts;
//   * the pipeline caches: parse/skeleton/usage caching returns the same
//     immutable artifact, plan keys are iteration independent (paper
//     §III-B), and projections are bit-identical with the caches on or
//     off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/grophecy.h"
#include "dataflow/usage_cache.h"
#include "hw/machine_file.h"
#include "hw/registry.h"
#include "skeleton/fingerprint.h"
#include "skeleton/parse.h"
#include "util/artifact_cache.h"
#include "workloads/skeleton_cache.h"
#include "workloads/workload.h"

namespace grophecy {
namespace {

// --- KeyBuilder ---

TEST(ArtifactCache, KeyBuilderDistinguishesFieldBoundaries) {
  const std::uint64_t ab_c =
      util::KeyBuilder().field("ab").field("c").hash();
  const std::uint64_t a_bc =
      util::KeyBuilder().field("a").field("bc").hash();
  EXPECT_NE(ab_c, a_bc);  // length prefix keeps boundaries distinct

  EXPECT_NE(util::KeyBuilder().field(1).field(2).hash(),
            util::KeyBuilder().field(2).field(1).hash());
  EXPECT_NE(util::KeyBuilder().field(0.0).hash(),
            util::KeyBuilder().field(-0.0).hash());  // bit representation
  EXPECT_EQ(util::KeyBuilder().field("x").field(7).hash(),
            util::KeyBuilder().field("x").field(7).hash());
}

// --- ArtifactCache core contract ---

TEST(ArtifactCache, BuildsOncePerKeyAndCountsHits) {
  util::ArtifactCache<int> cache;
  int builds = 0;
  bool from_cache = true;
  const auto first = cache.get_or_build(1, [&] { return ++builds; },
                                        &from_cache);
  EXPECT_FALSE(from_cache);
  const auto second = cache.get_or_build(1, [&] { return ++builds; },
                                         &from_cache);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());  // the same immutable artifact
  EXPECT_EQ(*second, 1);

  const auto other = cache.get_or_build(2, [&] { return ++builds; });
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(*other, 2);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ArtifactCache, SingleFlightUnderConcurrentMisses) {
  util::ArtifactCache<int> cache;
  std::atomic<int> builds{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      results[static_cast<std::size_t>(t)] = cache.get_or_build(42, [&] {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return 7;
      });
    });
  }
  go.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(builds.load(), 1);  // one flight, everyone shares it
  for (const auto& result : results) {
    ASSERT_TRUE(result);
    EXPECT_EQ(result.get(), results[0].get());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(ArtifactCache, ThrowingFactoryIsEvictedNotCached) {
  util::ArtifactCache<int> cache;
  EXPECT_THROW(cache.get_or_build(
                   5, []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // the failed flight is evicted
  // A later call retries and can succeed.
  const auto value = cache.get_or_build(5, [] { return 11; });
  EXPECT_EQ(*value, 11);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ArtifactCache, FailedFlightEvictionNeverRemovesASuccessor) {
  // Regression: eviction after a failed flight is by flight *identity*,
  // mirroring the PR 6 CalibrationCache race fix. If clear() races
  // between the factory's throw and the eviction, and a fresh, healthy
  // flight has already been installed under the same key, that successor
  // must survive — the old code erased by key and would drop it,
  // re-running its factory and breaking single-flight.
  util::ArtifactCache<int> cache;
  std::atomic<bool> failing_started{false};
  std::atomic<bool> cleared{false};

  std::thread failing([&] {
    try {
      cache.get_or_build(99, [&]() -> int {
        failing_started = true;
        // Hold the flight open until the main thread has cleared the
        // cache and installed a healthy successor under the same key.
        while (!cleared.load()) std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        throw std::runtime_error("stale flight fails late");
      });
      ADD_FAILURE() << "the failing flight should throw";
    } catch (const std::runtime_error&) {
    }
  });

  while (!failing_started.load()) std::this_thread::yield();
  cache.clear();  // forget the in-flight failure-to-be
  int successor_builds = 0;
  const auto healthy = cache.get_or_build(99, [&] {
    ++successor_builds;
    return 21;
  });
  EXPECT_EQ(*healthy, 21);
  cleared = true;
  failing.join();  // the stale flight fails and runs its eviction path

  // The healthy successor survived the stale flight's eviction: a third
  // caller hits the cache instead of rebuilding.
  EXPECT_EQ(cache.size(), 1u);
  bool from_cache = false;
  const auto again = cache.get_or_build(99, [&]() -> int {
    ++successor_builds;
    return 999;
  }, &from_cache);
  EXPECT_EQ(successor_builds, 1);  // never re-ran
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(*again, 21);
}

TEST(ArtifactCache, FailedFlightEvictionUnderContendedRetries) {
  // Many threads hammer one key with a factory that fails for the first
  // wave and succeeds afterwards; interleaved clear() calls shuffle
  // flight lifetimes. The cache must end in a consistent state: a cached
  // healthy value, no lost successors, no caller hung.
  util::ArtifactCache<int> cache;
  std::atomic<int> attempts{0};
  std::atomic<int> successes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 25; ++round) {
        try {
          const auto value = cache.get_or_build(7, [&]() -> int {
            const int n = attempts.fetch_add(1);
            std::this_thread::yield();
            if (n < 3) throw std::runtime_error("warming up");
            return 64;
          });
          EXPECT_EQ(*value, 64);
          successes.fetch_add(1);
        } catch (const std::runtime_error&) {
        }
        if (round % 10 == 3) cache.clear();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(successes.load(), 0);
  // A final call settles the cache: either a healthy survivor or a fresh
  // build — never a poisoned entry.
  const auto final_value = cache.get_or_build(7, [] { return 64; });
  EXPECT_EQ(*final_value, 64);
  EXPECT_LE(cache.size(), 1u);
}

// --- parse caches ---

TEST(ArtifactCache, ParseCachesReturnTheSameDocumentObject) {
  const std::string text = R"(
app cached_parse
array a f32[16]
kernel k
  parallel for i in 0..16
  stmt flops=1
    load a[i]
)";
  const auto first = skeleton::parse_skeleton_cached(text);
  const auto second = skeleton::parse_skeleton_cached(text);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->name, "cached_parse");
  // A different document is a different artifact, even when it parses to
  // the same structure — the parse cache is keyed on the bytes.
  const auto other =
      skeleton::parse_skeleton_cached(text + "# trailing comment\n");
  EXPECT_NE(first.get(), other.get());
}

// --- skeleton + usage caches and iteration independence ---

TEST(ArtifactCache, SkeletonCacheKeysOnWorkloadSizeAndIterations) {
  const workloads::PaperSuite& suite = workloads::PaperSuite::instance();
  const workloads::Workload& hotspot = suite.find("HotSpot");
  const workloads::DataSize size = workloads::find_data_size(hotspot, "64 x 64");

  const auto a = workloads::cached_skeleton(hotspot, size, 4);
  const auto b = workloads::cached_skeleton(hotspot, size, 4);
  const auto c = workloads::cached_skeleton(hotspot, size, 8);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->content_hash, skeleton::fingerprint(a->app));
  EXPECT_EQ(a->usage_key, skeleton::usage_fingerprint(a->app));
}

TEST(ArtifactCache, UsageFingerprintIgnoresIterationsOnly) {
  const workloads::PaperSuite& suite = workloads::PaperSuite::instance();
  const workloads::Workload& hotspot = suite.find("HotSpot");
  const workloads::DataSize size = workloads::find_data_size(hotspot, "64 x 64");
  const auto iters1 = workloads::cached_skeleton(hotspot, size, 1);
  const auto iters8 = workloads::cached_skeleton(hotspot, size, 8);

  // Same content except iterations: the full fingerprint differs, the
  // usage fingerprint (what the plan cache keys on) does not.
  EXPECT_NE(iters1->content_hash, iters8->content_hash);
  EXPECT_EQ(iters1->usage_key, iters8->usage_key);

  // So an iteration sweep shares one usage artifact.
  const auto plan1 = dataflow::cached_usage(iters1->usage_key, iters1->app);
  const auto plan8 = dataflow::cached_usage(iters8->usage_key, iters8->app);
  EXPECT_EQ(plan1.get(), plan8.get());

  // A different data size is a different plan.
  const workloads::DataSize big =
      workloads::find_data_size(hotspot, "512 x 512");
  const auto other = workloads::cached_skeleton(hotspot, big, 1);
  EXPECT_NE(other->usage_key, iters1->usage_key);
}

// --- the projection is identical with the caches on or off ---

TEST(ArtifactCache, ProjectionBitIdenticalWithCachesOnOrOff) {
  const workloads::PaperSuite& suite = workloads::PaperSuite::instance();
  const workloads::Workload& srad = suite.find("SRAD");
  const workloads::DataSize size =
      workloads::find_data_size(srad, "1024 x 1024");
  const skeleton::AppSkeleton app = srad.make_skeleton(size, 2);

  core::ProjectionOptions cached_options;
  cached_options.use_artifact_caches = true;
  core::ProjectionOptions uncached_options;
  uncached_options.use_artifact_caches = false;

  core::Grophecy cached_engine(hw::anl_eureka(), cached_options);
  core::Grophecy uncached_engine(hw::anl_eureka(), uncached_options);
  const core::ProjectionReport cached = cached_engine.project(app);
  const core::ProjectionReport uncached = uncached_engine.project(app);

  EXPECT_TRUE(cached.artifacts.caches_enabled);
  EXPECT_FALSE(uncached.artifacts.caches_enabled);
  EXPECT_EQ(cached.artifacts.usage_key, skeleton::usage_fingerprint(app));

  // Bitwise equality of every scalar the journal records.
  EXPECT_EQ(cached.predicted_kernel_s, uncached.predicted_kernel_s);
  EXPECT_EQ(cached.predicted_transfer_s, uncached.predicted_transfer_s);
  EXPECT_EQ(cached.measured_kernel_s, uncached.measured_kernel_s);
  EXPECT_EQ(cached.measured_transfer_s, uncached.measured_transfer_s);
  EXPECT_EQ(cached.measured_cpu_s, uncached.measured_cpu_s);
  EXPECT_EQ(cached.plan.input_bytes(), uncached.plan.input_bytes());
  EXPECT_EQ(cached.plan.output_bytes(), uncached.plan.output_bytes());
  EXPECT_EQ(cached.describe(), uncached.describe());
}

}  // namespace
}  // namespace grophecy
