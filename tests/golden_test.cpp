// Golden regression tests: pin the headline reproduction numbers.
//
// Everything in the pipeline is deterministic for the default seed, so the
// key paper-reproduction quantities can be pinned with loose tolerances.
// If a model or calibration change moves one of these outside its band,
// the reproduction story itself has changed and EXPERIMENTS.md must be
// revisited — that is exactly the alarm these tests raise.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "util/stats.h"
#include "workloads/workload.h"

namespace grophecy {
namespace {

struct Sweep {
  std::vector<double> kernel_only, transfer_only, both;
  core::ProjectionReport stassuij;
  core::ProjectionReport srad_large;
};

const Sweep& full_sweep() {
  static const Sweep sweep = [] {
    Sweep out;
    core::ExperimentRunner runner;
    for (const auto& workload : workloads::paper_workloads()) {
      for (const workloads::DataSize& size : workload->paper_data_sizes()) {
        core::ProjectionReport report = runner.run(*workload, size);
        out.kernel_only.push_back(report.speedup_error_kernel_only_pct());
        out.transfer_only.push_back(
            report.speedup_error_transfer_only_pct());
        out.both.push_back(report.speedup_error_both_pct());
        if (workload->name() == "Stassuij") out.stassuij = report;
        if (workload->name() == "SRAD" && size.label == "4096 x 4096")
          out.srad_large = report;
      }
    }
    return out;
  }();
  return sweep;
}

TEST(Golden, CalibrationMatchesThePaperRegime) {
  core::ExperimentRunner runner;
  const pcie::BusModel& bus = runner.engine().bus_model();
  // §III-C: alpha on the order of 10 us, bandwidth ~2.5 GB/s.
  EXPECT_NEAR(bus.h2d.alpha_s * 1e6, 10.8, 2.0);
  EXPECT_NEAR(bus.h2d.bandwidth_gbps(), 2.54, 0.15);
  EXPECT_NEAR(bus.d2h.bandwidth_gbps(), 2.35, 0.15);
}

TEST(Golden, TableTwoAverages) {
  const Sweep& sweep = full_sweep();
  // Reproduction of "255% -> 68% -> 9%": our bands (see EXPERIMENTS.md).
  EXPECT_NEAR(util::mean(sweep.kernel_only), 448.0, 448.0 * 0.25);
  EXPECT_NEAR(util::mean(sweep.transfer_only), 49.0, 49.0 * 0.35);
  EXPECT_LT(util::mean(sweep.both), 15.0);
  // The ordering is the paper's headline and must never regress.
  EXPECT_GT(util::mean(sweep.kernel_only),
            util::mean(sweep.transfer_only) * 3.0);
  EXPECT_GT(util::mean(sweep.transfer_only),
            util::mean(sweep.both) * 2.0);
}

TEST(Golden, StassuijVerdictFlip) {
  const core::ProjectionReport& report = full_sweep().stassuij;
  EXPECT_NEAR(report.predicted_speedup_kernel_only(), 1.57, 0.30);
  EXPECT_NEAR(report.measured_speedup(), 0.44, 0.08);
  EXPECT_NEAR(report.predicted_speedup_both(), 0.45, 0.08);
}

TEST(Golden, SradLargeIsTheAccuracyShowcase) {
  const core::ProjectionReport& report = full_sweep().srad_large;
  // Paper: kernel error 0.7%, limit error 0.75%. Ours sits near 1%.
  EXPECT_LT(report.kernel_error_pct(), 4.0);
  EXPECT_LT(report.speedup_error_limit_pct(), 4.0);
  EXPECT_NEAR(util::seconds_to_ms(report.measured_kernel_s), 36.3, 5.0);
  EXPECT_NEAR(util::seconds_to_ms(report.measured_transfer_s), 54.9, 5.0);
}

TEST(Golden, TransferSharesStayInTheTwoThirdsRegime) {
  // Paper Table I: transfer is ~60-80% of total for every workload.
  core::ExperimentRunner runner;
  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      const core::ProjectionReport report = runner.run(*workload, size);
      EXPECT_GT(report.measured_percent_transfer(), 50.0)
          << workload->name() << " " << size.label;
      EXPECT_LT(report.measured_percent_transfer(), 97.0)
          << workload->name() << " " << size.label;
    }
  }
}

}  // namespace
}  // namespace grophecy
