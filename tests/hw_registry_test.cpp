// Tests for the architecture-family layer and the machine registry: family
// resolution and occupancy rules, validate_machine's structural checks,
// .gmach round trips of the architecture fields, registry admission
// (validation, duplicate rejection, directory scans), the shipped fleet's
// gen1-gen5 coverage, and the cross-machine sweep axis (grid expansion,
// identity/byte stability, journal determinism across worker counts, and
// the shard wire protocol carrying the machine name).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "exec/shard/protocol.h"
#include "exec/sweep_request.h"
#include "hw/architecture.h"
#include "hw/machine_file.h"
#include "hw/machine_registry.h"
#include "hw/registry.h"
#include "util/error.h"

namespace grophecy::hw {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- architecture families ---

TEST(Architecture, FamiliesSpanTeslaThroughModern) {
  const std::vector<std::string> families = Architecture::families();
  ASSERT_GE(families.size(), 10u);
  EXPECT_EQ(families.front(), "tesla");  // oldest generation first
  const std::set<std::string> set(families.begin(), families.end());
  for (const char* required :
       {"tesla", "fermi", "kepler", "pascal", "volta", "ampere", "hopper",
        "cdna2"})
    EXPECT_EQ(set.count(required), 1u) << required;

  EXPECT_EQ(Architecture::of("tesla").wave_size(), 32);
  EXPECT_EQ(Architecture::of("cdna2").wave_size(), 64);
  EXPECT_EQ(Architecture::of("tesla").max_pcie_generation(), 2);
  EXPECT_EQ(Architecture::of("hopper").max_pcie_generation(), 5);
  EXPECT_EQ(Architecture::try_of("not_a_family"), nullptr);
}

TEST(Architecture, UnknownFamilyIsAUsageErrorListingTheFamilies) {
  try {
    Architecture::of("g80");  // plausible guess, wrong key
    FAIL() << "expected UsageError";
  } catch (const UsageError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("g80"), std::string::npos) << what;
    EXPECT_NE(what.find("tesla"), std::string::npos) << what;
    EXPECT_NE(what.find("hopper"), std::string::npos) << what;
  }
}

TEST(Architecture, AllocationGranularityRoundsUpOccupancy) {
  GpuSpec gpu = anl_eureka().gpu;
  gpu.max_threads_per_sm = 2048;
  gpu.max_blocks_per_sm = 32;
  gpu.max_threads_per_block = 1024;
  gpu.registers_per_sm = 65536;
  gpu.shared_mem_per_sm_bytes = 49152;

  const Architecture& arch = Architecture::of("tesla");
  // 96 threads x 33 regs = 3168 regs exact; 65536/3168 = 20 blocks.
  const Occupancy exact = arch.occupancy(gpu, 96, 33, 0);
  EXPECT_EQ(exact.blocks_per_sm, 20);
  EXPECT_STREQ(exact.limiter, "regs");

  // Real allocators round to 256: 3328 regs/block; 65536/3328 = 19.
  gpu.reg_alloc_granularity = 256;
  const Occupancy rounded = arch.occupancy(gpu, 96, 33, 0);
  EXPECT_EQ(rounded.blocks_per_sm, 19);
  EXPECT_STREQ(rounded.limiter, "regs");
  EXPECT_LT(rounded.fraction, exact.fraction);
}

// --- validate_machine ---

TEST(ValidateMachine, AcceptsEveryBuiltin) {
  for (const MachineSpec& machine : builtin_machines())
    EXPECT_NO_THROW(validate_machine(machine)) << machine.name;
}

TEST(ValidateMachine, RejectsMalformedSpecsNamingTheField) {
  const auto expect_rejected = [](MachineSpec machine, const char* needle) {
    try {
      validate_machine(machine);
      FAIL() << "expected UsageError mentioning " << needle;
    } catch (const UsageError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };

  MachineSpec zero_sms = anl_eureka();
  zero_sms.gpu.num_sms = 0;
  expect_rejected(zero_sms, "gpu.num_sms");

  MachineSpec bad_family = anl_eureka();
  bad_family.gpu.family = "quantum";
  expect_rejected(bad_family, "quantum");

  // Claimed sustained bandwidth above the link's theoretical capacity.
  MachineSpec impossible_bus = anl_eureka();
  impossible_bus.pcie.pinned_h2d.asymptotic_gbps = 100.0;
  expect_rejected(impossible_bus, "asymptotic_gbps");

  // A G80-class device never shipped on a gen5 link.
  MachineSpec anachronism = anl_eureka();
  anachronism.pcie.generation = 5;
  expect_rejected(anachronism, "generation");

  // CUDA families schedule 32-wide warps; 64 is a CDNA wavefront.
  MachineSpec wrong_warp = pcie3_kepler();
  wrong_warp.gpu.warp_size = 64;
  expect_rejected(wrong_warp, "warp_size");
}

// --- .gmach round trips of the architecture fields ---

TEST(MachineFileArchitecture, NewFieldsParseAndRoundTrip) {
  const MachineSpec machine = parse_machine(R"(
base pcie3_kepler
name granular
gpu.family pascal
gpu.reg_alloc_granularity 256
gpu.smem_alloc_granularity_bytes 128
)");
  EXPECT_EQ(machine.gpu.family, "pascal");
  EXPECT_EQ(machine.gpu.reg_alloc_granularity, 256u);
  EXPECT_EQ(machine.gpu.smem_alloc_granularity_bytes, 128u);

  // Textual fixed point: serialize -> parse -> serialize is stable, so
  // the new fields survive a round trip like every other field.
  const std::string text = serialize_machine(machine);
  EXPECT_EQ(serialize_machine(parse_machine(text)), text);
}

TEST(MachineFileArchitecture, UnknownBaseListsTheValidBases) {
  try {
    parse_machine("base hopper_h100\n");  // shipped spec, but not a builtin
    FAIL() << "expected MachineParseError";
  } catch (const MachineParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("hopper_h100"), std::string::npos) << what;
    EXPECT_NE(what.find("pcie3_kepler"), std::string::npos) << what;
  }
}

TEST(MachineFileArchitecture, EveryShippedSpecSerializesToAFixedPoint) {
  for (const auto& machine : MachineRegistry::global().machines()) {
    const std::string text = serialize_machine(*machine);
    const MachineSpec reparsed = parse_machine(text);
    EXPECT_EQ(serialize_machine(reparsed), text) << machine->name;
    EXPECT_EQ(reparsed.gpu.family, machine->gpu.family) << machine->name;
  }
}

// --- registry admission ---

TEST(MachineRegistry, RejectsDuplicateNames) {
  MachineRegistry registry;
  registry.add(anl_eureka());
  try {
    registry.add(anl_eureka());
    FAIL() << "expected UsageError";
  } catch (const UsageError& error) {
    EXPECT_NE(std::string(error.what()).find("already registered"),
              std::string::npos)
        << error.what();
  }
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MachineRegistry, RejectsInvalidSpecsAtAdmission) {
  MachineRegistry registry;
  MachineSpec broken = anl_eureka();
  broken.gpu.num_sms = -4;
  EXPECT_THROW(registry.add(broken), UsageError);
  EXPECT_TRUE(registry.empty());
}

TEST(MachineRegistry, FindListsTheFleetForUnknownNames) {
  MachineRegistry registry;
  registry.add(anl_eureka());
  registry.add(pcie2_fermi());
  EXPECT_EQ(registry.find("anl_eureka").name, "anl_eureka");
  EXPECT_EQ(registry.try_find("nope"), nullptr);
  try {
    registry.find("nope");
    FAIL() << "expected UsageError";
  } catch (const UsageError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("anl_eureka"), std::string::npos) << what;
    EXPECT_NE(what.find("pcie2_fermi"), std::string::npos) << what;
  }
}

TEST(MachineRegistry, ScansDirectoriesInFilenameOrder) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "gmach_scan_test";
  fs::create_directories(dir);
  {
    std::ofstream b(dir / "b.gmach");
    b << "base pcie3_kepler\nname bbb\n";
    std::ofstream a(dir / "a.gmach");
    a << "base pcie2_fermi\nname aaa\n";
    std::ofstream skip(dir / "notes.txt");
    skip << "not a machine\n";
  }
  MachineRegistry registry;
  EXPECT_EQ(registry.scan_directory(dir.string()), 2u);
  const std::vector<std::string> names = registry.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aaa");  // filename order, not directory order
  EXPECT_EQ(names[1], "bbb");

  MachineRegistry missing;
  EXPECT_THROW(missing.scan_directory((dir / "absent").string()),
               UsageError);
  fs::remove_all(dir);
}

TEST(MachineRegistry, GlobalFleetSpansPcieGen1ToGen5) {
  const MachineRegistry& registry = MachineRegistry::global();
  EXPECT_GE(registry.size(), 8u);
  EXPECT_EQ(registry.names().front(), "anl_eureka");  // builtins first

  std::set<int> generations;
  for (const auto& machine : registry.machines()) {
    generations.insert(machine->pcie.generation);
    // Every registered family resolves — and therefore validated.
    EXPECT_NE(Architecture::try_of(machine->gpu.family), nullptr)
        << machine->name;
  }
  for (int generation = 1; generation <= 5; ++generation)
    EXPECT_EQ(generations.count(generation), 1u)
        << "no machine with a PCIe gen" << generation << " bus";

  // machine_by_name resolves the whole fleet, not just the builtins.
  EXPECT_EQ(machine_by_name("hopper_h100").pcie.generation, 5);
}

// --- the cross-machine sweep axis ---

TEST(CrossMachineSweep, MachinesAreTheOutermostGridAxis) {
  const std::vector<exec::JobSpec> specs =
      exec::SweepRequest::on(anl_eureka())
          .machines({"pcie2_fermi", "hopper_h100"})
          .workloads({"CFD"})
          .sizes({"97K", "193K"})
          .jobs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].machine, "pcie2_fermi");
  EXPECT_EQ(specs[1].machine, "pcie2_fermi");
  EXPECT_EQ(specs[2].machine, "hopper_h100");
  EXPECT_EQ(specs[3].machine, "hopper_h100");
  EXPECT_EQ(specs[0].key(), "CFD/97K/x1@pcie2_fermi");

  // Same grid point, different machine: distinct fingerprint and
  // decorrelated measurement stream.
  EXPECT_NE(specs[0].fingerprint(), specs[2].fingerprint());
  EXPECT_NE(specs[0].stream_seed(1), specs[2].stream_seed(1));
}

TEST(CrossMachineSweep, SingleMachineSpecsKeepTheirLegacyIdentity) {
  const exec::JobSpec legacy{"CFD", "97K", 1};
  EXPECT_EQ(legacy.machine, "");
  EXPECT_EQ(legacy.key(), "CFD/97K/x1");  // no "@" suffix
  // The expansion of a request without .machines() is byte-identical to
  // the pre-cross-machine builder: same specs, same fingerprints.
  const std::vector<exec::JobSpec> specs =
      exec::SweepRequest::on(anl_eureka())
          .workloads({"CFD"})
          .sizes({"97K"})
          .jobs();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].machine, "");
  EXPECT_EQ(specs[0].fingerprint(), legacy.fingerprint());
}

TEST(CrossMachineSweep, UnknownMachineFailsAtExpansion) {
  try {
    exec::SweepRequest::on(anl_eureka())
        .machines({"warp_nine"})
        .workloads({"CFD"})
        .jobs();
    FAIL() << "expected UsageError";
  } catch (const UsageError& error) {
    EXPECT_NE(std::string(error.what()).find("anl_eureka"),
              std::string::npos)
        << error.what();
  }
}

TEST(CrossMachineSweep, JournalBytesAreIndependentOfWorkerCount) {
  const std::string serial_path =
      ::testing::TempDir() + "xmachine_serial.jsonl";
  const std::string pooled_path =
      ::testing::TempDir() + "xmachine_pooled.jsonl";
  std::remove(serial_path.c_str());
  std::remove(pooled_path.c_str());

  const auto run = [&](int workers, const std::string& journal_path) {
    exec::SweepOptions options;
    options.workers = workers;
    options.journal_path = journal_path;
    options.record_wall_time = false;  // journal = pure function of results
    return exec::SweepRequest::on(anl_eureka())
        .machines({"pcie2_fermi", "hopper_h100"})
        .workloads({"CFD"})
        .sizes({"97K"})
        .run(options);
  };

  const exec::SweepSummary serial = run(1, serial_path);
  const exec::SweepSummary pooled = run(4, pooled_path);
  ASSERT_EQ(serial.outcomes.size(), 2u);
  ASSERT_TRUE(serial.outcomes[0].ok() && serial.outcomes[1].ok());

  // The journal records carry the machine identity and the bytes are
  // identical whatever the worker count.
  const std::string serial_bytes = slurp(serial_path);
  EXPECT_NE(serial_bytes.find("hopper_h100"), std::string::npos);
  EXPECT_EQ(serial_bytes, slurp(pooled_path));

  // And the per-machine results genuinely differ: the gen5 machine beats
  // the gen2 machine on both device and bus time.
  const auto& fermi = *serial.outcomes[0].report;
  const auto& hopper = *serial.outcomes[1].report;
  EXPECT_LT(hopper.predicted_kernel_s, fermi.predicted_kernel_s);
  EXPECT_LT(hopper.predicted_transfer_s, fermi.predicted_transfer_s);

  std::remove(serial_path.c_str());
  std::remove(pooled_path.c_str());
}

TEST(CrossMachineSweep, ShardAssignmentsCarryTheMachine) {
  // The shard wire protocol must round-trip the machine name — dropping
  // it silently projects every shard job on the supervisor's base
  // machine (the exact bug this test pins).
  const exec::JobSpec spec{"CFD", "97K", 2, "volta_v100"};
  const auto decoded = exec::shard::decode_job(exec::shard::encode_job(7, spec));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, 7u);
  EXPECT_EQ(decoded->spec.machine, "volta_v100");
  EXPECT_EQ(decoded->spec.fingerprint(), spec.fingerprint());

  // Single-machine assignments keep their legacy bytes: no machine key.
  const exec::JobSpec legacy{"CFD", "97K", 2};
  EXPECT_EQ(exec::shard::encode_job(7, legacy).find("machine"),
            std::string::npos);
  const auto legacy_decoded =
      exec::shard::decode_job(exec::shard::encode_job(7, legacy));
  ASSERT_TRUE(legacy_decoded.has_value());
  EXPECT_EQ(legacy_decoded->spec.machine, "");
}

}  // namespace
}  // namespace grophecy::hw
