#!/usr/bin/env bash
# Live end-to-end smoke of the process-sharded sweep: run the same sweep
# grid through tools/sweep_shard twice — once in-process (--shards 0,
# --workers 1) and once forked across 4 worker shards — and require the
# two journals to be byte-identical (`cmp`) and the two summaries to be
# character-identical. Then re-run the sharded sweep against its own
# journal and require a full resume (12 resumed, nothing re-executed),
# which also proves the shard journals were merged and retired.
#
#   scripts/shard_smoke.sh [BUILD_DIR]     (default: build)
#
# Used by `scripts/verify.sh --shard` and the CI shard-smoke job. The
# kill-chaos side of the acceptance gate (random SIGKILLs + a poison job)
# lives in tests/shard_chaos_test.cpp, which the same verify mode runs;
# this script covers the real-binary path: CLI flag plumbing, journal
# files on a real filesystem, exit codes.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
sweep="${build_dir}/tools/sweep_shard"
if [[ ! -x "${sweep}" ]]; then
  echo "shard_smoke: missing ${sweep} (build the '${build_dir}' tree first)" >&2
  exit 2
fi

work_dir="$(mktemp -d)"
cleanup() { rm -rf "${work_dir}"; }
trap cleanup EXIT

# A 2-workload grid over every paper data size and two iteration
# counts: 12 jobs, enough to spread across 4 shards, small enough for a
# CI smoke.
grid=(--workloads CFD,SRAD --sizes all --iterations 1,8 --no-wall-time)

echo "--- shard_smoke: in-process reference run ---"
"${sweep}" "${grid[@]}" --shards 0 --workers 1 \
  --journal "${work_dir}/serial.jsonl" > "${work_dir}/serial.summary"

echo "--- shard_smoke: 4-shard run ---"
"${sweep}" "${grid[@]}" --shards 4 \
  --journal "${work_dir}/sharded.jsonl" > "${work_dir}/sharded.summary"

echo "--- shard_smoke: byte-compare journal + summary ---"
cmp "${work_dir}/serial.jsonl" "${work_dir}/sharded.jsonl" || {
  echo "shard_smoke: sharded journal differs from the serial journal" >&2
  exit 1
}
diff -u "${work_dir}/serial.summary" "${work_dir}/sharded.summary" || {
  echo "shard_smoke: sharded summary differs from the serial summary" >&2
  exit 1
}

shopt -s nullglob
shard_leftovers=("${work_dir}"/sharded.jsonl.shard*)
shopt -u nullglob
if [[ "${#shard_leftovers[@]}" -ne 0 ]]; then
  echo "shard_smoke: ${#shard_leftovers[@]} shard journal(s) not retired" >&2
  exit 1
fi

echo "--- shard_smoke: resume re-runs nothing ---"
"${sweep}" "${grid[@]}" --shards 4 \
  --journal "${work_dir}/sharded.jsonl" > "${work_dir}/resume.summary"
grep -q "12 resumed" "${work_dir}/resume.summary" || {
  echo "shard_smoke: expected a full resume; summary was:" >&2
  cat "${work_dir}/resume.summary" >&2
  exit 1
}
cmp "${work_dir}/serial.jsonl" "${work_dir}/sharded.jsonl" || {
  echo "shard_smoke: resume modified the journal" >&2
  exit 1
}

echo "shard_smoke: OK"
