#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/verify.sh              release build + ctest (the tier-1 gate)
#   scripts/verify.sh --sanitize   additionally build and test under
#                                  AddressSanitizer + UBSan (asan-ubsan preset)
#   scripts/verify.sh --tsan       additionally build under ThreadSanitizer
#                                  and run the concurrency-sensitive suites
#                                  (sweep engine, determinism, journal,
#                                  calibration cache, serve daemon)
#   scripts/verify.sh --bench      additionally run every built micro_*
#                                  benchmark (plus cross_machine_report)
#                                  and gate each against its checked-in
#                                  bench/BENCH_*.json baseline; a bench
#                                  without a committed baseline fails
#                                  loudly naming the expected path
#   scripts/verify.sh --serve      additionally run the live daemon smoke:
#                                  serve_daemon on a real socket under a
#                                  loadgen burst (scripts/serve_smoke.sh)
#   scripts/verify.sh --shard      additionally re-run the process-sharding
#                                  kill-chaos suites and the sweep_shard
#                                  smoke: a 4-shard run byte-compared
#                                  against an in-process run, plus a full
#                                  resume check (scripts/shard_smoke.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-test ctest timeout (seconds). The serve suites run a daemon with
# worker pools and watchdogs; if a bug ever wedges one, the suite must
# fail fast instead of hanging verification. Generous enough for the
# soak tests under TSan's ~10x slowdown.
CTEST_TIMEOUT="${CTEST_TIMEOUT:-300}"

run_preset() {
  local preset="$1"
  shift
  echo "=== verify: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)" --timeout "${CTEST_TIMEOUT}" "$@"
}

run_preset default

# Registry validation: load every shipped .gmach through the global
# MachineRegistry (re-running hw::validate_machine on each) and check the
# fleet invariants (>= 8 machines, PCIe gen1-gen5 coverage). A malformed
# or missing shipped spec fails verification here, not at a user's first
# cross-machine sweep.
echo "=== verify: machine registry (tools/validate_machines) ==="
./build/tools/validate_machines

for arg in "$@"; do
  case "${arg}" in
    --sanitize)
      run_preset asan-ubsan
      ;;
    --tsan)
      # TSan slows everything ~10x; focus it on the code that actually
      # shares state across threads (ctest names are GTest suite.test).
      run_preset tsan --no-tests=error -R \
        '^(SweepEngine|StreamSeed|SweepDeterminism|SweepRequestValidation|Crc32|FlatJson|ResultJournal|JournalProcessDeath|JobSpec|JobRecord|CalibrationCache|ArtifactCache|SweepDedupe|ServeProtocol|ServeDaemon|ServeSoak|ServeEndToEnd|ShardProtocol|ShardPath|ShardOptionsValidation|ShardSupervisor|ShardMerge|ShardChaos)\.'
      ;;
    --bench)
      # Discover the benches from the built binaries instead of a
      # hand-maintained list: a new micro bench is gated the moment it
      # builds, and one whose committed baseline is missing fails loudly
      # with the expected path instead of being silently skipped.
      for bench_bin in ./build/bench/micro_*; do
        if [ ! -x "${bench_bin}" ]; then
          echo "FAIL: no micro_* bench binaries under ./build/bench —" \
            "build the bench targets before verify.sh --bench" >&2
          exit 1
        fi
        bench="$(basename "${bench_bin}")"
        bench="${bench#micro_}"
        # micro_workloads is a google-benchmark microbench; it has no
        # BENCH_*.json contract. Everything else must have a baseline.
        if [ "${bench}" = "workloads" ]; then continue; fi
        baseline="bench/BENCH_${bench}.json"
        if [ ! -f "${baseline}" ]; then
          echo "FAIL: micro_${bench} has no committed baseline —" \
            "expected ${baseline} (run ${bench_bin} --out ${baseline}" \
            "and commit it)" >&2
          exit 1
        fi
        echo "=== verify: bench (micro_${bench} vs ${baseline}) ==="
        "${bench_bin}" --out "build/BENCH_${bench}.json"
        scripts/bench_compare "${baseline}" "build/BENCH_${bench}.json"
      done
      if [ ! -f bench/BENCH_machines.json ]; then
        echo "FAIL: cross_machine_report has no committed baseline —" \
          "expected bench/BENCH_machines.json" >&2
        exit 1
      fi
      echo "=== verify: bench (cross_machine_report vs bench/BENCH_machines.json) ==="
      ./build/bench/cross_machine_report --out build/BENCH_machines.json \
        > /dev/null
      scripts/bench_compare bench/BENCH_machines.json \
        build/BENCH_machines.json
      ;;
    --serve)
      echo "=== verify: serve smoke (daemon + loadgen over AF_UNIX) ==="
      scripts/serve_smoke.sh build
      ;;
    --shard)
      echo "=== verify: shard kill-chaos suites ==="
      ctest --preset default --timeout "${CTEST_TIMEOUT}" --no-tests=error \
        -R '^(ShardChaos|ShardSupervisor|JournalProcessDeath)\.'
      echo "=== verify: shard smoke (sweep_shard byte-compare + resume) ==="
      scripts/shard_smoke.sh build
      ;;
    *)
      echo "unknown option: ${arg}" >&2
      exit 2
      ;;
  esac
done
echo "=== verify: OK ==="
