#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/verify.sh              release build + ctest (the tier-1 gate)
#   scripts/verify.sh --sanitize   additionally build and test under
#                                  AddressSanitizer + UBSan (asan-ubsan preset)
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "=== verify: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
}

run_preset default
if [[ "${1:-}" == "--sanitize" ]]; then
  run_preset asan-ubsan
fi
echo "=== verify: OK ==="
