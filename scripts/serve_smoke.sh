#!/usr/bin/env bash
# Live end-to-end smoke of the projection daemon: boot serve_daemon on a
# real AF_UNIX socket, slam it with serve_loadgen (closed-loop mix plus
# an open-loop burst with tight deadlines), and require that every single
# request got exactly one typed reply — the loadgen's exit code *is* that
# check. Finishes with a clean client-initiated shutdown and verifies the
# daemon exits by itself.
#
#   scripts/serve_smoke.sh [BUILD_DIR]     (default: build)
#
# Used by `scripts/verify.sh --serve` and the CI serve-smoke job (there
# under an ASan build, so daemon-side leaks and overflows fail the job).
# Total budget is about a minute on a laptop; the surrounding caller is
# expected to wrap it in a hard `timeout` as the last-resort watchdog.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
daemon="${build_dir}/tools/serve_daemon"
loadgen="${build_dir}/tools/serve_loadgen"
for bin in "${daemon}" "${loadgen}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "serve_smoke: missing ${bin} (build the '${build_dir}' tree first)" >&2
    exit 2
  fi
done

socket_dir="$(mktemp -d)"
socket="${socket_dir}/grophecy.sock"
daemon_log="${socket_dir}/daemon.log"
daemon_pid=""
cleanup() {
  if [[ -n "${daemon_pid}" ]] && kill -0 "${daemon_pid}" 2>/dev/null; then
    kill "${daemon_pid}" 2>/dev/null || true
    wait "${daemon_pid}" 2>/dev/null || true
  fi
  rm -rf "${socket_dir}"
}
trap cleanup EXIT

"${daemon}" --socket "${socket}" --workers 4 --queue-depth 64 \
  --max-retries 1 >"${daemon_log}" 2>&1 &
daemon_pid="$!"

# Wait for the socket to appear (the daemon binds before serving).
for _ in $(seq 1 100); do
  [[ -S "${socket}" ]] && break
  if ! kill -0 "${daemon_pid}" 2>/dev/null; then
    echo "serve_smoke: daemon died during startup" >&2
    cat "${daemon_log}" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -S "${socket}" ]] || { echo "serve_smoke: socket never appeared" >&2; exit 1; }

echo "--- serve_smoke: closed-loop mix ---"
"${loadgen}" --socket "${socket}" --requests 256 --connections 8

echo "--- serve_smoke: open-loop burst with tight deadlines ---"
"${loadgen}" --socket "${socket}" --requests 2000 --connections 8 \
  --burst --deadline-ms 250

echo "--- serve_smoke: client-initiated shutdown ---"
"${loadgen}" --socket "${socket}" --requests 8 --connections 1 --shutdown

# The shutdown request must take the daemon down on its own.
for _ in $(seq 1 100); do
  kill -0 "${daemon_pid}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${daemon_pid}" 2>/dev/null; then
  echo "serve_smoke: daemon ignored the shutdown request" >&2
  exit 1
fi
wait "${daemon_pid}" || {
  echo "serve_smoke: daemon exited non-zero" >&2
  cat "${daemon_log}" >&2
  exit 1
}
daemon_pid=""
echo "serve_smoke: OK"
